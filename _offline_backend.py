"""Offline PEP 517 backend shim.

This environment has no network access, so pip's build isolation cannot
download setuptools/wheel into the isolated build environment.  The
shim makes the host interpreter's installed packages visible to the
isolated environment and then delegates everything to setuptools'
standard backend.  With it, a plain ``pip install -e .`` works offline.
"""

import site
import sys

# Expose the host environment's site-packages inside pip's isolated
# build env (which starts with an empty sys.path besides this backend).
for path in site.getsitepackages():
    if path not in sys.path:
        sys.path.append(path)

from setuptools.build_meta import *  # noqa: F401,F403  (re-export backend API)
from setuptools.build_meta import (  # noqa: F401  (optional editable hooks)
    build_editable,
    prepare_metadata_for_build_editable,
)


def get_requires_for_build_wheel(config_settings=None):
    """No dynamic build requirements — wheel is already importable."""
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []
