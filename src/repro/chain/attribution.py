"""Mining-pool attribution from coinbase markers and reward addresses.

Mining pools typically embed a signature string in the coinbase
transaction ("/F2Pool/", "/ViaBTC/", ...) to claim ownership of the
block.  Following prior work (Judmayer et al. 2017, Romiti et al. 2019)
the paper attributes each block to a pool by matching these markers, and
falls back to the coinbase *reward address* when the marker is unknown.
Around 1.3% of blocks in dataset C resisted attribution; our attributor
reproduces that behaviour by returning :data:`UNKNOWN_POOL` for blocks
whose marker and reward address both fail to match.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from .block import Block

#: Label used for blocks whose operator could not be identified.
UNKNOWN_POOL = "unknown"


@dataclass
class PoolDirectory:
    """Known coinbase markers and reward addresses per pool.

    ``aliases`` maps a pool to pools whose addresses it shares; the paper
    notes BitDeer shares addresses with BTC.com and Buffett with
    Lubian.com, and counts the former as the latter.  We model that by
    resolving an alias to its canonical owner during attribution.
    """

    markers: dict[str, str] = field(default_factory=dict)  # marker -> pool
    reward_addresses: dict[str, str] = field(default_factory=dict)  # addr -> pool
    aliases: dict[str, str] = field(default_factory=dict)  # alias pool -> canonical

    def register_pool(
        self,
        name: str,
        marker: Optional[str] = None,
        addresses: Iterable[str] = (),
    ) -> None:
        """Add a pool's marker and any known reward addresses."""
        if marker is not None:
            self.markers[marker] = name
        for address in addresses:
            self.reward_addresses[address] = name

    def register_alias(self, alias: str, canonical: str) -> None:
        """Record that blocks signed by ``alias`` belong to ``canonical``."""
        self.aliases[alias] = canonical

    def canonical(self, pool: str) -> str:
        """Resolve an alias chain to its canonical pool name."""
        seen = set()
        while pool in self.aliases and pool not in seen:
            seen.add(pool)
            pool = self.aliases[pool]
        return pool


class PoolAttributor:
    """Attribute blocks to mining pools.

    Attribution order follows the literature: coinbase marker first, then
    reward address, then :data:`UNKNOWN_POOL`.  The attributor also
    *learns* reward addresses: once a marker identifies a pool, the
    coinbase payout address is remembered, so later unmarked blocks
    paying the same address still attribute correctly.
    """

    def __init__(self, directory: PoolDirectory, learn_addresses: bool = True) -> None:
        self._directory = directory
        self._learn = learn_addresses

    def attribute(self, block: Block) -> str:
        """Return the canonical pool name for ``block``."""
        marker = getattr(block.coinbase, "marker", "")
        pool = self._match_marker(marker)
        reward_address = (
            block.coinbase.outputs[0].address if block.coinbase.outputs else None
        )
        if pool is None and reward_address is not None:
            pool = self._directory.reward_addresses.get(reward_address)
        if pool is None:
            return UNKNOWN_POOL
        pool = self._directory.canonical(pool)
        if self._learn and reward_address is not None:
            self._directory.reward_addresses.setdefault(reward_address, pool)
        return pool

    def _match_marker(self, marker: str) -> Optional[str]:
        if not marker:
            return None
        if marker in self._directory.markers:
            return self._directory.markers[marker]
        # Markers sometimes carry extra payload ("/F2Pool/mined by x/");
        # fall back to substring matching as prior work does.
        for known, pool in self._directory.markers.items():
            if known and known in marker:
                return pool
        return None

    def attribute_chain(self, blocks: Iterable[Block]) -> dict[str, str]:
        """Map block hash -> pool for every block."""
        return {block.block_hash: self.attribute(block) for block in blocks}


@dataclass(frozen=True)
class HashRateEstimate:
    """A pool's observed share of mined blocks over a window."""

    pool: str
    blocks: int
    share: float


def estimate_hash_rates(
    attributions: Mapping[str, str] | Iterable[str],
) -> list[HashRateEstimate]:
    """Estimate pools' normalized hash rates as their share of blocks.

    This is the paper's θ0: "normalized hash rate (estimated as fraction
    of blocks mined by m)".  Accepts either a block-hash->pool mapping or
    a plain iterable of pool labels.
    """
    labels = (
        list(attributions.values())
        if isinstance(attributions, Mapping)
        else list(attributions)
    )
    if not labels:
        return []
    counts = Counter(labels)
    total = len(labels)
    estimates = [
        HashRateEstimate(pool=pool, blocks=count, share=count / total)
        for pool, count in counts.items()
    ]
    estimates.sort(key=lambda est: (-est.blocks, est.pool))
    return estimates


def top_pools(
    attributions: Mapping[str, str] | Iterable[str],
    count: int,
    exclude_unknown: bool = True,
) -> list[HashRateEstimate]:
    """The ``count`` largest pools by block share."""
    estimates = estimate_hash_rates(attributions)
    if exclude_unknown:
        estimates = [est for est in estimates if est.pool != UNKNOWN_POOL]
    return estimates[:count]


def blocks_by_pool(
    blocks: Iterable[Block], attributor: PoolAttributor
) -> dict[str, list[Block]]:
    """Group blocks by their attributed pool."""
    grouped: dict[str, list[Block]] = defaultdict(list)
    for block in blocks:
        grouped[attributor.attribute(block)].append(block)
    return dict(grouped)
