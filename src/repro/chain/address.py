"""Wallet addresses.

Addresses in this simulator are opaque identifiers derived from a keyed
hash, shaped like (but not interchangeable with) real Bitcoin P2PKH
addresses.  The audit layer only ever compares addresses for equality and
groups transactions by the address sets they touch, so a deterministic
digest is a faithful substitute for real key material.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator

_B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"


def _base58(data: bytes) -> str:
    """Encode bytes with the Bitcoin base-58 alphabet (no checksum)."""
    num = int.from_bytes(data, "big")
    out = []
    while num:
        num, rem = divmod(num, 58)
        out.append(_B58_ALPHABET[rem])
    # Preserve leading zero bytes as '1', matching base58check convention.
    for byte in data:
        if byte:
            break
        out.append("1")
    return "".join(reversed(out)) or "1"


def derive_address(seed: str) -> str:
    """Derive a deterministic P2PKH-looking address from a seed string.

    The same seed always yields the same address, which is what lets
    scenarios and tests refer to wallets by human-readable seeds while the
    chain stores realistic-looking identifiers.

    >>> derive_address("f2pool/reward/0") == derive_address("f2pool/reward/0")
    True
    """
    digest = hashlib.sha256(seed.encode("utf-8")).digest()[:20]
    return "1" + _base58(digest)


@dataclass
class AddressFactory:
    """Mint fresh deterministic addresses under a namespace.

    Each factory owns a namespace so independent subsystems (user wallets,
    pool reward wallets, scam wallets) can mint addresses concurrently
    without collisions while remaining reproducible.
    """

    namespace: str
    _counter: int = field(default=0, repr=False)

    def next(self) -> str:
        """Mint and return the next address in this namespace."""
        address = derive_address(f"{self.namespace}/{self._counter}")
        self._counter += 1
        return address

    def batch(self, count: int) -> list[str]:
        """Mint ``count`` fresh addresses."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next() for _ in range(count)]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next()
