"""Blocks and block headers.

A block records the *ordered* list of transactions a miner committed —
the central object of the paper's audit, since both PPE and the
statistical prioritization tests are functions of in-block position.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .constants import MAX_BLOCK_VSIZE
from .transaction import CoinbaseTransaction, Transaction


def merkle_root(txids: Sequence[str]) -> str:
    """Compute a (simplified, single-SHA256) merkle root over txids.

    Bitcoin duplicates the last node of odd-length levels; we follow the
    same rule so the structure matches, even though we hash hex strings
    rather than little-endian digests.
    """
    if not txids:
        return hashlib.sha256(b"").hexdigest()
    level = [txid.encode("ascii") for txid in txids]
    sha256 = hashlib.sha256
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            sha256(level[i] + level[i + 1]).hexdigest().encode("ascii")
            for i in range(0, len(level), 2)
        ]
    return level[0].decode("ascii")


@dataclass(frozen=True)
class BlockHeader:
    """Minimal block header: linkage, commitment, and timestamp."""

    height: int
    prev_hash: str
    merkle_root: str
    timestamp: float
    miner_nonce: int = 0
    block_hash: str = field(init=False)

    def __post_init__(self) -> None:
        hasher = hashlib.sha256()
        hasher.update(self.height.to_bytes(8, "little", signed=False))
        hasher.update(self.prev_hash.encode("ascii"))
        hasher.update(self.merkle_root.encode("ascii"))
        hasher.update(repr(self.timestamp).encode("ascii"))
        hasher.update(self.miner_nonce.to_bytes(8, "little", signed=False))
        object.__setattr__(self, "block_hash", hasher.hexdigest())


GENESIS_HASH = "0" * 64


@dataclass(frozen=True)
class Block:
    """An ordered set of transactions committed by one miner.

    ``transactions`` excludes the coinbase: position 0 in the paper's
    position metrics is the first *non-coinbase* transaction, matching
    how the authors compute PPE over the fee-paying transactions only.
    """

    header: BlockHeader
    coinbase: CoinbaseTransaction
    transactions: tuple[Transaction, ...]

    def __post_init__(self) -> None:
        vsize = self.vsize
        if vsize > MAX_BLOCK_VSIZE:
            raise ValueError(
                f"block vsize {vsize} exceeds the {MAX_BLOCK_VSIZE} vB limit"
            )
        txids = [tx.txid for tx in self.transactions]
        if len(set(txids)) != len(txids):
            seen: set[str] = set()
            for txid in txids:
                if txid in seen:
                    raise ValueError(f"duplicate transaction {txid} in block")
                seen.add(txid)

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def block_hash(self) -> str:
        return self.header.block_hash

    @property
    def timestamp(self) -> float:
        return self.header.timestamp

    @property
    def vsize(self) -> int:
        """Total virtual size including the coinbase."""
        return self.coinbase.vsize + sum(tx.vsize for tx in self.transactions)

    @property
    def total_fees(self) -> int:
        """Fees collected from all committed transactions, in satoshi."""
        return sum(tx.fee for tx in self.transactions)

    @property
    def is_empty(self) -> bool:
        """True for blocks containing only the coinbase.

        Pools mine empty blocks while validating a predecessor; the paper
        counts them per dataset in Table 1.
        """
        return not self.transactions

    @property
    def tx_count(self) -> int:
        """Number of non-coinbase transactions."""
        return len(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def position_of(self, txid: str) -> Optional[int]:
        """0-based in-block position of ``txid``, or None if absent."""
        for position, tx in enumerate(self.transactions):
            if tx.txid == txid:
                return position
        return None

    def positions(self) -> dict[str, int]:
        """Map txid -> 0-based in-block position for all transactions."""
        return {tx.txid: position for position, tx in enumerate(self.transactions)}


def build_block(
    height: int,
    prev_hash: str,
    timestamp: float,
    coinbase: CoinbaseTransaction,
    transactions: Sequence[Transaction],
    miner_nonce: int = 0,
) -> Block:
    """Assemble a :class:`Block`, computing the merkle commitment."""
    txs = tuple(transactions)
    root = merkle_root([coinbase.txid] + [tx.txid for tx in txs])
    header = BlockHeader(
        height=height,
        prev_hash=prev_hash,
        merkle_root=root,
        timestamp=timestamp,
        miner_nonce=miner_nonce,
    )
    return Block(header=header, coinbase=coinbase, transactions=txs)
