"""The chain container: an append-only, validated list of blocks.

Besides storage, this module provides the lookups the audit layer leans
on: where a transaction was committed, at which in-block position, and
which addresses a transaction's inputs draw from (needed to recognise a
pool *sending* coins, not only receiving them).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

from .block import GENESIS_HASH, Block
from .transaction import Transaction


class ChainValidationError(Exception):
    """Raised when an appended block does not extend the chain correctly."""


class TxLocation(NamedTuple):
    """Where a transaction landed: block height and 0-based position.

    A NamedTuple rather than a dataclass: one is built per committed
    transaction, and frozen-dataclass construction is an order of
    magnitude slower on this hot path.
    """

    height: int
    position: int


class Blockchain:
    """An append-only sequence of blocks with transaction indices.

    The class validates linkage (prev-hash and height continuity) and
    monotonically non-decreasing timestamps, and maintains:

    * ``location_of(txid)`` — commit height and in-block position,
    * ``transaction(txid)`` — the transaction object itself,
    * ``resolve_input_addresses(tx)`` — addresses funding a transaction,
      resolved against outputs committed earlier in this chain.
    """

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._blocks: list[Block] = []
        self._locations: dict[str, TxLocation] = {}
        self._transactions: dict[str, Transaction] = {}
        # UTXO-lite bookkeeping: every spent outpoint, for double-spend
        # rejection (the chain-level guarantee RBF races rely on).
        self._spent_outpoints: dict[object, str] = {}
        # Lazily built address → txids index; stamped with the chain
        # length it was built at so appends invalidate it.
        self._address_index: Optional[dict[str, list[str]]] = None
        self._address_index_height = -1
        for block in blocks:
            self.append(block)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, block: Block) -> None:
        """Validate and append ``block`` at the tip."""
        expected_height = len(self._blocks)
        if block.height != expected_height:
            raise ChainValidationError(
                f"expected height {expected_height}, got {block.height}"
            )
        expected_prev = self.tip_hash
        if block.header.prev_hash != expected_prev:
            raise ChainValidationError(
                f"block {block.height} prev_hash {block.header.prev_hash[:12]}… "
                f"does not match tip {expected_prev[:12]}…"
            )
        if self._blocks and block.timestamp < self._blocks[-1].timestamp:
            raise ChainValidationError(
                f"block {block.height} timestamp {block.timestamp} precedes tip "
                f"timestamp {self._blocks[-1].timestamp}"
            )
        # Happy-path validation is batched: set-level disjointness
        # checks at C speed, with a scalar re-walk only to attribute
        # the precise offender when a conflict exists.
        block_spends: dict[object, str] = {}
        n_inputs = 0
        for tx in block.transactions:
            txid = tx.txid
            inputs = tx.inputs
            n_inputs += len(inputs)
            for txin in inputs:
                block_spends[txin.prevout] = txid
        if (
            len(block_spends) != n_inputs
            or not self._spent_outpoints.keys().isdisjoint(block_spends)
            or not self._locations.keys().isdisjoint(
                tx.txid for tx in block.transactions
            )
        ):
            # Re-walk in commit order so the raised error names the
            # first offender, exactly as a scalar check would.
            seen: dict[object, str] = {}
            spent_get = self._spent_outpoints.get
            for tx in block.transactions:
                if tx.txid in self._locations:
                    raise ChainValidationError(
                        f"transaction {tx.txid[:12]}… already committed"
                    )
                for txin in tx.inputs:
                    spender = spent_get(txin.prevout) or seen.get(txin.prevout)
                    if spender is not None:
                        raise ChainValidationError(
                            f"double spend of {txin.prevout} by "
                            f"{tx.txid[:12]}… (already spent by {spender[:12]}…)"
                        )
                    seen[txin.prevout] = tx.txid
        self._blocks.append(block)
        self._transactions[block.coinbase.txid] = block.coinbase
        self._spent_outpoints.update(block_spends)
        locations = self._locations
        transactions = self._transactions
        height = block.height
        for position, tx in enumerate(block.transactions):
            locations[tx.txid] = TxLocation(height, position)
            transactions[tx.txid] = tx

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def tip_hash(self) -> str:
        """Hash of the last block, or the genesis sentinel when empty."""
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    @property
    def height(self) -> int:
        """Height of the tip (-1 when the chain is empty)."""
        return len(self._blocks) - 1

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, height: int) -> Block:
        return self._blocks[height]

    def blocks(self, start: int = 0, stop: Optional[int] = None) -> Sequence[Block]:
        """Blocks in ``[start, stop)`` by height."""
        return self._blocks[start:stop]

    def location_of(self, txid: str) -> Optional[TxLocation]:
        """Commit location of ``txid`` or None if unconfirmed."""
        return self._locations.get(txid)

    def contains(self, txid: str) -> bool:
        """True if ``txid`` is committed (coinbases included)."""
        return txid in self._transactions

    def is_spent(self, outpoint) -> bool:
        """True if any committed transaction already spends ``outpoint``."""
        return outpoint in self._spent_outpoints

    def transaction(self, txid: str) -> Optional[Transaction]:
        """The committed transaction with this id, if any."""
        return self._transactions.get(txid)

    def iter_transactions(self) -> Iterator[tuple[Block, int, Transaction]]:
        """Yield (block, position, transaction) over all committed txs."""
        for block in self._blocks:
            for position, tx in enumerate(block.transactions):
                yield block, position, tx

    # ------------------------------------------------------------------
    # Address resolution
    # ------------------------------------------------------------------
    def resolve_input_addresses(self, tx: Transaction) -> frozenset[str]:
        """Addresses owning the outputs that ``tx`` spends.

        Inputs referencing transactions outside this chain (synthetic
        UTXOs minted by workload builders) resolve to nothing, which is
        the honest answer: the auditor cannot attribute them either.
        """
        addresses: set[str] = set()
        for txin in tx.inputs:
            parent = self._transactions.get(txin.parent_txid)
            if parent is None:
                continue
            if 0 <= txin.prevout.index < len(parent.outputs):
                addresses.add(parent.outputs[txin.prevout.index].address)
        return frozenset(addresses)

    def transactions_touching(self, addresses: frozenset[str]) -> list[str]:
        """Txids of committed transactions sending to or from ``addresses``.

        This mirrors the paper's §5.2 procedure for finding a pool's
        self-interest transactions: every committed transaction in which a
        pool wallet is a sender or a receiver.
        """
        touching: list[str] = []
        for block in self._blocks:
            for tx in block.transactions:
                if tx.touches_address(addresses):
                    touching.append(tx.txid)
                    continue
                if self.resolve_input_addresses(tx) & addresses:
                    touching.append(tx.txid)
        return touching

    def address_index(self) -> dict[str, list[str]]:
        """address → txids of committed transactions touching it.

        One chain pass replaces the per-wallet-set scans of
        :meth:`transactions_touching`: a transaction is indexed under
        every output address and every resolved input address, so
        ``union over wallet addresses`` equals the scan result as a set.
        The index is cached and rebuilt if the chain has grown.
        """
        if (
            self._address_index is None
            or self._address_index_height != len(self._blocks)
        ):
            index: dict[str, list[str]] = {}
            for block in self._blocks:
                for tx in block.transactions:
                    touched: set[str] = {
                        txout.address for txout in tx.outputs
                    }
                    touched.update(self.resolve_input_addresses(tx))
                    for address in touched:
                        index.setdefault(address, []).append(tx.txid)
            self._address_index = index
            self._address_index_height = len(self._blocks)
        return self._address_index

    def transactions_touching_indexed(
        self, addresses: frozenset[str]
    ) -> frozenset[str]:
        """Index-backed equivalent of :meth:`transactions_touching`.

        Returns a set (chain order is not preserved across the union);
        differential tests assert it equals the scan as a set.
        """
        index = self.address_index()
        touching: set[str] = set()
        for address in addresses:
            touching.update(index.get(address, ()))
        return frozenset(touching)
