"""Transactions: inputs, outputs, fees and fee-rates.

The model keeps exactly the attributes the paper's audit requires: a
stable identifier, the referenced parent outputs (to detect CPFP
dependencies and self-interest payments), the output addresses and values
(to find pool-owned wallets), the virtual size, and the fee.  Signatures
and script execution are out of scope: the audit never validates
signatures, only value conservation and ancestry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence


class OutPoint(NamedTuple):
    """Reference to a specific output of a prior transaction.

    A NamedTuple rather than a frozen dataclass: outpoints key every
    spent-output dict in the mempool, the chain, and the engines, and
    tuple hashing runs in C where the generated dataclass ``__hash__``
    pays a python call per lookup.
    """

    txid: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.txid}:{self.index}"


@dataclass(frozen=True)
class TxInput:
    """A transaction input spending an existing output."""

    prevout: OutPoint

    @property
    def parent_txid(self) -> str:
        """Identifier of the transaction this input spends from."""
        return self.prevout.txid


@dataclass(frozen=True)
class TxOutput:
    """A transaction output paying ``value`` satoshi to ``address``."""

    address: str
    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"output value must be non-negative, got {self.value}")


def _compute_txid(inputs: Sequence[TxInput], outputs: Sequence[TxOutput], nonce: int) -> str:
    """Hash the transaction content into a 64-hex-digit identifier."""
    hasher = hashlib.sha256()
    for txin in inputs:
        hasher.update(txin.prevout.txid.encode("ascii"))
        hasher.update(txin.prevout.index.to_bytes(4, "little", signed=False))
    for txout in outputs:
        hasher.update(txout.address.encode("ascii"))
        hasher.update(txout.value.to_bytes(8, "little", signed=False))
    hasher.update(nonce.to_bytes(8, "little", signed=False))
    return hashlib.sha256(hasher.digest()).hexdigest()


@dataclass(frozen=True)
class Transaction:
    """An immutable Bitcoin-style transaction.

    Attributes
    ----------
    inputs:
        Outputs being spent.  Empty for coinbase transactions.
    outputs:
        Newly created outputs.
    vsize:
        Virtual size in vbytes (BIP-141 units); the denominator of the
        fee-rate norm.
    fee:
        Fee in satoshi, i.e. input value minus output value.  Carried
        explicitly so mempool observers need not resolve parent outputs.
    nonce:
        Disambiguator so otherwise identical transactions hash apart.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    vsize: int
    fee: int
    nonce: int = 0
    txid: str = field(init=False)
    #: Identifiers of all transactions whose outputs this one spends.
    #: Precomputed because block assembly queries it in hot loops.
    parent_txids: frozenset[str] = field(init=False)

    def __post_init__(self) -> None:
        if self.vsize <= 0:
            raise ValueError(f"vsize must be positive, got {self.vsize}")
        if self.fee < 0:
            raise ValueError(f"fee must be non-negative, got {self.fee}")
        object.__setattr__(
            self, "txid", _compute_txid(self.inputs, self.outputs, self.nonce)
        )
        object.__setattr__(
            self,
            "parent_txids",
            frozenset(txin.parent_txid for txin in self.inputs),
        )

    @property
    def fee_rate(self) -> float:
        """Fee-rate in sat/vB — the quantity norms I and II rank by."""
        return self.fee / self.vsize

    @property
    def is_coinbase(self) -> bool:
        """True if this transaction creates coins (no inputs)."""
        return not self.inputs

    @property
    def output_value(self) -> int:
        """Total satoshi paid out by this transaction."""
        return sum(txout.value for txout in self.outputs)

    def touches_address(self, addresses: frozenset[str]) -> bool:
        """True if any output pays into ``addresses``.

        Input-side ownership cannot be read off the transaction alone (it
        requires resolving the parent outputs); callers that need it use
        :meth:`repro.chain.blockchain.Blockchain.resolve_input_addresses`.
        """
        return any(txout.address in addresses for txout in self.outputs)

    def __hash__(self) -> int:
        return hash(self.txid)


def make_transaction(
    inputs: Sequence[TxInput],
    outputs: Sequence[TxOutput],
    vsize: int,
    fee: int,
    nonce: int = 0,
) -> Transaction:
    """Build a :class:`Transaction` from sequences (convenience wrapper)."""
    return Transaction(tuple(inputs), tuple(outputs), vsize, fee, nonce)


def make_coinbase(
    reward_address: str,
    value: int,
    marker: str,
    height: int,
    vsize: int = 200,
) -> "CoinbaseTransaction":
    """Create a coinbase paying ``value`` satoshi to ``reward_address``.

    ``marker`` is the pool's tag string embedded in the coinbase, which
    the attribution logic (following Judmayer et al.) uses to identify the
    block's mining pool.  ``height`` is mixed into the hash so every
    block's coinbase is unique, mirroring BIP-34.
    """
    return CoinbaseTransaction(
        inputs=(),
        outputs=(TxOutput(reward_address, value),),
        vsize=vsize,
        fee=0,
        nonce=height,
        marker=marker,
    )


@dataclass(frozen=True)
class CoinbaseTransaction(Transaction):
    """The block-reward transaction, carrying the pool's coinbase marker."""

    marker: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inputs:
            raise ValueError("coinbase transactions must not have inputs")
        # Mix the marker into the txid so identical payouts by different
        # pools (or re-orgs of the same height) do not collide.
        base = _compute_txid(self.inputs, self.outputs, self.nonce)
        hasher = hashlib.sha256(base.encode("ascii"))
        hasher.update(self.marker.encode("utf-8"))
        object.__setattr__(self, "txid", hasher.hexdigest())

    def __hash__(self) -> int:
        return hash(self.txid)


def coinbase_value(subsidy: int, total_fees: int) -> int:
    """Total coinbase payout: subsidy plus all fees in the block."""
    if subsidy < 0 or total_fees < 0:
        raise ValueError("subsidy and fees must be non-negative")
    return subsidy + total_fees


def dedupe_transactions(transactions: Sequence[Transaction]) -> list[Transaction]:
    """Drop duplicate transactions (same txid), keeping first occurrence."""
    seen: set[str] = set()
    unique: list[Transaction] = []
    for tx in transactions:
        if tx.txid not in seen:
            seen.add(tx.txid)
            unique.append(tx)
    return unique


def total_fees(transactions: Sequence[Transaction]) -> int:
    """Sum of fees over ``transactions``."""
    return sum(tx.fee for tx in transactions)


def total_vsize(transactions: Sequence[Transaction]) -> int:
    """Sum of virtual sizes over ``transactions``."""
    return sum(tx.vsize for tx in transactions)


class TransactionBuilder:
    """Mint synthetic spendable transactions with explicit fee and size.

    Workload generators use this to create user transactions whose input
    side draws on a synthetic UTXO pool.  The builder tracks its own
    fresh-outpoint counter so consecutive transactions never collide.
    """

    def __init__(self, namespace: str = "utxo") -> None:
        self._namespace = namespace
        self._counter = 0
        # Next output index to spend per referenced parent, so two
        # children of one parent never double-spend the same outpoint.
        self._next_output_index: dict[str, int] = {}

    def _fresh_outpoint(self) -> OutPoint:
        fake_txid = hashlib.sha256(
            f"{self._namespace}/{self._counter}".encode("utf-8")
        ).hexdigest()
        self._counter += 1
        return OutPoint(fake_txid, 0)

    def _allocate_parent_outpoint(self, parent_txid: str) -> OutPoint:
        index = self._next_output_index.get(parent_txid, 0)
        self._next_output_index[parent_txid] = index + 1
        return OutPoint(parent_txid, index)

    def build(
        self,
        to_address: str,
        value: int,
        fee: int,
        vsize: int,
        change_address: Optional[str] = None,
        extra_parents: Sequence[str] = (),
        nonce: int = 0,
    ) -> Transaction:
        """Create a transaction paying ``value`` to ``to_address``.

        ``extra_parents`` lets callers make the transaction spend outputs
        of specific earlier transactions — the mechanism behind CPFP
        chains and self-transfer graphs.
        """
        inputs = [TxInput(self._fresh_outpoint())]
        inputs.extend(
            TxInput(self._allocate_parent_outpoint(parent))
            for parent in extra_parents
        )
        outputs = [TxOutput(to_address, value)]
        if change_address is not None:
            outputs.append(TxOutput(change_address, max(value // 10, 1)))
        return make_transaction(inputs, outputs, vsize=vsize, fee=fee, nonce=nonce)

    def replacement(
        self,
        original: Transaction,
        fee: int,
        vsize: Optional[int] = None,
        nonce: int = 0,
    ) -> Transaction:
        """A replace-by-fee bump of ``original``: same inputs, new fee.

        The replacement spends exactly the same outpoints (which is what
        makes the two transactions conflict) and pays the new, higher
        fee out of the same value.
        """
        return make_transaction(
            inputs=original.inputs,
            outputs=original.outputs,
            vsize=vsize if vsize is not None else original.vsize,
            fee=fee,
            nonce=nonce + 1_000_000_007,
        )
