"""Protocol constants shared across the chain, mempool and mining layers.

All monetary quantities in this code base are integers denominated in
satoshi (1 BTC == 100_000_000 satoshi), mirroring Bitcoin Core.  All
transaction and block sizes are *virtual* sizes in vbytes: one vbyte
corresponds to four weight units as defined in BIP-141, which is the size
notion the paper uses throughout ("the term size refers to virtual size").

Fee-*rates* are expressed in satoshi per vbyte (sat/vB).  The paper often
quotes BTC/KB; 1 sat/vB == 1e-5 BTC/KB, so the recommended minimum of
1e-5 BTC/KB equals 1 sat/vB.
"""

from __future__ import annotations

#: Satoshi per bitcoin.
COIN = 100_000_000

#: Maximum virtual size of a block in vbytes (the 1 MB limit the paper uses).
MAX_BLOCK_VSIZE = 1_000_000

#: Default minimum relay fee-rate (sat/vB).  Transactions below this rate
#: are rejected by default-configured nodes — the paper's norm III.
DEFAULT_MIN_RELAY_FEE_RATE = 1.0

#: Target seconds between blocks enforced by difficulty adjustment.
TARGET_BLOCK_INTERVAL = 600.0

#: Block subsidy halving period, in blocks.
HALVING_INTERVAL = 210_000

#: Initial block subsidy in satoshi (50 BTC).
INITIAL_SUBSIDY = 50 * COIN

#: Number of block positions by which the coinbase always precedes
#: every other transaction in a block.
COINBASE_POSITION = 0

#: Approximate vsize of a minimal one-input two-output transaction.
MIN_TX_VSIZE = 110

#: Mempool snapshot cadence used by the paper's observer nodes (seconds).
SNAPSHOT_INTERVAL = 15.0


def block_subsidy(height: int) -> int:
    """Return the block subsidy in satoshi at a given block height.

    The subsidy starts at 50 BTC and halves every ``HALVING_INTERVAL``
    blocks, reaching zero after 64 halvings exactly as in Bitcoin Core.

    >>> block_subsidy(0)
    5000000000
    >>> block_subsidy(210_000)
    2500000000
    """
    if height < 0:
        raise ValueError(f"height must be non-negative, got {height}")
    halvings = height // HALVING_INTERVAL
    if halvings >= 64:
        return 0
    return INITIAL_SUBSIDY >> halvings


def btc_per_kb_to_sat_per_vb(rate_btc_kb: float) -> float:
    """Convert a fee-rate from BTC/KB (paper units) to sat/vB."""
    return rate_btc_kb * COIN / 1000.0


def sat_per_vb_to_btc_per_kb(rate_sat_vb: float) -> float:
    """Convert a fee-rate from sat/vB to BTC/KB (paper units)."""
    return rate_sat_vb * 1000.0 / COIN
