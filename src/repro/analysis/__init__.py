"""Analyses reproducing every table and figure of the paper."""

from .base import (
    DEFAULT_SCALE,
    DataContext,
    ExperimentResult,
    ShapeCheck,
    check,
    paper_vs_measured_rows,
)
from .cdf import Ecdf, dominates, ecdf, quantile_table
from .experiments import EXPERIMENTS, run_all, run_experiment, run_experiments
from .runner import (
    BatteryResult,
    ExperimentOutcome,
    run_battery,
    run_bench,
    run_one,
)
from .tables import format_cell, render_kv, render_table

__all__ = [
    "DEFAULT_SCALE",
    "DataContext",
    "ExperimentResult",
    "ShapeCheck",
    "check",
    "paper_vs_measured_rows",
    "Ecdf",
    "dominates",
    "ecdf",
    "quantile_table",
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "run_experiments",
    "BatteryResult",
    "ExperimentOutcome",
    "run_battery",
    "run_bench",
    "run_one",
    "format_cell",
    "render_kv",
    "render_table",
]
