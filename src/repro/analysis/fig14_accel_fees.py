"""Fig 14 / Appendix G — acceleration fees vs public transaction fees.

The paper queried BTC.com's acceleration price for every transaction in
a live mempool snapshot: quotes averaged 566x (median 117x) the public
fee.  We replay the experiment against the calibrated pricing model on
a snapshot from dataset A.
"""

from __future__ import annotations

import numpy as np

from ..mining.acceleration import (
    PAPER_MEAN_MULTIPLE,
    PAPER_MEDIAN_MULTIPLE,
    AccelerationPricer,
)
from .base import DataContext, ExperimentResult, check
from .tables import render_kv

PAPER = {
    "mean_multiple": PAPER_MEAN_MULTIPLE,
    "median_multiple": PAPER_MEDIAN_MULTIPLE,
    "snapshot_txs": 23_341,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 14's acceleration-fee comparison."""
    dataset = ctx.dataset_a()
    snapshots = dataset.snapshots
    if len(snapshots) == 0:
        raise ValueError("dataset A has no full snapshots to price")
    # Pick the fullest snapshot, mirroring the paper's congested one.
    snapshot = max(snapshots, key=lambda s: s.tx_count)
    pricer = AccelerationPricer()
    multiples = []
    public_fees = []
    accel_fees = []
    for tx in snapshot.txs:
        quote = pricer.quote(tx.txid, tx.fee)
        public_fees.append(tx.fee)
        accel_fees.append(quote.acceleration_fee)
        if tx.fee > 0:
            multiples.append(quote.acceleration_fee / tx.fee)
    multiples = np.asarray(multiples, dtype=float)
    mean_multiple = float(multiples.mean()) if multiples.size else float("nan")
    median_multiple = float(np.median(multiples)) if multiples.size else float("nan")
    rendered = render_kv(
        [
            ("snapshot time", snapshot.time),
            ("transactions priced", len(snapshot.txs)),
            ("mean acceleration multiple", mean_multiple),
            ("median acceleration multiple", median_multiple),
            ("p25 multiple", float(np.percentile(multiples, 25))),
            ("p75 multiple", float(np.percentile(multiples, 75))),
            ("max multiple", float(multiples.max())),
            ("median public fee (sat)", float(np.median(public_fees))),
            ("median acceleration fee (sat)", float(np.median(accel_fees))),
        ],
        title="Fig 14: acceleration fee vs public fee",
    )
    measured = {
        "mean_multiple": round(mean_multiple, 1),
        "median_multiple": round(median_multiple, 1),
        "snapshot_txs": len(snapshot.txs),
    }
    checks = [
        check(
            "acceleration quotes are orders of magnitude above public fees "
            "(median ~100x)",
            50.0 <= median_multiple <= 300.0,
            f"median={median_multiple:.0f}x",
        ),
        check(
            "the distribution is heavily right-skewed (mean >> median)",
            mean_multiple > 2.0 * median_multiple,
            f"mean={mean_multiple:.0f}x median={median_multiple:.0f}x",
        ),
        check(
            "every transaction in the snapshot can be priced",
            len(snapshot.txs) > 0 and multiples.size >= 0.9 * len(snapshot.txs),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig14",
        title="Acceleration-service pricing",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
