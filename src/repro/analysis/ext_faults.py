"""Extension: detection power of the audit under measurement faults.

The paper's audits presume a complete mempool vantage point; a real
observer loses transactions, goes down for maintenance, and misses
snapshots.  This experiment asks the operational question: *how much
measurement degradation can the §5.1 prioritization test absorb before
a self-interest-accelerating pool slips below the detection
threshold?*

The sweep runs one clean simulation per seed (dataset C's misbehaving
cast, F2Pool accelerating its own transactions), then replays each
point of a loss-rate x downtime grid by post-hoc degradation — valid
because observer-side faults commute with curation (asserted against
in-engine injection in ``tests/test_faults_pipeline.py``) and cheap
because the expensive simulation is paid once per seed.  Loss masks at
increasing rates are nested under a fixed fault seed, so each power
curve degrades monotonically by construction and the *cliff* — the
first loss rate where detection power falls to one half — is a sharp,
reproducible number rather than Monte-Carlo noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.audit import Auditor
from ..core.stattests import DEFAULT_ALPHA
from ..datasets.builder import build_dataset
from ..datasets.cache import DatasetCache
from ..datasets.dataset import Dataset
from ..faults.degrade import degrade_dataset
from ..faults.schedule import FaultSchedule, spread_downtime
from ..simulation.scenarios import dataset_c_scenario
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "premise": "audits assume a complete mempool vantage point (§4.1)",
    "alpha": DEFAULT_ALPHA,
}

#: The self-interest accelerator the sweep tries to keep catching.
TARGET_POOL = "F2Pool"
#: Transaction-loss rates probed (observer-side relay loss).
LOSS_GRID = (0.0, 0.05, 0.15, 0.30, 0.50, 0.70, 0.85, 0.95)
#: Observer downtime as a fraction of the campaign, spread over windows.
DOWNTIME_GRID = (0.0, 0.25, 0.50)
#: Simulation seeds (one clean run each).
DEFAULT_SEEDS = (11, 222)
#: Independent fault seeds replayed per grid cell and simulation seed.
DEFAULT_REPS = 2
#: Sweep scale: large enough for c-blocks, small enough to sweep.
SWEEP_SCALE = 0.05
#: Fault seeds start here so they never collide with simulation seeds.
FAULT_SEED_BASE = 1000


@dataclass(frozen=True)
class FaultCell:
    """Detection power at one (loss rate, downtime fraction) point."""

    loss_rate: float
    downtime_fraction: float
    power: float
    mean_coverage: float
    mean_c_blocks: float
    runs: int


@dataclass
class FaultSweepResult:
    """The full power surface plus its headline numbers."""

    target_pool: str
    alpha: float
    scale: float
    cells: list[FaultCell] = field(default_factory=list)
    #: First loss rate (zero downtime) with power <= 0.5; None = no cliff.
    cliff_loss_rate: Optional[float] = None

    def cell(self, loss: float, downtime: float) -> Optional[FaultCell]:
        for entry in self.cells:
            if entry.loss_rate == loss and entry.downtime_fraction == downtime:
                return entry
        return None

    def curve(self, downtime: float) -> list[FaultCell]:
        """The power curve over loss rates at one downtime level."""
        return sorted(
            (c for c in self.cells if c.downtime_fraction == downtime),
            key=lambda c: c.loss_rate,
        )


def _detection_run(
    dataset: Dataset,
    txids: frozenset,
    duration: float,
    target_pool: str,
    loss: float,
    downtime: float,
    fault_seed: int,
    alpha: float,
) -> tuple[bool, float, int]:
    """One degraded audit: (detected?, coverage, observed c-blocks)."""
    observer = dataset.metadata.get("observer", dataset.name)
    schedule = FaultSchedule(
        seed=fault_seed,
        tx_loss_rate=loss,
        downtime=spread_downtime(observer, duration, downtime),
    )
    degraded = dataset if schedule.is_null else degrade_dataset(dataset, schedule)
    result = Auditor(degraded).observed_prioritization_test_for(
        target_pool, txids
    )
    return result.p_accelerate < alpha, result.coverage, result.y


def sweep_power_under_faults(
    scale: float = SWEEP_SCALE,
    loss_grid: Sequence[float] = LOSS_GRID,
    downtime_grid: Sequence[float] = DOWNTIME_GRID,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    reps: int = DEFAULT_REPS,
    alpha: float = DEFAULT_ALPHA,
    target_pool: str = TARGET_POOL,
    cache: Optional[DatasetCache] = None,
) -> FaultSweepResult:
    """Power surface of the acceleration test over loss x downtime.

    For every simulation seed one clean dataset-C run is simulated (or
    fetched from ``cache`` — the clean bases are stock dataset-C builds,
    so warm runs skip the simulations entirely); every grid cell then
    degrades that dataset under ``reps`` independent fault seeds and
    re-runs the observed prioritization test for ``target_pool``
    against its inferred self-interest set.  Power is the detected
    fraction over seeds x reps.
    """
    if reps < 1:
        raise ValueError("need at least one fault rep per cell")
    # Validate the whole grid before paying for any simulation.
    for rate in loss_grid:
        FaultSchedule(tx_loss_rate=rate)
    for fraction in downtime_grid:
        spread_downtime("probe", 1.0, fraction)
    bases = []
    for seed in seeds:
        scenario = dataset_c_scenario(seed=seed, scale=scale)
        dataset = build_dataset(scenario, cache=cache)
        txids = dataset.inferred_self_interest_txids(target_pool)
        bases.append((dataset, txids, scenario.engine_config.duration))

    sweep = FaultSweepResult(target_pool=target_pool, alpha=alpha, scale=scale)
    for downtime in downtime_grid:
        for loss in loss_grid:
            detections = []
            coverages = []
            c_blocks = []
            for dataset, txids, duration in bases:
                for rep in range(reps):
                    detected, coverage, y = _detection_run(
                        dataset,
                        txids,
                        duration,
                        target_pool,
                        loss,
                        downtime,
                        FAULT_SEED_BASE + rep,
                        alpha,
                    )
                    detections.append(detected)
                    coverages.append(coverage)
                    c_blocks.append(y)
            runs = len(detections)
            sweep.cells.append(
                FaultCell(
                    loss_rate=loss,
                    downtime_fraction=downtime,
                    power=sum(detections) / runs,
                    mean_coverage=sum(coverages) / runs,
                    mean_c_blocks=sum(c_blocks) / runs,
                    runs=runs,
                )
            )

    for entry in sweep.curve(downtime_grid[0]):
        if entry.power <= 0.5:
            sweep.cliff_loss_rate = entry.loss_rate
            break
    return sweep


def render_sweep(sweep: FaultSweepResult) -> str:
    """The power surface as one table per downtime level."""
    blocks = []
    downtimes = sorted({c.downtime_fraction for c in sweep.cells})
    for downtime in downtimes:
        rows = [
            (
                f"{entry.loss_rate:.0%}",
                f"{entry.power:.2f}",
                f"{entry.mean_coverage:.2f}",
                f"{entry.mean_c_blocks:.1f}",
            )
            for entry in sweep.curve(downtime)
        ]
        blocks.append(
            render_table(
                ["tx loss", "power", "coverage", "c-blocks"],
                rows,
                title=(
                    f"Detection power vs loss at {downtime:.0%} observer "
                    f"downtime (alpha={sweep.alpha}, pool={sweep.target_pool})"
                ),
            )
        )
    cliff = (
        f"{sweep.cliff_loss_rate:.0%}"
        if sweep.cliff_loss_rate is not None
        else "not reached"
    )
    blocks.append(f"power cliff (first loss with power <= 0.5): {cliff}")
    return "\n\n".join(blocks)


def run(ctx: DataContext) -> ExperimentResult:
    """Sweep detection power under faults and locate the cliff."""
    scale = min(ctx.scale, SWEEP_SCALE)
    sweep = sweep_power_under_faults(scale=scale, cache=ctx.cache)
    rendered = render_sweep(sweep)

    clean = sweep.cell(0.0, 0.0)
    mild = sweep.cell(0.05, 0.0)
    worst = sweep.cell(LOSS_GRID[-1], 0.0)
    tolerance = 1.0 / clean.runs if clean is not None else 0.25

    monotone = all(
        all(
            later.power <= earlier.power + tolerance
            for earlier, later in zip(curve, curve[1:])
        )
        for curve in (sweep.curve(d) for d in DOWNTIME_GRID)
    )
    coverage_monotone = all(
        all(
            later.mean_coverage <= earlier.mean_coverage + 1e-9
            for earlier, later in zip(curve, curve[1:])
        )
        for curve in (sweep.curve(d) for d in DOWNTIME_GRID)
    )

    measured = {
        "alpha": sweep.alpha,
        "scale": scale,
        "power_by_cell": {
            (c.loss_rate, c.downtime_fraction): c.power for c in sweep.cells
        },
        "cliff_loss_rate": sweep.cliff_loss_rate,
    }
    checks = [
        check(
            "full detection power on clean data",
            clean is not None and clean.power == 1.0,
            f"power at zero faults: {clean.power if clean else 'n/a'}",
        ),
        check(
            "detection verdict unchanged at <=5% transaction loss",
            mild is not None and mild.power == 1.0,
            f"power at 5% loss: {mild.power if mild else 'n/a'}",
        ),
        check(
            "power degrades monotonically with loss at every downtime level",
            monotone,
        ),
        check(
            "coverage shrinks monotonically with loss (nested masks)",
            coverage_monotone,
        ),
        check(
            "a detection-power cliff exists and is reported",
            sweep.cliff_loss_rate is not None
            and worst is not None
            and worst.power <= 0.5,
            f"cliff at {sweep.cliff_loss_rate}, "
            f"power at {LOSS_GRID[-1]:.0%} loss: "
            f"{worst.power if worst else 'n/a'}",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_faults",
        title="Detection power under measurement faults (robustness extension)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
