"""Table 3 — scam-payment transactions are treated like any other.

During the July 2020 Twitter-scam episode, no pool shows statistically
significant acceleration or deceleration of the scam payments, and the
SPPE values sit near zero.  The same holds in the simulation: scam
transactions pay ordinary fees and no policy singles them out.
"""

from __future__ import annotations

from ..core.audit import Auditor
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "significant_pools": [],
    "scam_txs": 386,
    "scam_blocks": 53,
    "note": "no evidence of scam acceleration or deceleration (p >= 0.001)",
}

ALPHA = 0.001


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Table 3 over the scam episode in dataset C."""
    auditor = Auditor(ctx.dataset_c())
    scam_txids = auditor.dataset.scam_txids()
    rows = auditor.scam_table()
    table_rows = [
        (
            row.pool,
            row.test.theta0,
            row.test.x,
            row.test.y,
            row.test.p_accelerate,
            row.test.p_decelerate,
            row.sppe,
        )
        for row in rows
    ]
    rendered = render_table(
        ["mining pool", "theta0", "x", "y", "p (accel)", "p (decel)", "SPPE %"],
        table_rows,
        title="Table 3: differential prioritization of scam payments",
    )
    significant = [
        row.pool
        for row in rows
        if row.test.accelerates(ALPHA) or row.test.decelerates(ALPHA)
    ]
    committed_scam = sum(
        1
        for txid in scam_txids
        if auditor.dataset.tx_records[txid].commit_height is not None
    )
    measured = {
        "significant_pools": significant,
        "scam_txs": len(scam_txids),
        "scam_txs_committed": committed_scam,
        "pools_tested": len(rows),
    }
    checks = [
        check(
            "no pool shows significant scam acceleration/deceleration",
            not significant,
            f"significant={significant}",
        ),
        check(
            "scam payments were committed like ordinary traffic",
            committed_scam > 0.7 * max(len(scam_txids), 1),
            f"{committed_scam}/{len(scam_txids)}",
        ),
        check(
            "several large pools were tested",
            len(rows) >= 5,
        ),
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Scam-payment prioritization (null result)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
