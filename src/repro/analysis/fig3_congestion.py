"""Fig 3 — chain growth and mempool congestion.

(a) cumulative blocks grow linearly while transactions accelerate
(60% of all transactions in the last 3.5 years); (b) the mempool is
congested (>1 MvB pending) ~75% of the time in dataset A and ~92% in
dataset B; (c) the pending size fluctuates over an order of magnitude.
"""

from __future__ import annotations

import numpy as np

from ..simulation.history import chain_growth_series, recent_transaction_share
from .base import DataContext, ExperimentResult, check
from .tables import render_kv, render_table

PAPER = {
    "recent_tx_share_last_3.5y": 0.60,
    "A_congested_fraction": 0.75,
    "B_congested_fraction": 0.92,
    "peak_backlog_vs_block_size": 15.0,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 3's growth and congestion series."""
    growth = chain_growth_series()
    recent_share = recent_transaction_share(growth)

    dataset_a = ctx.dataset_a()
    dataset_b = ctx.dataset_b()
    series_a = dataset_a.size_series
    series_b = dataset_b.size_series
    assert series_a is not None and series_b is not None

    sizes_a = np.asarray(series_a.sizes(), dtype=float)
    sizes_b = np.asarray(series_b.sizes(), dtype=float)
    congested_a = series_a.congested_fraction()
    congested_b = series_b.congested_fraction()
    peak_multiple_a = float(sizes_a.max() / 1e6) if sizes_a.size else 0.0
    peak_multiple_b = float(sizes_b.max() / 1e6) if sizes_b.size else 0.0

    growth_rows = [
        (int(year), f"{blocks:.3g}", f"{txs:.3g}")
        for year, blocks, txs in zip(
            growth["years"], growth["cumulative_blocks"], growth["cumulative_txs"]
        )
    ]
    rendered = "\n\n".join(
        [
            render_table(
                ["year", "cumulative blocks", "cumulative txs"],
                growth_rows,
                title="Fig 3a: chain growth",
            ),
            render_kv(
                [
                    ("txs issued in last 3.5 years (share)", recent_share),
                    ("dataset A congested fraction", congested_a),
                    ("dataset B congested fraction", congested_b),
                    ("dataset A peak backlog (x block size)", peak_multiple_a),
                    ("dataset B peak backlog (x block size)", peak_multiple_b),
                ],
                title="Fig 3b/3c: mempool congestion",
            ),
        ]
    )
    measured = {
        "recent_tx_share_last_3.5y": round(recent_share, 3),
        "A_congested_fraction": round(congested_a, 3),
        "B_congested_fraction": round(congested_b, 3),
        "A_peak_backlog_multiple": round(peak_multiple_a, 1),
        "B_peak_backlog_multiple": round(peak_multiple_b, 1),
    }
    checks = [
        check(
            "blocks grow linearly while transactions accelerate "
            "(~60% of txs in the last 3.5 years)",
            0.45 <= recent_share <= 0.75,
            f"share={recent_share:.2f}",
        ),
        check(
            "dataset A mempool congested most of the time",
            congested_a > 0.5,
            f"{congested_a:.2f}",
        ),
        check(
            "dataset B more congested than dataset A",
            congested_b > congested_a,
            f"B={congested_b:.2f} A={congested_a:.2f}",
        ),
        check(
            "backlog peaks at several block sizes",
            max(peak_multiple_a, peak_multiple_b) >= 3.0,
            f"A={peak_multiple_a:.1f}x B={peak_multiple_b:.1f}x",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Chain growth and mempool congestion",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
