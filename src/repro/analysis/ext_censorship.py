"""Extension: detecting transaction censorship with the deceleration test.

The paper found no deceleration in the wild (Table 3) and notes that
nothing in the protocol *prevents* it (§6.1).  This experiment injects
the behaviour the paper worried about — a large pool refusing to mine
scam-flagged transactions — and shows the paper's own symmetric
deceleration test catches it, while pools that merely ignore the
transactions stay clean.
"""

from __future__ import annotations

from ..core.audit import Auditor
from ..core.stattests import STRONG_EVIDENCE_P
from ..mining.policies import CensorPolicy, address_predicate
from ..simulation.scenarios import dataset_c_scenario, find_pool
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "context": "Table 3 found no deceleration; §6.1 asks whether norms "
    "should forbid discriminating by wallet address",
    "expectation": "the symmetric test flags an injected censor",
}

#: The pool we turn into a censor for this experiment.
CENSOR_POOL = "Poolin"


def _censoring_scenario(scale: float):
    """Dataset C with one large pool censoring the scam wallet.

    The scam episode is widened (more payments over a longer window)
    relative to the stock scenario so the deceleration test has enough
    c-blocks to be well powered; the paper's own §5.1.2 test needs
    y on the order of dozens of blocks to resolve θ0 ~ 0.15 down to 0.
    """
    scenario = dataset_c_scenario(seed=2020_06_06, scale=scale)
    # Renamed so the dataset cache never conflates this derived build
    # with stock dataset C at the same seed.
    scenario.name = "ext-censorship-C"
    injections = scenario.workload_config.injections
    duration = scenario.engine_config.duration
    injections.scam_count = max(int(600 * scale), 120)
    injections.scam_window = (duration * 0.2, duration * 0.9)
    censor = find_pool(scenario, CENSOR_POOL)
    assert censor is not None
    # The scam wallet address is deterministic (see workload generator).
    from repro.chain.address import AddressFactory

    scam_wallet = frozenset({AddressFactory("scam-wallet").next()})
    censor.policy = CensorPolicy(
        base=censor.policy, banned=address_predicate(scam_wallet)
    )
    return scenario


def _censoring_dataset(scale: float, ctx: "DataContext | None" = None):
    scenario = _censoring_scenario(scale)
    if ctx is not None:
        return ctx.scenario_dataset(scenario)
    return scenario.run().dataset


def run(ctx: DataContext) -> ExperimentResult:
    """Inject a censor and run Table 3's tests against it."""
    dataset = _censoring_dataset(scale=max(ctx.scale, 0.15), ctx=ctx)
    auditor = Auditor(dataset)
    rows = auditor.scam_table()
    table_rows = [
        (
            row.pool,
            row.test.theta0,
            row.test.x,
            row.test.y,
            row.test.p_accelerate,
            row.test.p_decelerate,
        )
        for row in rows
    ]
    rendered = render_table(
        ["mining pool", "theta0", "x", "y", "p (accel)", "p (decel)"],
        table_rows,
        title=f"Scam-payment tests with {CENSOR_POOL} censoring the scam wallet",
    )
    by_pool = {row.pool: row for row in rows}
    censor_row = by_pool.get(CENSOR_POOL)
    false_decelerators = [
        row.pool
        for row in rows
        if row.pool != CENSOR_POOL and row.test.decelerates(STRONG_EVIDENCE_P)
    ]
    measured = {
        "censor_p_decelerate": censor_row.test.p_decelerate if censor_row else None,
        "censor_x": censor_row.test.x if censor_row else None,
        "censor_y": censor_row.test.y if censor_row else None,
        "false_decelerators": false_decelerators,
    }
    checks = [
        check(
            f"the injected censor ({CENSOR_POOL}) is flagged by the "
            "deceleration test",
            censor_row is not None and censor_row.test.decelerates(0.01),
            f"p={censor_row.test.p_decelerate:.2e}" if censor_row else "missing",
        ),
        check(
            "the censor mined (almost) no scam blocks despite its hash power",
            censor_row is not None
            and censor_row.test.observed_share < 0.5 * censor_row.test.theta0,
            (
                f"x={censor_row.test.x} of y={censor_row.test.y} at "
                f"theta0={censor_row.test.theta0:.3f}"
                if censor_row
                else "missing"
            ),
        ),
        check(
            "no honest pool is falsely flagged for deceleration",
            not false_decelerators,
            f"false={false_decelerators}",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_censorship",
        title="Censorship detection (extension of Table 3 / §6.1)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
