"""Extension: the adversary zoo and its detection-power scorecard.

The paper's audits were built to catch one family of misbehaviour —
fee-order deviation in favour of known transaction sets.  This
experiment asks the converse question: *which ordering attacks does the
paper's toolbox actually see?*  A zoo of labelled adversaries (FIFO and
bucketed builders, a uniform-price call auction, MEV-style sandwiching,
censorship-for-rent, selfish mining, and maximal self-interest
acceleration) each runs the **same** labelled workload, with only the
target pool's policy — or the pool-level withholding attack — changed
between rows.  Four detectors from the audit toolbox are then scored on
every run:

* ``accel`` — the §5.1 directional prioritization test on the pool's
  ground-truth self-interest set;
* ``decel`` — the same machinery pointed the other way, at the scam
  population (does the pool *bury* them?);
* ``ppe`` — a distribution-free sign test on per-block prioritization
  errors: is the target pool's PPE above the median PPE of everyone
  else's blocks more often than a fair coin allows?
* ``share`` — a two-sided exact binomial of the pool's committed block
  count against its *configured* hash share (the ground truth the
  simulator knows; a real auditor would substitute an external
  hash-rate estimate).  This is the only cell with any view of
  consensus-level attacks.

The ``honest`` row runs the identical workload with nobody deviating,
so each test's column there is a measured false-positive rate at the
same alpha — the scorecard reports power and FPR side by side, which is
what makes the matrix an honest statement about the audit's blind
spots rather than a list of successes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.audit import Auditor
from ..core.stattests import (
    DEFAULT_ALPHA,
    binom_tail_lower,
    binom_tail_upper,
)
from ..datasets.builder import build_dataset
from ..datasets.cache import DatasetCache
from ..datasets.dataset import Dataset
from ..mining.pool import normalize_hash_shares
from ..simulation.scenarios import ADVERSARY_KINDS, adversary_scenario
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "premise": "the audits target fee-order deviation (§5); other "
    "ordering attacks are out of scope by construction",
    "alpha": DEFAULT_ALPHA,
}

#: The detector battery scored against every zoo lineup.
TESTS = ("accel", "insert", "decel", "ppe", "share")
#: The pool playing the adversary in every lineup.
TARGET_POOL = "F2Pool"
#: Simulation seeds (one zoo run per kind x intensity each).
DEFAULT_SEEDS = (11, 222)
#: Intensity knob settings for kinds that expose one.
DEFAULT_INTENSITIES = (0.5, 1.0)
#: Kinds whose scenario ignores the intensity knob; running them at
#: several intensities would just duplicate identical simulations.
INTENSITY_FREE = frozenset({"honest", "fifo", "call-auction", "max-boost"})
#: Sweep scale: ~36 blocks per run, enough c-blocks for the binomials.
SWEEP_SCALE = 0.08


@dataclass(frozen=True)
class AdversaryCell:
    """One scorecard cell: a detector's rate against one adversary."""

    kind: str
    test: str
    target_pool: str
    #: Fraction of runs with p < alpha.  For the honest row this is a
    #: measured false-positive rate; for adversarial rows it is power.
    rate: float
    mean_p: float
    runs: int

    @property
    def is_honest(self) -> bool:
        return self.kind == "honest"


@dataclass
class DetectionMatrix:
    """The adversary x test scorecard."""

    target_pool: str
    alpha: float
    scale: float
    kinds: tuple[str, ...]
    tests: tuple[str, ...] = TESTS
    cells: list[AdversaryCell] = field(default_factory=list)

    def cell(self, kind: str, test: str) -> Optional[AdversaryCell]:
        for entry in self.cells:
            if entry.kind == kind and entry.test == test:
                return entry
        return None

    def row(self, kind: str) -> list[AdversaryCell]:
        return [c for c in self.cells if c.kind == kind]

    def to_csv(self) -> str:
        """The matrix as CSV with explicit power and FPR columns."""
        out = io.StringIO()
        out.write("kind,test,target_pool,runs,power,fpr,mean_p\n")
        for entry in self.cells:
            power = "" if entry.is_honest else f"{entry.rate:.4f}"
            fpr = f"{entry.rate:.4f}" if entry.is_honest else ""
            out.write(
                f"{entry.kind},{entry.test},{entry.target_pool},"
                f"{entry.runs},{power},{fpr},{entry.mean_p:.6g}\n"
            )
        return out.getvalue()


def _share_test_p(dataset: Dataset, pool: str, theta0: float) -> float:
    """Two-sided exact binomial of committed block share vs ``theta0``.

    ``theta0`` must be the *configured* share — estimating it from the
    chain itself (``dataset.hash_rate_of``) would test the share
    against its own estimate and never reject.
    """
    n = dataset.block_count
    x = sum(1 for name in dataset.block_pools.values() if name == pool)
    if n == 0 or not 0.0 < theta0 < 1.0:
        return 1.0
    return min(
        1.0,
        2.0
        * min(binom_tail_upper(x, n, theta0), binom_tail_lower(x, n, theta0)),
    )


def _ppe_sign_test_p(auditor: Auditor, dataset: Dataset, pool: str) -> float:
    """Sign test: target-pool blocks above everyone else's median PPE.

    Under neutral ordering each target block clears the cross-pool
    median PPE with probability 1/2; counting only *strict* exceedances
    keeps the test conservative when PPE ties at zero.
    """
    blocks = auditor.ppe_distribution()
    target = [
        b.ppe for b in blocks if dataset.block_pools.get(b.height) == pool
    ]
    others = [
        b.ppe
        for b in blocks
        if dataset.block_pools.get(b.height) not in (pool, None)
    ]
    if not target or not others:
        return 1.0
    reference = float(np.median(others))
    x = sum(1 for value in target if value > reference)
    return binom_tail_upper(x, len(target), 0.5)


def detection_pvalues(
    dataset: Dataset, target_pool: str, theta_configured: float
) -> dict[str, float]:
    """All detector p-values against one zoo dataset."""
    auditor = Auditor(dataset)
    accel = auditor.observed_prioritization_test_for(
        target_pool, dataset.self_interest_txids(target_pool)
    )
    insert = auditor.observed_prioritization_test_for(
        target_pool, dataset.mev_attack_txids()
    )
    decel = auditor.observed_prioritization_test_for(
        target_pool, dataset.scam_txids()
    )
    return {
        "accel": accel.p_accelerate,
        "insert": insert.p_accelerate,
        "decel": decel.p_decelerate,
        "ppe": _ppe_sign_test_p(auditor, dataset, target_pool),
        "share": _share_test_p(dataset, target_pool, theta_configured),
    }


def _intensities_for(
    kind: str, intensities: Sequence[float]
) -> tuple[float, ...]:
    if kind in INTENSITY_FREE:
        return (1.0,)
    return tuple(intensities)


def _score_adversary(
    kind: str,
    seed: int,
    intensity: float,
    scale: float,
    target_pool: str,
    cache: Optional[DatasetCache],
) -> dict:
    """One sweep cell: simulate (or load) the lineup, run all detectors."""
    scenario = adversary_scenario(
        kind,
        seed=seed,
        scale=scale,
        intensity=intensity,
        target_pool=target_pool,
    )
    theta0 = dict(
        zip(
            [pool.name for pool in scenario.pools],
            normalize_hash_shares(scenario.pools),
        )
    )[target_pool]
    dataset = build_dataset(scenario, cache=cache)
    return {
        "kind": kind,
        "pvalues": detection_pvalues(dataset, target_pool, theta0),
    }


def _score_adversary_shard(cell) -> dict:
    """Pool-worker wrapper: rebuild the cache from its directory string."""
    kind, seed, intensity, scale, target_pool, cache_dir = cell
    cache = DatasetCache(cache_dir) if cache_dir is not None else None
    return _score_adversary(kind, seed, intensity, scale, target_pool, cache)


def sweep_detection_matrix(
    scale: float = SWEEP_SCALE,
    kinds: Sequence[str] = ADVERSARY_KINDS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    alpha: float = DEFAULT_ALPHA,
    target_pool: str = TARGET_POOL,
    cache: Optional[DatasetCache] = None,
    jobs: int = 1,
) -> DetectionMatrix:
    """Score every detector against every adversary kind.

    One simulation per (kind, seed, intensity) — fetched from ``cache``
    when warm — then all four detectors run on each dataset.  A cell's
    rate aggregates detections over seeds x intensities, so it mixes
    the half- and full-strength adversary; per-intensity resolution is
    available by calling with a single-element ``intensities``.

    With ``jobs > 1`` the independent (kind, seed, intensity) cells
    shard across the process pool via
    :func:`repro.analysis.runner.run_sharded` — cells come back in
    enumeration order and the p-value lists aggregate in exactly the
    sequential order, so the matrix is identical for any ``jobs``.
    Workers share the cache *directory* (lockfile-coordinated), not the
    cache object; a shard failure aborts the sweep rather than return
    a matrix with silently missing runs.
    """
    for kind in kinds:
        if kind not in ADVERSARY_KINDS:
            raise ValueError(f"unknown adversary kind: {kind!r}")
    if not seeds:
        raise ValueError("need at least one seed")
    matrix = DetectionMatrix(
        target_pool=target_pool,
        alpha=alpha,
        scale=scale,
        kinds=tuple(kinds),
    )
    cells = [
        (kind, seed, intensity, scale, target_pool)
        for kind in kinds
        for seed in seeds
        for intensity in _intensities_for(kind, intensities)
    ]
    if jobs > 1 and len(cells) > 1:
        from .runner import run_sharded

        cache_dir = str(cache.directory) if cache is not None else None
        outcomes = run_sharded(
            [cell + (cache_dir,) for cell in cells],
            _score_adversary_shard,
            jobs=jobs,
        )
        results = []
        for outcome in outcomes:
            if not outcome.ok:
                raise RuntimeError(f"adversary shard failed: {outcome.error}")
            results.append(outcome.value)
    else:
        results = [
            _score_adversary(kind, seed, intensity, scale, target_pool, cache)
            for kind, seed, intensity, scale, target_pool in cells
        ]
    pvalues_by_kind: dict[str, dict[str, list[float]]] = {
        kind: {test: [] for test in TESTS} for kind in kinds
    }
    for result in results:
        for test, p in result["pvalues"].items():
            pvalues_by_kind[result["kind"]][test].append(p)
    for kind in kinds:
        for test in TESTS:
            values = pvalues_by_kind[kind][test]
            matrix.cells.append(
                AdversaryCell(
                    kind=kind,
                    test=test,
                    target_pool=target_pool,
                    rate=sum(1 for p in values if p < alpha) / len(values),
                    mean_p=sum(values) / len(values),
                    runs=len(values),
                )
            )
    return matrix


def render_matrix(matrix: DetectionMatrix) -> str:
    """The scorecard as one table: rows = adversaries, columns = tests."""
    rows = []
    for kind in matrix.kinds:
        cells = {c.test: c for c in matrix.row(kind)}
        label = f"{kind} (FPR)" if kind == "honest" else kind
        rows.append(
            (label,)
            + tuple(
                f"{cells[test].rate:.2f}" if test in cells else "-"
                for test in matrix.tests
            )
        )
    table = render_table(
        ["adversary"] + list(matrix.tests),
        rows,
        title=(
            f"Detection scorecard: rate of p < {matrix.alpha} per detector "
            f"(pool={matrix.target_pool}, scale={matrix.scale:g}; honest "
            f"row = false-positive rate, all others = power)"
        ),
    )
    blind = [
        kind
        for kind in matrix.kinds
        if kind != "honest"
        and all(c.rate == 0.0 for c in matrix.row(kind))
    ]
    spots = ", ".join(blind) if blind else "none"
    return f"{table}\n\nblind spots (no detector fires): {spots}"


def scorecard_checks(matrix: DetectionMatrix) -> list:
    """Calibration checks over a detection matrix.

    Factored out of :func:`run` so the scorecard meta-tests can feed a
    synthetic (or deliberately broken) matrix and assert that a silent
    detector failure — an honest cell firing above alpha, or the
    maximal-strength adversary slipping through — flips a check.

    The thresholds are calibrated against the deterministic default
    sweep (fixed seeds, fixed grid): strong fee-order destroyers must
    be caught outright, graded adversaries (bucketed, sandwich) must at
    least fire at full intensity, and the consensus-level attack must
    stay invisible to the ordering tests while the share binomial sees
    it.
    """
    honest = matrix.row("honest")
    boost = matrix.cell("max-boost", "accel")
    bucketed = matrix.cell("bucketed", "ppe")
    sandwich = matrix.cell("sandwich", "insert")
    censor = matrix.cell("censor-for-rent", "decel")
    selfish_share = matrix.cell("selfish", "share")
    ppe_kinds = ("fifo", "call-auction")
    ppe_cells = [matrix.cell(kind, "ppe") for kind in ppe_kinds]

    def rate(cell: Optional[AdversaryCell]) -> float:
        return cell.rate if cell is not None else float("nan")

    return [
        check(
            "matrix covers every adversary x test cell",
            len(matrix.cells) == len(matrix.kinds) * len(matrix.tests)
            and all(c.runs > 0 for c in matrix.cells),
            f"{len(matrix.cells)} cells",
        ),
        check(
            "honest lineup false-positive rate <= alpha in every cell",
            bool(honest)
            and all(cell.rate <= matrix.alpha for cell in honest),
            f"honest FPRs: {[cell.rate for cell in honest]}",
        ),
        check(
            "maximal self-interest acceleration is caught outright",
            boost is not None and boost.rate == 1.0,
            f"max-boost accel power: {rate(boost)}",
        ),
        check(
            "fee-order-destroying builders light up the PPE sign test",
            all(cell is not None and cell.rate == 1.0 for cell in ppe_cells),
            f"ppe power {[(k, rate(c)) for k, c in zip(ppe_kinds, ppe_cells)]}",
        ),
        check(
            "graded adversaries fire at full intensity "
            "(bucketed via ppe, sandwich via the insertion binomial)",
            bucketed is not None
            and bucketed.rate > 0.0
            and sandwich is not None
            and sandwich.rate > 0.0,
            f"bucketed ppe {rate(bucketed)}, sandwich insert {rate(sandwich)}",
        ),
        check(
            "censorship-for-rent is caught by the deceleration binomial",
            censor is not None and censor.rate >= 0.5,
            f"censor-for-rent decel power: {rate(censor)}",
        ),
        check(
            "ordering tests alone cannot see selfish mining "
            "(only the share test has a chance)",
            selfish_share is not None
            and selfish_share.rate > 0.0
            and all(
                c.rate == 0.0
                for c in matrix.row("selfish")
                if c.test in ("accel", "decel")
            ),
            f"selfish share power: {rate(selfish_share)}",
        ),
    ]


def run(ctx: DataContext) -> ExperimentResult:
    """Build the adversary zoo scorecard and check its calibration."""
    scale = min(ctx.scale, SWEEP_SCALE)
    matrix = sweep_detection_matrix(scale=scale, cache=ctx.cache)
    rendered = render_matrix(matrix)

    measured = {
        "alpha": matrix.alpha,
        "scale": scale,
        "rate_by_cell": {(c.kind, c.test): c.rate for c in matrix.cells},
    }
    checks = scorecard_checks(matrix)
    return ExperimentResult(
        experiment_id="ext_adversaries",
        title="Adversary zoo: ordering attacks vs the audit toolbox",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
