"""Extension: statistical power of the differential-prioritization test.

§5.1.3 discusses scaling the binomial test; the practical question for
an auditor is the reverse: *how many c-blocks does it take to catch a
pool accelerating with a given strength?*  This experiment computes,
by Monte-Carlo over the exact test, the detection probability at
α = 0.001 as a function of the pool's hash share θ0, the acceleration
strength (the true probability θ that a c-block is theirs), and the
number of observed c-blocks y — and reads off the minimum y per cell.

It then situates the paper's Table 2 rows on that map: every reported
detection sits comfortably above its power threshold, i.e. the paper's
sample sizes were sufficient, not lucky.
"""

from __future__ import annotations

import numpy as np

from ..core.stattests import STRONG_EVIDENCE_P, binom_tail_upper
from ..core.vectorized import binom_tail_upper_batch, scalar_mode
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "table2_rows": [
        ("F2Pool", 0.1753, 466 / 839, 839),
        ("ViaBTC", 0.0676, 412 / 720, 720),
        ("SlushPool", 0.0375, 214 / 1343, 1343),
    ],
    "alpha": STRONG_EVIDENCE_P,
}

#: Hash shares representative of large and small pools.
THETA0_GRID = (0.175, 0.07, 0.0375)
#: Acceleration strengths: observed c-block share under misbehaviour.
THETA_GRID = (0.10, 0.2, 0.3, 0.5)
#: Sample sizes to probe.
Y_GRID = (10, 25, 50, 100, 250, 500, 1000)


def detection_power(
    theta0: float,
    theta: float,
    y: int,
    alpha: float = STRONG_EVIDENCE_P,
    trials: int = 400,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo P(test rejects at level alpha | true share theta)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    xs = rng.binomial(y, theta, size=trials)
    if scalar_mode():
        rejections = sum(
            1 for x in xs if binom_tail_upper(int(x), y, theta0) < alpha
        )
    else:
        rejections = int(
            np.count_nonzero(binom_tail_upper_batch(xs, y, theta0) < alpha)
        )
    return rejections / trials


def minimum_detectable_y(
    theta0: float, theta: float, power_target: float = 0.9
) -> int | None:
    """Smallest probed y with detection power >= ``power_target``."""
    rng = np.random.default_rng(17)
    for y in Y_GRID:
        if theta <= theta0:
            return None
        if detection_power(theta0, theta, y, rng=rng) >= power_target:
            return y
    return None


def run(ctx: DataContext) -> ExperimentResult:
    """Map the test's power surface and situate Table 2's rows on it."""
    rng = np.random.default_rng(42)
    rows = []
    power_map: dict[tuple[float, float], dict[int, float]] = {}
    for theta0 in THETA0_GRID:
        for theta in THETA_GRID:
            if theta <= theta0:
                continue
            powers = {
                y: detection_power(theta0, theta, y, rng=rng) for y in Y_GRID
            }
            power_map[(theta0, theta)] = powers
            min_y = next(
                (y for y in Y_GRID if powers[y] >= 0.9), None
            )
            rows.append(
                (
                    theta0,
                    theta,
                    *(round(powers[y], 2) for y in Y_GRID),
                    min_y if min_y is not None else ">1000",
                )
            )
    rendered = render_table(
        ["theta0", "true share"] + [f"y={y}" for y in Y_GRID] + ["min y (90%)"],
        rows,
        title=(
            "Detection power of the acceleration test at alpha=0.001 "
            "(Monte-Carlo, 400 trials/cell)"
        ),
    )

    # The paper's detections vs their power thresholds.
    paper_rows = []
    for pool, theta0, observed_share, y in PAPER["table2_rows"]:
        power = detection_power(
            theta0, observed_share, y, rng=np.random.default_rng(7)
        )
        paper_rows.append((pool, theta0, round(observed_share, 3), y, round(power, 3)))
    rendered += "\n\n" + render_table(
        ["pool", "theta0", "observed share", "y", "power at that y"],
        paper_rows,
        title="The paper's Table 2 detections on the power map",
    )

    measured = {
        "cells": len(rows),
        "paper_rows_power": {row[0]: row[4] for row in paper_rows},
    }
    strong = power_map.get((0.07, 0.5), {})
    weak = power_map.get((0.07, 0.1), {})
    checks = [
        check(
            "power increases with sample size in every cell",
            all(
                all(
                    powers[a] <= powers[b] + 0.1
                    for a, b in zip(Y_GRID, Y_GRID[1:])
                )
                for powers in power_map.values()
            ),
        ),
        check(
            "strong acceleration (0.5 share at theta0=0.07) is detectable "
            "with few dozen c-blocks",
            strong.get(25, 0.0) > 0.8,
            f"power at y=25: {strong.get(25, 0.0):.2f}",
        ),
        check(
            "weak acceleration (0.1 share at theta0=0.07) is invisible at "
            "small y and only slowly becomes detectable",
            weak.get(50, 1.0) < 0.5
            and weak.get(1000, 0.0) > weak.get(50, 1.0) + 0.3,
            f"y=50: {weak.get(50, 1.0):.2f}, y=1000: {weak.get(1000, 0.0):.2f}",
        ),
        check(
            "every Table 2 detection sits above the 95% power threshold",
            all(row[4] > 0.95 for row in paper_rows),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_power",
        title="Power analysis of the prioritization test (§5.1.3 extension)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
