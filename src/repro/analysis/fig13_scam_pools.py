"""Fig 13 — pool activity during the scam window.

Blocks mined and transactions confirmed by each pool during the Twitter
scam episode.  The shape target: the per-pool block shares within the
window track the pools' overall hash rates (nobody joined or left the
race because of the scam).
"""

from __future__ import annotations

import numpy as np

from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "window_blocks": 3697,
    "window_txs": 8_318_621,
    "top5": ["Poolin", "F2Pool", "BTC.com", "AntPool", "Huobi"],
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 13's scam-window pool distribution."""
    dataset = ctx.dataset_c()
    window = dataset.metadata.get("scam_window")
    if window is None:
        # Derive the window from the scam transactions themselves.
        scam_records = [
            dataset.tx_records[txid] for txid in dataset.scam_txids()
        ]
        times = [r.broadcast_time for r in scam_records]
        window = (min(times), max(times)) if times else (0.0, 0.0)
    start, end = window

    in_window = [
        block
        for block in dataset.chain
        if start <= block.timestamp <= end
    ]
    pool_blocks: dict[str, int] = {}
    pool_txs: dict[str, int] = {}
    for block in in_window:
        pool = dataset.block_pools.get(block.height, "unknown")
        pool_blocks[pool] = pool_blocks.get(pool, 0) + 1
        pool_txs[pool] = pool_txs.get(pool, 0) + block.tx_count
    total_blocks = len(in_window)
    overall = {est.pool: est.share for est in dataset.hash_rates()}
    rows = sorted(
        (
            (
                pool,
                count,
                count / total_blocks if total_blocks else float("nan"),
                overall.get(pool, 0.0),
                pool_txs.get(pool, 0),
            )
            for pool, count in pool_blocks.items()
        ),
        key=lambda row: -row[1],
    )
    rendered = render_table(
        ["pool", "window blocks", "window share", "overall share", "window txs"],
        rows,
        title="Fig 13: pool activity during the scam window",
    )
    # Shares within the window should track overall shares for pools
    # with enough blocks to measure; the sample-size floor and the
    # tolerated deviation adapt to how small the window is.
    min_blocks = 5 if total_blocks >= 100 else 2
    tolerance = 0.08 if total_blocks >= 100 else 0.15
    deviations = [
        abs(row[2] - row[3])
        for row in rows
        if row[0] != "unknown" and row[1] >= min_blocks
    ]
    tracks = bool(deviations) and float(np.mean(deviations)) < tolerance
    measured = {
        "window_blocks": total_blocks,
        "window_txs": sum(pool_txs.values()),
        "top5": [row[0] for row in rows[:5]],
        "mean_share_deviation": round(float(np.mean(deviations)), 4)
        if deviations
        else None,
    }
    checks = [
        check("the scam window contains blocks from many pools", len(rows) >= 5),
        check(
            "window shares track overall hash rates",
            tracks,
            f"mean |dev|={float(np.mean(deviations)):.3f}" if deviations else "no data",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig13",
        title="Mining during the scam episode",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
