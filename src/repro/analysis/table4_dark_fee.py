"""Table 4 — detecting dark-fee accelerated transactions via SPPE.

Sweep the per-transaction signed position prediction error threshold
over BTC.com's blocks and measure what share of flagged candidates the
acceleration service confirms.  Paper shape: precision ~74% at
SPPE >= 100%, ~65% at >= 99%, ~18% at >= 90%, ~1% at >= 50%, and zero
accelerated transactions in a random control sample.
"""

from __future__ import annotations

import numpy as np

from ..core.audit import Auditor
from ..simulation.scenarios import BTC_COM_SERVICE
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "rows": [
        (100.0, 628, 464, 73.89),
        (99.0, 1108, 720, 64.98),
        (90.0, 5365, 972, 18.12),
        (50.0, 95282, 1007, 1.06),
        (1.0, 657423, 1029, 0.16),
    ],
    "control_accelerated": 0,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Table 4 for the BTC.com analogue."""
    auditor = Auditor(ctx.dataset_c())
    report = auditor.dark_fee_sweep(
        "BTC.com", service_name=BTC_COM_SERVICE, rng=np.random.default_rng(4)
    )
    rows = [
        (
            f">={row.threshold:g}%",
            row.candidate_count,
            row.accelerated_count,
            100.0 * row.precision if row.precision == row.precision else float("nan"),
        )
        for row in report.rows
    ]
    rendered = render_table(
        ["SPPE", "# txs", "# acc. txs", "% acc. txs"],
        rows,
        title="Table 4: SPPE threshold sweep over BTC.com blocks",
    )
    precisions = {row.threshold: row.precision for row in report.rows}
    scores = auditor.dark_fee_scores("BTC.com", service_name=BTC_COM_SERVICE)
    recall_99 = next(
        (s.recall for s in scores if s.threshold == 99.0), float("nan")
    )
    measured = {
        "precision_at_99": precisions.get(99.0),
        "precision_at_50": precisions.get(50.0),
        "recall_at_99_vs_ground_truth": recall_99,
        "control_sample": report.control_sample_size,
        "control_accelerated": report.control_accelerated,
    }

    def valid(p: float) -> bool:
        return p == p  # not NaN

    p99 = precisions.get(99.0, float("nan"))
    p50 = precisions.get(50.0, float("nan"))
    checks = [
        check(
            "high SPPE strongly indicates acceleration (precision at >=99% is high)",
            valid(p99) and p99 > 0.4,
            f"precision={p99:.2f}" if valid(p99) else "no candidates",
        ),
        check(
            "precision decays sharply at looser thresholds (>=50% is low)",
            valid(p50) and valid(p99) and p50 < 0.5 * p99,
            f"p50={p50:.3f} p99={p99:.3f}" if valid(p50) and valid(p99) else "-",
        ),
        check(
            "random control sample contains (almost) no accelerated txs",
            report.control_sample_size > 0
            and report.control_rate < 0.02,
            f"{report.control_accelerated}/{report.control_sample_size}",
        ),
        check(
            "candidate counts grow as the threshold loosens",
            all(
                earlier.candidate_count <= later.candidate_count
                for earlier, later in zip(report.rows, report.rows[1:])
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="table4",
        title="Dark-fee transaction detection",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
