"""Appendix figures 9-12 — dataset B's congestion, fees, and delays.

Fig 9: dataset B's mempool size fluctuates far more than dataset A's
(the June 2019 price-surge congestion).  Fig 11: fee-rates rise with
congestion in B too.  Fig 12: higher fee bands commit faster in B.
(Fig 10, per-pool fee-rate distributions, is covered here as well: the
paper finds no major differences across pools.)
"""

from __future__ import annotations

import numpy as np

from ..core.audit import Auditor
from ..core.congestion import FEE_BAND_LABELS, dataset_fee_rates_by_pool
from ..mempool.snapshots import CONGESTION_BINS
from .base import DataContext, ExperimentResult, check
from .cdf import dominates, quantile_table
from .tables import render_kv, render_table

PAPER = {
    "B_more_volatile_than_A": True,
    "fees_rise_with_congestion_in_B": True,
    "higher_fees_commit_faster_in_B": True,
    "pool_fee_distributions_similar": True,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate the appendix dataset-B analyses."""
    dataset_a = ctx.dataset_a()
    dataset_b = ctx.dataset_b()
    auditor_b = Auditor(dataset_b)

    sizes_a = np.asarray(dataset_a.size_series.sizes(), dtype=float)
    sizes_b = np.asarray(dataset_b.size_series.sizes(), dtype=float)
    std_a = float(sizes_a.std()) if sizes_a.size else 0.0
    std_b = float(sizes_b.std()) if sizes_b.size else 0.0

    by_congestion = auditor_b.fee_rates_by_congestion_level()
    populated = [
        by_congestion[label]
        for label in CONGESTION_BINS
        if len(by_congestion[label]) >= 30
    ]
    rising = len(populated) >= 2 and all(
        dominates(populated[i], populated[i + 1], tolerance=0.12)
        for i in range(len(populated) - 1)
    )

    by_band = auditor_b.delay_by_fee_band(include_censored=True)
    low, high, exorbitant = (by_band[label] for label in FEE_BAND_LABELS)
    faster = (
        len(high) > 10
        and len(low) > 10
        and dominates(high, low)
        and (len(exorbitant) <= 10 or dominates(exorbitant, high))
    )

    # Fig 10: per-pool fee-rate medians should be mutually close.
    by_pool = dataset_fee_rates_by_pool(
        dataset_a.commit_pools(), dataset_a.fee_rates()
    )
    top5 = [
        est.pool for est in dataset_a.hash_rates() if est.pool != "unknown"
    ][:5]
    pool_medians = {
        pool: float(np.median(by_pool[pool]))
        for pool in top5
        if pool in by_pool and len(by_pool[pool])
    }
    medians = list(pool_medians.values())
    similar = (
        len(medians) >= 3 and max(medians) <= 5.0 * min(medians)
    )

    delay_rows = [
        (label, len(by_band[label]), *quantile_table({label: by_band[label]}, (0.5, 0.9))[label])
        for label in FEE_BAND_LABELS
    ]
    rendered = "\n\n".join(
        [
            render_kv(
                [
                    ("dataset A mempool size std (vB)", std_a),
                    ("dataset B mempool size std (vB)", std_b),
                    ("B/A volatility ratio", std_b / std_a if std_a else float("inf")),
                ],
                title="Fig 9: mempool size volatility",
            ),
            render_table(
                ["congestion bin", "txs", "median fee sat/vB"],
                [
                    (label, len(by_congestion[label]),
                     float(np.median(by_congestion[label])) if len(by_congestion[label]) else float("nan"))
                    for label in CONGESTION_BINS
                ],
                title="Fig 11: fee-rates by congestion (dataset B)",
            ),
            render_table(
                ["fee band", "txs", "p50 delay", "p90 delay"],
                delay_rows,
                title="Fig 12: delays by fee band (dataset B)",
            ),
            render_table(
                ["pool", "median committed fee sat/vB"],
                sorted(pool_medians.items()),
                title="Fig 10: per-pool committed fee-rate medians (dataset A)",
            ),
        ]
    )
    measured = {
        "B_over_A_volatility": round(std_b / std_a, 2) if std_a else None,
        "fees_rise_with_congestion_in_B": rising,
        "higher_fees_commit_faster_in_B": faster,
        "pool_fee_medians": {k: round(v, 2) for k, v in pool_medians.items()},
    }
    checks = [
        check(
            "dataset B's mempool is more volatile than dataset A's",
            std_b > std_a,
            f"B={std_b:.3g} A={std_a:.3g}",
        ),
        check("fee-rates rise with congestion in dataset B", rising),
        check("higher fee bands commit faster in dataset B", faster),
        check(
            "per-pool fee-rate distributions show no major differences",
            similar,
            f"medians={pool_medians}",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig9_12",
        title="Dataset B appendix analyses (Figs 9-12)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
