"""Fig 6 — pairwise selection-norm violations.

Across 30 random mempool snapshots from dataset A, count transaction
pairs where the earlier, better-paying transaction was committed later.
The paper's findings: a small but non-trivial violating fraction that
(i) shrinks but survives ε-tightening of arrival times (10 s, 10 min),
and (ii) shrinks but survives CPFP exclusion.
"""

from __future__ import annotations

import numpy as np

from ..core.audit import Auditor
from ..core.violations import EPSILON_10_MINUTES, EPSILON_10_SECONDS
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "violations_nonzero": True,
    "violations_shrink_with_epsilon": True,
    "violations_survive_cpfp_filter": True,
}

EPSILONS = (0.0, EPSILON_10_SECONDS, EPSILON_10_MINUTES)


def _fractions(auditor: Auditor, exclude_cpfp: bool, rng_seed: int) -> dict[float, np.ndarray]:
    # One snapshot sample shared across the ε grid: identical to the
    # former per-ε loop (each draw re-seeded identically) but the
    # vectorized path reuses the ε-independent pair comparisons.
    stats_by_epsilon = auditor.violation_stats_multi(
        EPSILONS,
        exclude_cpfp=exclude_cpfp,
        rng=np.random.default_rng(rng_seed),
    )
    return {
        epsilon: np.asarray(
            [s.violating_fraction for s in stats_by_epsilon[epsilon]],
            dtype=float,
        )
        for epsilon in EPSILONS
    }


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 6's violation-fraction distributions."""
    auditor = Auditor(ctx.dataset_a())
    with_cpfp = _fractions(auditor, exclude_cpfp=False, rng_seed=30)
    without_cpfp = _fractions(auditor, exclude_cpfp=True, rng_seed=30)

    def rows_for(fractions: dict[float, np.ndarray]) -> list[tuple]:
        rows = []
        for epsilon, values in fractions.items():
            label = {0.0: "*", 10.0: "10 s", 600.0: "10 min"}.get(epsilon, str(epsilon))
            rows.append(
                (
                    label,
                    float(np.median(values)),
                    float(np.mean(values)),
                    float(values.max()) if values.size else float("nan"),
                )
            )
        return rows

    rendered = "\n\n".join(
        [
            render_table(
                ["epsilon", "median fraction", "mean fraction", "max fraction"],
                rows_for(with_cpfp),
                title="Fig 6a: violating pair fraction, all transactions",
            ),
            render_table(
                ["epsilon", "median fraction", "mean fraction", "max fraction"],
                rows_for(without_cpfp),
                title="Fig 6b: violating pair fraction, non-CPFP transactions",
            ),
        ]
    )
    measured = {
        "all_eps0_mean": float(np.mean(with_cpfp[0.0])),
        "all_eps10s_mean": float(np.mean(with_cpfp[EPSILON_10_SECONDS])),
        "all_eps10m_mean": float(np.mean(with_cpfp[EPSILON_10_MINUTES])),
        "noncpfp_eps0_mean": float(np.mean(without_cpfp[0.0])),
    }
    checks = [
        check(
            "a non-trivial fraction of pairs violates the norm",
            float(np.mean(with_cpfp[0.0])) > 0.0,
            f"mean={float(np.mean(with_cpfp[0.0])):.2e}",
        ),
        check(
            "tightening the time constraint reduces, but does not erase, violations",
            float(np.mean(with_cpfp[EPSILON_10_MINUTES]))
            <= float(np.mean(with_cpfp[0.0]))
            and float(np.mean(with_cpfp[EPSILON_10_MINUTES])) >= 0.0,
        ),
        check(
            "violations persist after discarding CPFP transactions",
            float(np.mean(without_cpfp[0.0])) > 0.0,
            f"mean={float(np.mean(without_cpfp[0.0])):.2e}",
        ),
        check(
            "CPFP filtering lowers the violating fraction",
            float(np.mean(without_cpfp[0.0])) <= float(np.mean(with_cpfp[0.0])),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Pairwise fee-rate selection violations",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
