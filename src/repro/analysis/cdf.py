"""Empirical CDF helpers shared by the figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted values and cumulative probabilities."""

    values: np.ndarray
    probabilities: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Ecdf":
        array = np.sort(np.asarray(values, dtype=float))
        if array.size == 0:
            return cls(np.empty(0), np.empty(0))
        probs = np.arange(1, array.size + 1, dtype=float) / array.size
        return cls(values=array, probabilities=probs)

    @property
    def count(self) -> int:
        return int(self.values.size)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        if self.count == 0:
            return float("nan")
        return float(np.searchsorted(self.values, value, side="right") / self.count)

    def quantile(self, q: float) -> float:
        """The q-th quantile (q in [0, 1])."""
        if self.count == 0:
            return float("nan")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {q}")
        return float(np.quantile(self.values, q))

    def sample_points(self, count: int = 25) -> list[tuple[float, float]]:
        """Evenly spaced (value, probability) pairs for text rendering."""
        if self.count == 0:
            return []
        indexes = np.unique(
            np.linspace(0, self.count - 1, num=min(count, self.count)).astype(int)
        )
        return [
            (float(self.values[i]), float(self.probabilities[i])) for i in indexes
        ]


def ecdf(values: Sequence[float]) -> Ecdf:
    """Shorthand constructor."""
    return Ecdf.from_values(values)


def quantile_table(
    series: dict[str, Sequence[float]],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
) -> dict[str, list[float]]:
    """Per-series quantiles — the text analogue of overlaid CDFs."""
    table: dict[str, list[float]] = {}
    for label, values in series.items():
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            table[label] = [float("nan")] * len(quantiles)
        else:
            table[label] = [float(np.quantile(array, q)) for q in quantiles]
    return table


def dominates(
    lower: Sequence[float], upper: Sequence[float], tolerance: float = 0.05
) -> bool:
    """First-order stochastic dominance check at the deciles.

    True when the ``upper`` sample is at least as large as ``lower`` at
    every decile — how benchmarks assert "higher congestion ⇒ higher
    fees" style claims without exact-number pinning.  ``tolerance``
    allows a small relative slack per decile: empirical CDFs of finite
    samples routinely cross by a hair at extreme quantiles even when
    the population ordering is clean.
    """
    low = np.asarray(lower, dtype=float)
    up = np.asarray(upper, dtype=float)
    if low.size == 0 or up.size == 0:
        return False
    probes = np.linspace(0.1, 0.9, 9)
    low_q = np.quantile(low, probes)
    up_q = np.quantile(up, probes)
    return bool(np.all(up_q >= low_q - tolerance * np.abs(low_q)))
