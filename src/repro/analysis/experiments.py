"""Experiment registry: every table and figure, by id."""

from __future__ import annotations

from typing import Iterable

from .base import DataContext, ExperimentResult, ExperimentRunner
from . import (
    ablations,
    ext_adversaries,
    ext_censorship,
    ext_faults,
    ext_norms,
    ext_power,
    ext_rbf,
    ext_verification,
    fig1_norm_shift,
    fig2_pools,
    fig3_congestion,
    fig4_delays_fees,
    fig5_fee_delay,
    fig6_violations,
    fig7_ppe,
    fig8_wallets,
    fig9_12_datasetB,
    fig13_scam_pools,
    fig14_accel_fees,
    table1_datasets,
    table2_self_interest,
    table3_scam,
    table4_dark_fee,
    table5_fee_revenue,
)

#: All experiments in paper order.
EXPERIMENTS: dict[str, ExperimentRunner] = {
    "fig1": fig1_norm_shift.run,
    "table1": table1_datasets.run,
    "fig2": fig2_pools.run,
    "fig3": fig3_congestion.run,
    "fig4": fig4_delays_fees.run,
    "fig5": fig5_fee_delay.run,
    "fig6": fig6_violations.run,
    "fig7": fig7_ppe.run,
    "fig8": fig8_wallets.run,
    "table2": table2_self_interest.run,
    "table3": table3_scam.run,
    "table4": table4_dark_fee.run,
    "table5": table5_fee_revenue.run,
    "fig9_12": fig9_12_datasetB.run,
    "fig13": fig13_scam_pools.run,
    "fig14": fig14_accel_fees.run,
}

#: Extensions beyond the paper: §6.1 follow-ups and design ablations.
EXTENSIONS: dict[str, ExperimentRunner] = {
    "ext_norms": ext_norms.run,
    "ext_censorship": ext_censorship.run,
    "ext_verification": ext_verification.run,
    "ext_rbf": ext_rbf.run,
    "ext_power": ext_power.run,
    "ext_faults": ext_faults.run,
    "ext_adversaries": ext_adversaries.run,
    "abl_selection": ablations.run_selection,
    "abl_epsilon": ablations.run_epsilon,
    "abl_jitter": ablations.run_jitter,
}

#: Everything runnable, paper artefacts first.
ALL_RUNNERS: dict[str, ExperimentRunner] = {**EXPERIMENTS, **EXTENSIONS}


def run_experiment(experiment_id: str, ctx: DataContext) -> ExperimentResult:
    """Run one experiment by id (paper artefact or extension)."""
    try:
        runner = ALL_RUNNERS[experiment_id]
    except KeyError:
        known = ", ".join(ALL_RUNNERS)
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return runner(ctx)


def run_experiments(
    experiment_ids: Iterable[str], ctx: DataContext
) -> list[ExperimentResult]:
    """Run several experiments, sharing one data context."""
    return [run_experiment(eid, ctx) for eid in experiment_ids]


def run_all(ctx: DataContext) -> list[ExperimentResult]:
    """Run the full battery in paper order."""
    return run_experiments(EXPERIMENTS, ctx)
