"""Fig 8 — pool reward wallets and inferred self-interest transactions.

(a) the number of distinct payout wallets per pool (SlushPool used 56,
Poolin 23 in the paper's data); (b) how many committed transactions the
auditor attributes to each pool's wallets — the §5.2 inference step that
feeds Table 2.
"""

from __future__ import annotations

from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "slushpool_wallets": 56,
    "poolin_wallets": 23,
    "total_inferred_self_interest": 12_121,
    "inferred_share_of_issued": 0.00011,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 8's wallet and self-interest-transaction counts."""
    dataset = ctx.dataset_c()
    top_pools = [
        est.pool for est in dataset.hash_rates() if est.pool != "unknown"
    ][:10]
    rows = []
    inferred_counts: dict[str, int] = {}
    for pool in top_pools:
        wallets = dataset.pool_wallets.get(pool, frozenset())
        inferred = dataset.inferred_self_interest_txids(pool)
        truth = dataset.self_interest_txids(pool)
        committed_truth = {
            txid
            for txid in truth
            if dataset.tx_records[txid].commit_height is not None
        }
        inferred_counts[pool] = len(inferred)
        rows.append(
            (
                pool,
                len(wallets),
                len(inferred),
                len(committed_truth),
            )
        )
    total_inferred = sum(inferred_counts.values())
    share = total_inferred / max(dataset.tx_count, 1)
    rendered = render_table(
        ["pool", "reward wallets", "inferred self-interest txs", "ground-truth committed"],
        rows,
        title="Fig 8: wallets per pool and inferred MPO transactions (dataset C)",
    )
    measured = {
        "total_inferred_self_interest": total_inferred,
        "inferred_share_of_issued": round(share, 6),
        "wallet_counts": {row[0]: row[1] for row in rows},
    }
    recall_ok = all(
        row[2] >= row[3] * 0.9 for row in rows if row[3] > 0
    )
    checks = [
        check(
            "pools use multiple payout wallets (SlushPool the most)",
            max((row[1] for row in rows), default=0) > 10,
        ),
        check(
            "self-interest transactions are a tiny share of all traffic",
            share < 0.05,
            f"share={share:.4f}",
        ),
        check(
            "wallet-based inference recovers the injected self-interest txs",
            recall_ok,
        ),
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Pool wallets and self-interest transactions",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
