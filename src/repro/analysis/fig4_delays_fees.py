"""Fig 4 — commit delays, fee-rates, and the congestion coupling.

(a) delay distributions: most transactions commit in the next block but
a heavy tail waits 3+ / 10+ blocks; (b) committed fee-rates span many
orders of magnitude with most mass at 10-100 sat/vB (1e-4..1e-3
BTC/KB); (c) fee-rates rise with the congestion level at issuance.
"""

from __future__ import annotations

from ..core.audit import Auditor
from ..core.congestion import FeeRateSummary
from ..mempool.snapshots import CONGESTION_BINS
from .base import DataContext, ExperimentResult, check
from .cdf import dominates, quantile_table
from .tables import render_table

PAPER = {
    "A_next_block_fraction": 0.65,
    "B_next_block_fraction": 0.60,
    "A_delayed_3plus": 0.15,
    "B_delayed_3plus": 0.20,
    "A_delayed_10plus": 0.05,
    "B_delayed_10plus": 0.10,
    "A_mid_band_fraction": 0.70,
    "B_mid_band_fraction": 0.513,
    "fees_rise_with_congestion": True,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 4's delay and fee-rate distributions."""
    auditor_a = Auditor(ctx.dataset_a())
    auditor_b = Auditor(ctx.dataset_b())

    delay_a = auditor_a.delay_summary()
    delay_b = auditor_b.delay_summary()
    rates_a, _ = auditor_a.commit_delays()
    rates_b, _ = auditor_b.commit_delays()
    fees_a = FeeRateSummary.from_rates(rates_a)
    fees_b = FeeRateSummary.from_rates(rates_b)

    by_congestion = auditor_a.fee_rates_by_congestion_level()
    congestion_rows = [
        (label, len(by_congestion[label]))
        + tuple(quantile_table({label: by_congestion[label]})[label][1:4])
        for label in CONGESTION_BINS
    ]

    rendered = "\n\n".join(
        [
            render_table(
                ["dataset", "txs", "next block", ">=3 blocks", ">=10 blocks", "max"],
                [
                    (
                        "A",
                        delay_a.tx_count,
                        delay_a.next_block_fraction,
                        delay_a.delayed_3plus_fraction,
                        delay_a.delayed_10plus_fraction,
                        delay_a.max_delay,
                    ),
                    (
                        "B",
                        delay_b.tx_count,
                        delay_b.next_block_fraction,
                        delay_b.delayed_3plus_fraction,
                        delay_b.delayed_10plus_fraction,
                        delay_b.max_delay,
                    ),
                ],
                title="Fig 4a: commit delays",
            ),
            render_table(
                ["dataset", "txs", "10-100 sat/vB share", ">100 sat/vB share"],
                [
                    ("A", fees_a.tx_count, fees_a.mid_band_fraction, fees_a.exorbitant_fraction),
                    ("B", fees_b.tx_count, fees_b.mid_band_fraction, fees_b.exorbitant_fraction),
                ],
                title="Fig 4b: committed fee-rates",
            ),
            render_table(
                ["congestion bin", "txs", "p25 sat/vB", "p50 sat/vB", "p75 sat/vB"],
                congestion_rows,
                title="Fig 4c: fee-rates by congestion at issuance (dataset A)",
            ),
        ]
    )
    measured = {
        "A_next_block_fraction": round(delay_a.next_block_fraction, 3),
        "B_next_block_fraction": round(delay_b.next_block_fraction, 3),
        "A_delayed_3plus": round(delay_a.delayed_3plus_fraction, 3),
        "B_delayed_3plus": round(delay_b.delayed_3plus_fraction, 3),
        "A_delayed_10plus": round(delay_a.delayed_10plus_fraction, 3),
        "B_delayed_10plus": round(delay_b.delayed_10plus_fraction, 3),
        "A_mid_band_fraction": round(fees_a.mid_band_fraction, 3),
        "B_mid_band_fraction": round(fees_b.mid_band_fraction, 3),
    }

    # Dominance chain across congestion bins that actually have data.
    populated = [
        by_congestion[label] for label in CONGESTION_BINS if len(by_congestion[label]) >= 30
    ]
    rising = all(
        dominates(populated[i], populated[i + 1], tolerance=0.12)
        for i in range(len(populated) - 1)
    ) and len(populated) >= 2
    checks = [
        check(
            "most transactions commit within a few blocks, with a heavy tail",
            delay_a.next_block_fraction > 0.4 and delay_a.delayed_3plus_fraction > 0.05,
            f"next={delay_a.next_block_fraction:.2f}",
        ),
        check(
            "dataset B sees longer delays than dataset A (more congestion)",
            delay_b.delayed_3plus_fraction >= delay_a.delayed_3plus_fraction,
        ),
        check(
            "bulk of fee-rates sit at or above the 10-100 sat/vB band",
            fees_a.mid_band_fraction + fees_a.exorbitant_fraction > 0.5,
            f"A mid+exorbitant={fees_a.mid_band_fraction + fees_a.exorbitant_fraction:.2f}",
        ),
        check(
            "fee-rates rise with congestion level (stochastic dominance)",
            rising,
            f"{len(populated)} populated bins",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Delays, fee-rates, and congestion",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
