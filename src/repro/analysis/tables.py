"""Plain-text table rendering for experiment output.

Every experiment prints paper-vs-measured rows through this renderer,
so benchmark logs and EXPERIMENTS.md share one format.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_cell(value: object, precision: int = 4) -> str:
    """Human-friendly formatting: floats trimmed, small p-values in e-notation."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0.0:
            return "0"
        if abs(value) < 10 ** (-precision) or abs(value) >= 10**7:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], title: Optional[str] = None) -> str:
    """Render key/value facts, one per line."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"{key.ljust(width)}  {format_cell(value)}")
    return "\n".join(lines)
