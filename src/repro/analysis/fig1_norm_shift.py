"""Fig 1 — the April 2016 ordering-norm switch.

The paper's Fig 1 plots the CDF of the error in predicting in-block
positions with the greedy fee-rate norm, split at April 2016 when
Bitcoin Core moved fully to fee-rate ordering.  Pre-switch blocks
(coin-age priority ordering) predict badly; post-switch blocks track
the norm closely.
"""

from __future__ import annotations

import numpy as np

from ..core.ppe import block_ppe
from ..simulation.history import NORM_SWITCH_YEAR, iter_era_blocks
from .base import DataContext, ExperimentResult, check
from .cdf import ecdf
from .tables import render_table

PAPER = {
    "post_switch_tracks_norm": True,
    "pre_switch_differs_significantly": True,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 1's pre/post-switch PPE contrast.

    The era history streams block-by-block: each block's PPE folds into
    the era-appropriate list as it is generated, so the two-year chain
    is never materialised (only the scalar PPE series survives).
    """
    blocks_per_month = max(int(24 * ctx.scale), 4)
    pre_ppe: list[float] = []
    post_ppe: list[float] = []
    for era_block in iter_era_blocks(blocks_per_month=blocks_per_month):
        result = block_ppe(era_block.block)
        if result is None:
            continue
        target = pre_ppe if era_block.year < NORM_SWITCH_YEAR else post_ppe
        target.append(result.ppe)
    pre_cdf = ecdf(pre_ppe)
    post_cdf = ecdf(post_ppe)

    rows = []
    for q in (0.25, 0.5, 0.75, 0.9):
        rows.append(
            (
                f"PPE p{int(q * 100)}",
                pre_cdf.quantile(q),
                post_cdf.quantile(q),
            )
        )
    rendered = render_table(
        ["quantile", "pre-Apr-2016 (priority norm)", "post-Apr-2016 (fee-rate norm)"],
        rows,
        title="Fig 1: position prediction error by era (percent)",
    )
    measured = {
        "pre_median_ppe": pre_cdf.quantile(0.5),
        "post_median_ppe": post_cdf.quantile(0.5),
        "pre_blocks": len(pre_ppe),
        "post_blocks": len(post_ppe),
    }
    checks = [
        check(
            "post-switch ordering closely tracks the fee-rate norm (median PPE < 5%)",
            post_cdf.quantile(0.5) < 5.0,
            f"median={post_cdf.quantile(0.5):.2f}%",
        ),
        check(
            "pre-switch ordering differs significantly (median PPE > 3x post)",
            pre_cdf.quantile(0.5) > 3.0 * max(post_cdf.quantile(0.5), 1e-9),
            f"pre={pre_cdf.quantile(0.5):.2f}% post={post_cdf.quantile(0.5):.2f}%",
        ),
        check(
            "pre-switch error stochastically dominates post-switch error",
            bool(
                np.all(
                    np.quantile(pre_ppe, [0.25, 0.5, 0.75])
                    >= np.quantile(post_ppe, [0.25, 0.5, 0.75])
                )
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Norm shift at April 2016 (prediction-error CDFs)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
