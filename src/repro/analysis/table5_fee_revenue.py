"""Table 5 — miners' relative revenue from transaction fees, 2016-2020.

Fee share of total block revenue per year: low in 2016, spiking in the
2017 bubble (~11.8%), collapsing through 2018-2019, and climbing again
in 2020 (~6.3%) after the May 2020 halving.
"""

from __future__ import annotations

from ..simulation.history import sample_fee_revenue
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "mean_share_pct": {2016: 2.48, 2017: 11.77, 2018: 3.19, 2019: 2.75, 2020: 6.29},
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Table 5 from the calibrated history generator."""
    blocks_per_year = max(int(600 * ctx.scale * 4), 120)
    rows = sample_fee_revenue(blocks_per_year=blocks_per_year)
    table_rows = [
        (
            row.year,
            row.block_count,
            row.mean,
            row.std,
            row.min,
            row.p25,
            row.median,
            row.p75,
            row.max,
        )
        for row in rows
    ]
    rendered = render_table(
        ["year", "# blocks", "mean", "std", "min", "p25", "median", "p75", "max"],
        table_rows,
        title="Table 5: fee share of miner revenue per block (percent)",
    )
    means = {row.year: row.mean for row in rows}
    measured = {"mean_share_pct": {y: round(m, 2) for y, m in means.items()}}
    checks = [
        check(
            "2017 is the fee-share peak of the period",
            means[2017] == max(means.values()),
            f"2017={means[2017]:.2f}%",
        ),
        check(
            "fee share collapses after 2017 (2018 < half of 2017)",
            means[2018] < 0.5 * means[2017],
        ),
        check(
            "fee share recovers in 2020 above 2019",
            means[2020] > means[2019],
            f"2020={means[2020]:.2f}% 2019={means[2019]:.2f}%",
        ),
        check(
            "2020 fee share lands near the paper's ~6.3%",
            3.0 <= means[2020] <= 10.0,
            f"{means[2020]:.2f}%",
        ),
    ]
    return ExperimentResult(
        experiment_id="table5",
        title="Fee revenue share by year",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
