"""Table 2 — differential prioritization of self-interest transactions.

For each pool's (inferred) self-interest transactions and each large
pool, run the acceleration/deceleration binomial tests plus SPPE.  The
paper's findings, used as shape targets:

* F2Pool, ViaBTC, 1THash & 58Coin and SlushPool accelerate their own
  transactions (p < 0.001, large positive SPPE);
* ViaBTC *collusively* accelerates 1THash & 58Coin's and SlushPool's
  transactions;
* other large pools show no significant acceleration of their own.
"""

from __future__ import annotations

from ..core.audit import Auditor
from ..simulation.scenarios import COLLUSION, SELF_ACCELERATING_POOLS
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "self_accelerating_pools": sorted(SELF_ACCELERATING_POOLS),
    "collusion": {k: list(v) for k, v in COLLUSION.items()},
    "example_rows": [
        ("F2Pool", "F2Pool", 466, 839, "<1e-4", 78.5),
        ("ViaBTC", "ViaBTC", 412, 720, "<1e-4", 98.9),
        ("SlushPool", "ViaBTC", 140, 1343, "<1e-4", 45.2),
    ],
}

#: Significance level the paper reads as strong evidence.
ALPHA = 0.001


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Table 2 and verify detections against ground truth."""
    auditor = Auditor(ctx.dataset_c())
    rows = auditor.self_interest_table()
    flagged = [
        (row.owner_pool, row.target_pool)
        for row in rows
        if row.test.accelerates(ALPHA)
    ]
    table_rows = []
    for row in rows:
        if not row.test.accelerates(ALPHA) and row.owner_pool != row.target_pool:
            continue
        table_rows.append(
            (
                row.owner_pool,
                row.target_pool,
                row.test.theta0,
                row.test.x,
                row.test.y,
                row.test.p_accelerate,
                row.test.p_decelerate,
                row.sppe,
            )
        )
    rendered = render_table(
        [
            "txs of",
            "mining pool",
            "theta0",
            "x",
            "y",
            "p (accel)",
            "p (decel)",
            "SPPE %",
        ],
        table_rows,
        title="Table 2: differential prioritization of self-interest txs",
    )

    expected_self = {
        pool for pool in SELF_ACCELERATING_POOLS
    }
    detected_self = {owner for owner, target in flagged if owner == target}
    expected_collusion = {
        (owner, accelerator)
        for accelerator, owners in COLLUSION.items()
        for owner in owners
    }
    detected_collusion = {
        (owner, target) for owner, target in flagged if owner != target
    }
    honest_pools = {
        row.owner_pool
        for row in rows
        if row.owner_pool == row.target_pool
        and row.owner_pool not in expected_self
    }
    false_self = {
        owner
        for owner, target in flagged
        if owner == target and owner not in expected_self
    }
    measured = {
        "detected_self_accelerators": sorted(detected_self),
        "detected_collusion": sorted(detected_collusion),
        "false_positive_self": sorted(false_self),
        "rows": len(rows),
    }
    checks = [
        check(
            "the injected self-accelerating pools are flagged (p < 0.001)",
            expected_self <= detected_self,
            f"detected={sorted(detected_self)}",
        ),
        check(
            "ViaBTC's collusive acceleration is detected",
            expected_collusion <= detected_collusion,
            f"detected={sorted(detected_collusion)}",
        ),
        check(
            "no honest pool is flagged for self-acceleration",
            not false_self,
            f"false={sorted(false_self)} honest tested={sorted(honest_pools)}",
        ),
        check(
            "flagged (owner==target) rows show large positive SPPE",
            all(
                row.sppe > 30.0
                for row in rows
                if row.owner_pool == row.target_pool
                and row.owner_pool in detected_self
                and row.target_pool in detected_self
                and row.test.accelerates(ALPHA)
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Self-interest transaction prioritization",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
