"""Extension: comparing candidate chain-neutrality norms (§6.1).

Replays dataset A's committed workload — identical arrivals, identical
block schedule — under each candidate ordering norm and measures what
users (delays, starvation, inequality) and miners (revenue) get.

Expected shape: the incumbent fee-rate norm maximises revenue but
starves the low-fee band during congestion; waiting-time aging bounds
worst-case delay at a tiny revenue cost; the fee-blind lottery achieves
delay equality but torches revenue (and with it the miners' incentive
to honour it); value-density ordering starves small payments.
"""

from __future__ import annotations

from ..core.neutrality import NormReplayer, evaluate_norm
from ..mining.neutrality import candidate_norms
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "question": "§6.1: should waiting time or value also shape ordering?",
    "expectation": "fee-rate maximises revenue; aging curbs starvation",
}


def run(ctx: DataContext) -> ExperimentResult:
    """Replay dataset A's workload under every candidate norm."""
    dataset = ctx.dataset_a()
    arrivals = []
    for block in dataset.chain:
        for tx in block.transactions:
            record = dataset.tx_records.get(tx.txid)
            if record is not None:
                arrivals.append((record.broadcast_time, tx))
    # Replay at 70% of the original block capacity: the recorded stream
    # consists of transactions that *did* fit historically, so at full
    # capacity every norm trivially commits everything and no trade-off
    # is visible.  Shrinking capacity recreates sustained contention.
    from repro.chain.constants import MAX_BLOCK_VSIZE

    replayer = NormReplayer(
        arrivals,
        dataset.block_times().tolist(),
        max_block_vsize=int(MAX_BLOCK_VSIZE * 0.7),
    )

    norms = candidate_norms()
    feerate_outcome = replayer.replay(norms["fee-rate"])
    feerate_revenue = feerate_outcome["revenue"]

    evaluations = [
        evaluate_norm(name, policy, replayer, feerate_revenue=feerate_revenue)
        for name, policy in norms.items()
    ]
    rows = [
        (
            ev.norm,
            ev.committed,
            round(ev.mean_delay, 2),
            round(ev.p99_delay, 1),
            ev.max_delay,
            round(ev.starved_fraction, 4),
            round(ev.delay_gini, 3),
            round(ev.delay_by_band.get("low", float("nan")), 1),
            round(ev.revenue_vs_feerate_optimum, 3),
        )
        for ev in evaluations
    ]
    rendered = render_table(
        [
            "norm",
            "committed",
            "mean delay",
            "p99 delay",
            "max delay",
            "starved",
            "delay Gini",
            "low-band p50",
            "revenue vs fee-rate",
        ],
        rows,
        title="Candidate neutrality norms over the same workload",
    )
    by_name = {ev.norm: ev for ev in evaluations}
    fee_rate = by_name["fee-rate"]
    aged = by_name["aged-fee-rate"]
    lottery = by_name["lottery"]
    value = by_name["value-density"]
    fair = by_name["fair-share"]
    measured = {
        name: {
            "revenue_ratio": round(ev.revenue_vs_feerate_optimum, 3),
            "p99_delay": round(ev.p99_delay, 1),
            "starved_fraction": round(ev.starved_fraction, 4),
        }
        for name, ev in by_name.items()
    }
    checks = [
        check(
            "the fee-rate norm collects (near-)maximal revenue",
            all(ev.revenue_vs_feerate_optimum <= 1.001 for ev in evaluations),
        ),
        check(
            "waiting-time aging bounds worst-case delay at a small "
            "revenue cost",
            aged.max_delay <= fee_rate.max_delay
            and aged.revenue_vs_feerate_optimum > 0.95,
            f"max {fee_rate.max_delay}->{aged.max_delay}, "
            f"revenue x{aged.revenue_vs_feerate_optimum:.3f}",
        ),
        check(
            "the fee-blind lottery equalises delays but sacrifices revenue",
            lottery.delay_gini <= fee_rate.delay_gini + 0.02
            and lottery.revenue_vs_feerate_optimum < 0.97,
            f"gini {fee_rate.delay_gini:.2f}->{lottery.delay_gini:.2f}, "
            f"revenue x{lottery.revenue_vs_feerate_optimum:.2f}",
        ),
        check(
            "fair-share scheduling protects the low-fee band",
            fair.delay_by_band.get("low", float("inf"))
            <= fee_rate.delay_by_band.get("low", float("inf"))
            or fair.starved_fraction <= fee_rate.starved_fraction,
        ),
        check(
            "value-density ordering is not revenue-competitive",
            value.revenue_vs_feerate_optimum < 1.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_norms",
        title="Candidate neutrality norms (extension of §6.1)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
