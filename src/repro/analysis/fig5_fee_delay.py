"""Fig 5 — paying more gets you committed sooner (dataset A).

Commit-delay distributions for the paper's three fee bands: low
(<10 sat/vB), high (10-100), exorbitant (>100).  The claim is first-
order dominance: each band's delays are stochastically smaller than the
cheaper band's.
"""

from __future__ import annotations

from ..core.audit import Auditor
from ..core.congestion import FEE_BAND_LABELS
from .base import DataContext, ExperimentResult, check
from .cdf import dominates, quantile_table
from .tables import render_table

PAPER = {
    "higher_fee_band_commits_faster": True,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 5 (delays by fee band, dataset A)."""
    auditor = Auditor(ctx.dataset_a())
    by_band = auditor.delay_by_fee_band(include_censored=True)
    quantiles = quantile_table(
        {label: by_band[label] for label in FEE_BAND_LABELS},
        quantiles=(0.5, 0.75, 0.9, 0.99),
    )
    rows = [
        (label, len(by_band[label]), *quantiles[label]) for label in FEE_BAND_LABELS
    ]
    rendered = render_table(
        ["fee band", "txs", "p50 delay", "p75", "p90", "p99"],
        rows,
        title="Fig 5: commit delay (blocks) by fee band, dataset A",
    )
    low, high, exorbitant = (by_band[label] for label in FEE_BAND_LABELS)
    measured = {
        label: {"txs": len(by_band[label]), "median_delay": quantiles[label][0]}
        for label in FEE_BAND_LABELS
    }
    checks = [
        check(
            "exorbitant fees commit no slower than high fees",
            len(exorbitant) > 10 and len(high) > 10 and dominates(exorbitant, high),
        ),
        check(
            "high fees commit no slower than low fees",
            len(high) > 10 and len(low) > 10 and dominates(high, low),
        ),
        check(
            "all three fee bands are populated",
            all(len(by_band[label]) > 0 for label in FEE_BAND_LABELS),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="Fee-rate vs commit delay (dataset A)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
