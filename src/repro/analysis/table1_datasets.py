"""Table 1 — dataset summaries.

Blocks, transactions issued, CPFP share and empty-block counts for the
three curated datasets.  Absolute counts scale with the simulation
scale; the shape targets are the CPFP percentage band (~19-26%) and the
presence of a small number of empty blocks.
"""

from __future__ import annotations

from ..datasets.dataset import Dataset
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "A": {"blocks": 3119, "txs": 6_816_375, "cpfp_pct": 26.45, "empty": 38},
    "B": {"blocks": 4520, "txs": 10_484_201, "cpfp_pct": 23.17, "empty": 18},
    "C": {"blocks": 53214, "txs": 112_489_054, "cpfp_pct": 19.11, "empty": 240},
}


def _row(name: str, dataset: Dataset) -> tuple:
    summary = dataset.summary()
    return (
        name,
        summary["blocks"],
        summary["transactions_issued"],
        round(100.0 * summary["cpfp_fraction"], 2),
        summary["empty_blocks"],
        summary["snapshots"],
    )


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Table 1 for the three scenario datasets."""
    datasets = {
        "A": ctx.dataset_a(),
        "B": ctx.dataset_b(),
        "C": ctx.dataset_c(),
    }
    rows = [_row(name, dataset) for name, dataset in datasets.items()]
    rendered = render_table(
        ["dataset", "blocks", "txs issued", "CPFP %", "empty blocks", "snapshots"],
        rows,
        title="Table 1: data set summaries (scaled simulation)",
    )
    measured = {
        name: {
            "blocks": row[1],
            "txs": row[2],
            "cpfp_pct": row[3],
            "empty": row[4],
        }
        for (name, *_), row in zip(datasets.items(), rows)
    }
    checks = []
    for name, dataset in datasets.items():
        cpfp_pct = 100.0 * dataset.summary()["cpfp_fraction"]
        checks.append(
            check(
                f"dataset {name}: CPFP share in the paper's 15-35% band",
                15.0 <= cpfp_pct <= 35.0,
                f"{cpfp_pct:.1f}%",
            )
        )
    checks.append(
        check(
            "every dataset committed most issued transactions",
            all(
                len(d.committed_records()) > 0.5 * d.tx_count
                for d in datasets.values()
            ),
        )
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Dataset summaries",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
