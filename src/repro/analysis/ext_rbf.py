"""Extension: public fee-bumping (RBF) vs opaque dark-fee acceleration.

Both channels rescue a stuck low-fee transaction, but they differ in
exactly the dimension the paper's title is about: *transparency*.  A
replace-by-fee bump broadcasts its new fee to every miner; a dark-fee
payment is visible only to the accelerating pool.  This experiment
compares the two channels inside the dataset-C analogue on commit
delay, cost, and on-chain visibility — quantifying §5.4.1's question
of why a rational user would ever pick the opaque channel, and §6's
warning about what opaque fees do to everyone else's view.
"""

from __future__ import annotations

import numpy as np

from ..core.congestion import commit_delays_in_blocks
from ..datasets.records import LABEL_LOW_FEE, LABEL_RBF_BUMP
from ..mining.acceleration import AccelerationPricer
from ..simulation.scenarios import BTC_COM_SERVICE
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "context": "§5.4.1: acceleration fees would top the mempool if public; "
    "§6: opaque fees break other users' fee estimation",
    "expectation": "both channels accelerate; the dark channel costs far "
    "more and hides its price from the chain",
}


def _delays(dataset, records) -> np.ndarray:
    committed = [r for r in records if r.committed]
    if not committed:
        return np.empty(0)
    return commit_delays_in_blocks(
        [r.broadcast_time for r in committed],
        [r.commit_height for r in committed],
        dataset.block_times(),
    )


def run(ctx: DataContext) -> ExperimentResult:
    """Compare the two acceleration channels inside dataset C."""
    dataset = ctx.dataset_c()
    pricer = AccelerationPricer()

    bumps = [
        dataset.tx_records[t] for t in dataset.labelled_txids(LABEL_RBF_BUMP)
    ]
    dark = [
        dataset.tx_records[t]
        for t in dataset.accelerated_txids(BTC_COM_SERVICE)
    ]
    untouched = [
        dataset.tx_records[t] for t in dataset.labelled_txids(LABEL_LOW_FEE)
    ]

    bump_delays = _delays(dataset, bumps)
    dark_delays = _delays(dataset, dark)
    untouched_delays = _delays(dataset, untouched)

    # Channel costs. RBF: extra fee paid publicly (the bump's whole fee
    # is on-chain). Dark: the quoted acceleration fee (deterministic per
    # txid), of which the chain sees only the token public fee.
    bump_costs = np.asarray([r.fee for r in bumps], dtype=float)
    bump_cost_rates = np.asarray(
        [r.fee / r.vsize for r in bumps], dtype=float
    )
    dark_costs = np.asarray(
        [pricer.quote(r.txid, r.fee).acceleration_fee for r in dark],
        dtype=float,
    )
    dark_cost_rates = np.asarray(
        [
            pricer.quote(r.txid, r.fee).acceleration_fee / r.vsize
            for r in dark
        ],
        dtype=float,
    )
    dark_visible = np.asarray([r.fee for r in dark], dtype=float)
    visible_share = (
        float(dark_visible.sum() / (dark_visible.sum() + dark_costs.sum()))
        if dark.__len__()
        else float("nan")
    )

    def row(label, records, delays, costs, cost_rates, visible) -> tuple:
        committed = sum(1 for r in records if r.committed)
        return (
            label,
            len(records),
            committed,
            float(np.median(delays)) if delays.size else float("nan"),
            float(np.median(costs)) if costs.size else float("nan"),
            float(np.median(cost_rates)) if cost_rates.size else float("nan"),
            visible,
        )

    rendered = render_table(
        [
            "channel",
            "txs",
            "committed",
            "median delay (blocks)",
            "median cost (sat)",
            "median cost (sat/vB)",
            "cost visible on-chain",
        ],
        [
            row("none (stuck low-fee)", untouched, untouched_delays,
                np.asarray([r.fee for r in untouched], dtype=float),
                np.asarray([r.fee_rate for r in untouched], dtype=float),
                "yes"),
            row("RBF fee bump (public)", bumps, bump_delays, bump_costs,
                bump_cost_rates, "yes"),
            row(
                "dark-fee acceleration (opaque)",
                dark,
                dark_delays,
                dark_costs,
                dark_cost_rates,
                f"{visible_share:.1%} of true cost",
            ),
        ],
        title="Two ways to accelerate a stuck transaction",
    )
    measured = {
        "bump_median_delay": float(np.median(bump_delays)) if bump_delays.size else None,
        "dark_median_delay": float(np.median(dark_delays)) if dark_delays.size else None,
        "dark_over_bump_cost_per_vb": (
            float(np.median(dark_cost_rates) / np.median(bump_cost_rates))
            if bump_cost_rates.size and dark_cost_rates.size
            else None
        ),
        "dark_cost_visible_share": round(visible_share, 4),
    }
    untouched_commit_rate = (
        sum(1 for r in untouched if r.committed) / len(untouched)
        if untouched
        else float("nan")
    )
    dark_commit_rate = (
        sum(1 for r in dark if r.committed) / len(dark) if dark else 0.0
    )
    checks = [
        check(
            "both acceleration channels beat leaving the transaction stuck",
            dark_delays.size > 0
            and bump_delays.size > 0
            and dark_commit_rate > untouched_commit_rate,
            f"commit rates: dark {dark_commit_rate:.2f} vs stuck "
            f"{untouched_commit_rate:.2f}",
        ),
        check(
            "per vbyte, the opaque channel costs several times the "
            "public one",
            bool(bump_cost_rates.size)
            and bool(dark_cost_rates.size)
            and float(np.median(dark_cost_rates))
            > 3 * float(np.median(bump_cost_rates)),
            f"median dark {np.median(dark_cost_rates):.0f} vs bump "
            f"{np.median(bump_cost_rates):.0f} sat/vB",
        ),
        check(
            "the chain sees only a sliver of the dark channel's true price",
            visible_share == visible_share and visible_share < 0.1,
            f"visible share {visible_share:.2%}",
        ),
        check(
            "dark-fee transactions commit promptly despite tiny public fees",
            dark_delays.size > 0 and float(np.median(dark_delays)) <= 12.0,
            f"median delay {np.median(dark_delays):.0f} blocks"
            if dark_delays.size
            else "-",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_rbf",
        title="Public (RBF) vs opaque (dark-fee) acceleration",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
