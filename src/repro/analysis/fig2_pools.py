"""Fig 2 — blocks and transactions per mining pool.

The paper's Fig 2 shows, per dataset, the block and transaction counts
of the top-20 mining pool operators, whose combined hash rates cover
93-98% of each dataset.  The shape target is the hash-rate profile:
each scenario's measured shares should track the profile it was
configured with (BTC.com leading datasets A/B, F2Pool leading C).
"""

from __future__ import annotations

from ..chain.attribution import UNKNOWN_POOL
from ..datasets.dataset import Dataset
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "A_top5": ["BTC.com", "AntPool", "F2Pool", "Poolin", "SlushPool"],
    "B_top5": ["BTC.com", "AntPool", "F2Pool", "SlushPool", "Poolin"],
    "C_top5": ["F2Pool", "Poolin", "BTC.com", "AntPool", "Huobi"],
    "C_top20_combined_share": 0.9808,
}


def _pool_rows(dataset: Dataset, top_n: int = 20) -> list[tuple]:
    commit_pools = dataset.commit_pools()
    tx_counts: dict[str, int] = {}
    for pool in commit_pools.values():
        tx_counts[pool] = tx_counts.get(pool, 0) + 1
    rows = []
    for estimate in dataset.hash_rates():
        if estimate.pool == UNKNOWN_POOL:
            continue
        rows.append(
            (
                estimate.pool,
                estimate.blocks,
                round(estimate.share, 4),
                tx_counts.get(estimate.pool, 0),
            )
        )
        if len(rows) >= top_n:
            break
    return rows


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 2's per-pool distributions for A, B, C."""
    sections = []
    measured: dict[str, object] = {}
    checks = []
    for name, dataset in (
        ("A", ctx.dataset_a()),
        ("B", ctx.dataset_b()),
        ("C", ctx.dataset_c()),
    ):
        rows = _pool_rows(dataset)
        sections.append(
            render_table(
                ["pool", "blocks", "share", "txs committed"],
                rows,
                title=f"Fig 2({name.lower()}): top pools in dataset {name}",
            )
        )
        top5 = [row[0] for row in rows[:5]]
        combined = sum(row[2] for row in rows)
        measured[f"{name}_top5"] = top5
        measured[f"{name}_top20_combined_share"] = round(combined, 4)
        expected_leader = PAPER[f"{name}_top5"][0]
        checks.append(
            check(
                f"dataset {name}: {expected_leader} ranks among the top-3 pools",
                expected_leader in top5[:3],
                f"measured top5: {top5}",
            )
        )
        checks.append(
            check(
                f"dataset {name}: top-20 pools cover >90% of blocks",
                combined > 0.90,
                f"combined={combined:.3f}",
            )
        )
    unknown_share = next(
        (e.share for e in ctx.dataset_c().hash_rates() if e.pool == UNKNOWN_POOL),
        0.0,
    )
    measured["C_unknown_share"] = round(unknown_share, 4)
    checks.append(
        check(
            "dataset C: a small fraction of blocks resists attribution (~1.3%)",
            0.0 < unknown_share < 0.06,
            f"unknown={unknown_share:.3f}",
        )
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Blocks and transactions by mining pool",
        paper=PAPER,
        measured=measured,
        rendered="\n\n".join(sections),
        checks=checks,
    )
