"""Parallel experiment executor and the cold/warm benchmark harness.

``run_battery`` executes a list of experiment ids either in-process
(``jobs=1``) or on a process pool, with three guarantees:

* **deterministic assembly** — outcomes come back in the requested
  (paper) order regardless of completion order, and the assembled
  report contains no timing data, so a parallel run's report is
  byte-identical to the sequential one;
* **degradation tolerance** — an experiment that raises is recorded as
  a failed :class:`ExperimentOutcome` (in the same report slot) and the
  rest of the battery keeps running, mirroring the fault-tolerant audit
  pipeline;
* **single-build datasets** — workers share one persistent
  :class:`~repro.datasets.cache.DatasetCache` directory, whose
  first-builder-wins lockfile means each dataset is simulated at most
  once no matter how many workers race for it.

``run_bench`` times the cold/warm × sequential/parallel grid on fresh
cache directories and returns the measurements as a JSON-ready dict
(the committed ``BENCH_runner.json`` baseline).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from .. import obs
from ..core.ppe import clear_prediction_cache
from ..core.vectorized import SCALAR_ENV
from ..datasets.builder import clear_memory_cache
from ..datasets.cache import CacheStats, DatasetCache
from .base import DEFAULT_SCALE, DataContext, ExperimentResult
from .experiments import ALL_RUNNERS, run_experiment


@dataclass
class ExperimentOutcome:
    """One experiment's result (or failure) plus its execution record."""

    experiment_id: str
    wall_time: float
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    cache: CacheStats = field(default_factory=CacheStats)
    #: Metrics recorded while this experiment ran (tracing only) — a
    #: snapshot delta, so a pool worker's contribution can be merged
    #: back into the parent's registry.
    obs: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def all_passed(self) -> bool:
        return self.ok and self.result.all_passed

    def report(self) -> str:
        """This outcome's report block (timing-free, so reports from
        sequential and parallel runs are byte-identical)."""
        if self.ok:
            return self.result.report()
        return (
            f"=== {self.experiment_id}: FAILED ===\n"
            f"[ERROR] experiment raised: {self.error}"
        )


@dataclass
class BatteryResult:
    """A full battery run: outcomes in request order plus totals."""

    outcomes: list[ExperimentOutcome]
    jobs: int
    scale: float
    total_wall: float

    def report(self) -> str:
        """The assembled report, in the order the ids were requested."""
        return "\n\n".join(outcome.report() for outcome in self.outcomes)

    def failed(self) -> list[ExperimentOutcome]:
        """Outcomes that raised (not merely failed shape checks)."""
        return [o for o in self.outcomes if not o.ok]

    def failing_checks(self) -> list[ExperimentOutcome]:
        """Outcomes that ran but have failing shape checks."""
        return [o for o in self.outcomes if o.ok and not o.result.all_passed]

    @property
    def all_ok(self) -> bool:
        return all(o.all_passed for o in self.outcomes)

    def cache_stats(self) -> CacheStats:
        """Dataset-cache counters aggregated over every outcome."""
        total = CacheStats()
        for outcome in self.outcomes:
            total.hits += outcome.cache.hits
            total.misses += outcome.cache.misses
            total.builds += outcome.cache.builds
            total.lock_waits += outcome.cache.lock_waits
            total.evictions += outcome.cache.evictions
            total.stale_reclaims += outcome.cache.stale_reclaims
        return total

    def timing_table(self) -> str:
        """Per-experiment wall times (printed separately from the report)."""
        width = max(len(o.experiment_id) for o in self.outcomes) if self.outcomes else 8
        lines = [f"--- timing (jobs={self.jobs}, scale={self.scale:g}) ---"]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "RAISED"
            if outcome.ok and not outcome.result.all_passed:
                status = "checks-failed"
            lines.append(
                f"{outcome.experiment_id:<{width}}  "
                f"{outcome.wall_time:7.2f}s  {status}"
            )
        lines.append(f"{'total':<{width}}  {self.total_wall:7.2f}s")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process contexts, so experiments running in the same worker share
#: in-memory datasets exactly like a sequential run does.
_WORKER_CONTEXTS: dict[tuple[float, Optional[str]], DataContext] = {}


def _context_for(scale: float, cache_dir: Optional[str]) -> DataContext:
    key = (scale, cache_dir)
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        cache = DatasetCache(cache_dir) if cache_dir is not None else None
        ctx = DataContext(scale=scale, cache=cache)
        _WORKER_CONTEXTS[key] = ctx
    return ctx


def run_one(
    experiment_id: str,
    scale: float,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
) -> ExperimentOutcome:
    """Run one experiment in this process; never raises.

    This is the unit of work a pool worker executes; ``run_battery``
    with ``jobs=1`` calls it directly so both modes share one code path.

    With ``timeout`` the experiment executes in a watchdog subprocess
    that is killed on overrun; the cell comes back failed (isolated,
    like a raising experiment) instead of hanging the battery.
    """
    if timeout is not None:
        return _run_one_guarded(experiment_id, scale, cache_dir, timeout)
    ctx = _context_for(scale, cache_dir)
    before = ctx.cache.stats.snapshot() if ctx.cache is not None else None
    obs_before = obs.snapshot() if obs.is_enabled() else None
    start = time.perf_counter()
    try:
        with obs.span("runner.experiment"):
            result = run_experiment(experiment_id, ctx)
        error = None
        obs.counter("runner.experiments.ok")
    except Exception as exc:  # degradation tolerance: record, don't raise
        result = None
        error = f"{type(exc).__name__}: {exc}"
        obs.counter("runner.experiments.raised")
    wall = time.perf_counter() - start
    cache_delta = (
        ctx.cache.stats.delta(before) if before is not None else CacheStats()
    )
    obs_delta = (
        obs.delta(obs_before, obs.snapshot()) if obs_before is not None else None
    )
    return ExperimentOutcome(
        experiment_id=experiment_id,
        wall_time=wall,
        result=result,
        error=error,
        cache=cache_delta,
        obs=obs_delta,
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the parent's loaded modules (fast start); fall back to
    # spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _watchdog_child(pipe, experiment_id: str, scale: float, cache_dir) -> None:
    """Child body of the timeout watchdog: run, then ship the outcome."""
    try:
        pipe.send(run_one(experiment_id, scale, cache_dir))
    finally:
        pipe.close()


def _run_one_guarded(
    experiment_id: str, scale: float, cache_dir: Optional[str], timeout: float
) -> ExperimentOutcome:
    """Run one experiment under a wall-clock guard, never raising.

    The experiment executes in a fresh child process (fork-preferring,
    so in-memory dataset caches stay warm); if no outcome arrives within
    ``timeout`` seconds the child is killed and the cell is marked
    failed.  ProcessPoolExecutor workers are non-daemonic, so this
    nests cleanly under ``jobs > 1``.
    """
    ctx = _pool_context()
    receiver, sender = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_watchdog_child,
        args=(sender, experiment_id, scale, cache_dir),
    )
    start = time.perf_counter()
    process.start()
    sender.close()
    outcome: Optional[ExperimentOutcome] = None
    died_early = False
    if receiver.poll(timeout):
        # The pipe is readable: either an outcome or an EOF from a
        # child that died before shipping one.
        try:
            outcome = receiver.recv()
        except (EOFError, OSError):
            died_early = True
    receiver.close()
    wall = time.perf_counter() - start
    if outcome is not None:
        process.join(timeout=5.0)
        # The child recorded into its own forked registry; fold its
        # delta into ours (the pool path then propagates outcome.obs
        # to the pool parent exactly once, as for an unguarded cell).
        obs.merge(outcome.obs)
        return outcome
    if died_early:
        process.join(timeout=5.0)
        error = f"worker process died (exit code {process.exitcode})"
    else:
        obs.counter("runner.experiments.timeout")
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        error = f"timed out after {timeout:g}s (killed)"
    return ExperimentOutcome(
        experiment_id=experiment_id, wall_time=wall, error=error
    )


def run_battery(
    experiment_ids: Sequence[str],
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
) -> BatteryResult:
    """Run ``experiment_ids`` and assemble outcomes in request order.

    ``jobs > 1`` fans the experiments out over a process pool; dataset
    builds are coordinated through the shared cache directory so each
    dataset is simulated at most once.  A failure in one experiment
    never aborts the rest; with ``timeout`` set, neither does a hang.
    """
    ids = list(experiment_ids)
    unknown = [eid for eid in ids if eid not in ALL_RUNNERS]
    if unknown:
        known = ", ".join(ALL_RUNNERS)
        raise KeyError(
            f"unknown experiment(s) {', '.join(unknown)}; known: {known}"
        )
    cache_dir = str(cache_dir) if cache_dir is not None else None
    start = time.perf_counter()
    if jobs <= 1 or len(ids) <= 1:
        outcomes = [run_one(eid, scale, cache_dir, timeout) for eid in ids]
    else:
        outcomes = [None] * len(ids)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ids)), mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(run_one, eid, scale, cache_dir, timeout): index
                for index, eid in enumerate(ids)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                    # A pool worker recorded into its own process-local
                    # registry; fold its contribution into ours.
                    obs.merge(outcomes[index].obs)
                except Exception as exc:  # worker process died
                    outcomes[index] = ExperimentOutcome(
                        experiment_id=ids[index],
                        wall_time=0.0,
                        error=f"worker failed: {type(exc).__name__}: {exc}",
                    )
    total = time.perf_counter() - start
    return BatteryResult(
        outcomes=list(outcomes), jobs=jobs, scale=scale, total_wall=total
    )


# ----------------------------------------------------------------------
# Generic shard executor
# ----------------------------------------------------------------------
@dataclass
class ShardOutcome:
    """One shard's result (or failure) from :func:`run_sharded`."""

    index: int
    wall_time: float
    value: Optional[object] = None
    error: Optional[str] = None
    #: obs snapshot delta recorded while the shard ran (tracing only);
    #: already merged into the parent registry by ``run_sharded``.
    obs: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_shard(worker: Callable, cell: object, index: int) -> ShardOutcome:
    """Execute one shard in this process; never raises."""
    obs_before = obs.snapshot() if obs.is_enabled() else None
    start = time.perf_counter()
    try:
        value, error = worker(cell), None
    except Exception as exc:  # failure isolation: record, don't raise
        value, error = None, f"{type(exc).__name__}: {exc}"
        obs.counter("runner.shards.raised")
    wall = time.perf_counter() - start
    obs_delta = (
        obs.delta(obs_before, obs.snapshot()) if obs_before is not None else None
    )
    return ShardOutcome(
        index=index, wall_time=wall, value=value, error=error, obs=obs_delta
    )


def run_sharded(
    cells: Sequence[object],
    worker: Callable[[object], object],
    jobs: int = 1,
) -> list[ShardOutcome]:
    """Run picklable ``worker(cell)`` units across the process pool.

    The generic fan-out under independent scenario cells (pools ×
    policies × seeds) and dataset builds: outcomes come back **in cell
    order** regardless of completion order, a shard that raises is
    isolated into its slot instead of aborting the rest, and each pool
    worker's obs delta is merged into the parent registry at join — so
    a traced sharded run accounts metrics exactly like a sequential
    one.  ``worker`` must be a module-level function (it crosses the
    process boundary by reference).
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [_run_shard(worker, cell, i) for i, cell in enumerate(cells)]
    outcomes: list[Optional[ShardOutcome]] = [None] * len(cells)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)), mp_context=_pool_context()
    ) as pool:
        futures = {
            pool.submit(_run_shard, worker, cell, index): index
            for index, cell in enumerate(cells)
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                outcome = future.result()
                # The shard recorded into its own process-local obs
                # registry; fold its contribution into ours.
                obs.merge(outcome.obs)
            except Exception as exc:  # worker process died
                outcome = ShardOutcome(
                    index=index,
                    wall_time=0.0,
                    error=f"worker failed: {type(exc).__name__}: {exc}",
                )
            outcomes[index] = outcome
    return list(outcomes)


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
def _reset_process_caches() -> None:
    """Drop every in-process memo so a bench cell measures the disk cache."""
    clear_memory_cache()
    clear_prediction_cache()
    _WORKER_CONTEXTS.clear()


def _bench_cell(
    ids: Sequence[str], scale: float, jobs: int, cache_dir: str
) -> tuple[dict, BatteryResult]:
    _reset_process_caches()
    obs_before = obs.snapshot() if obs.is_enabled() else None
    battery = run_battery(ids, scale=scale, jobs=jobs, cache_dir=cache_dir)
    stats = battery.cache_stats()
    cell = {
        "wall_seconds": round(battery.total_wall, 4),
        "jobs": jobs,
        "ok": battery.all_ok,
        "raised": [o.experiment_id for o in battery.failed()],
        "failing_checks": [o.experiment_id for o in battery.failing_checks()],
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "builds": stats.builds,
            "lock_waits": stats.lock_waits,
        },
        "per_experiment_seconds": {
            o.experiment_id: round(o.wall_time, 4) for o in battery.outcomes
        },
    }
    if obs_before is not None:
        cell["obs"] = obs.delta(obs_before, obs.snapshot())
    return cell, battery


def run_bench(
    experiment_ids: Sequence[str],
    scale: float = 0.2,
    jobs: int = 4,
    work_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Time cold/warm × sequential/parallel batteries on fresh caches.

    Each mode gets its own empty cache directory: the *cold* cell pays
    for every simulation (and populates the cache), the *warm* cell
    re-runs against the populated cache.  In-process memos are cleared
    between cells so warm timings measure the disk cache, not leftover
    objects.  Each cell carries its ``obs`` metrics snapshot (tracing is
    enabled for the duration of the bench), so the committed
    ``BENCH_runner.json`` also documents what the substrate *did* —
    blocks mined, templates built, cache traffic.  Returns the
    JSON-ready measurement document.
    """
    ids = list(experiment_ids)
    measurements: dict[str, dict] = {}
    reports: dict[str, str] = {}
    with obs.tracing():
        for mode, mode_jobs in (("sequential", 1), ("parallel", jobs)):
            cache_dir = tempfile.mkdtemp(
                prefix=f"repro-bench-{mode}-",
                dir=str(work_dir) if work_dir is not None else None,
            )
            try:
                for phase in ("cold", "warm"):
                    cell, battery = _bench_cell(ids, scale, mode_jobs, cache_dir)
                    measurements[f"{phase}_{mode}"] = cell
                    reports[f"{phase}_{mode}"] = battery.report()
            finally:
                shutil.rmtree(cache_dir, ignore_errors=True)
    _reset_process_caches()

    def wall(name: str) -> float:
        return measurements[name]["wall_seconds"]

    document = {
        "benchmark": "runner",
        "experiments": ids,
        "scale": scale,
        "jobs": jobs,
        "measurements": measurements,
        "speedups": {
            "warm_over_cold_sequential": round(
                wall("cold_sequential") / max(wall("warm_sequential"), 1e-9), 2
            ),
            "warm_over_cold_parallel": round(
                wall("cold_parallel") / max(wall("warm_parallel"), 1e-9), 2
            ),
            "parallel_over_sequential_cold": round(
                wall("cold_sequential") / max(wall("cold_parallel"), 1e-9), 2
            ),
            "parallel_over_sequential_warm": round(
                wall("warm_sequential") / max(wall("warm_parallel"), 1e-9), 2
            ),
        },
        "reports_byte_identical": {
            "parallel_vs_sequential_warm": reports["warm_parallel"]
            == reports["warm_sequential"],
            "warm_vs_cold_sequential": reports["warm_sequential"]
            == reports["cold_sequential"],
        },
    }
    return document


# ----------------------------------------------------------------------
# Scalar-vs-vectorized metrics benchmark
# ----------------------------------------------------------------------
@contextmanager
def _scalar_env(enabled: bool):
    """Temporarily force (or clear) the ``REPRO_AUDIT_SCALAR`` hatch."""
    previous = os.environ.get(SCALAR_ENV)
    if enabled:
        os.environ[SCALAR_ENV] = "1"
    else:
        os.environ.pop(SCALAR_ENV, None)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = previous


def _timed(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """(best wall time over ``repeats``, last result)."""
    best = math.inf
    result: object = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _rows_equal(scalar_rows, fast_rows) -> bool:
    """Row-level equality with NaN-tolerant SPPE comparison."""
    if len(scalar_rows) != len(fast_rows):
        return False
    for a, b in zip(scalar_rows, fast_rows):
        if (
            a.owner_pool != b.owner_pool
            or a.target_pool != b.target_pool
            or a.test != b.test
            or a.tx_count != b.tx_count
        ):
            return False
        if a.sppe != b.sppe and not (
            math.isnan(a.sppe) and math.isnan(b.sppe)
        ):
            return False
    return True


# ----------------------------------------------------------------------
# Scalar-vs-vectorized engine (block production) benchmark
# ----------------------------------------------------------------------
#: The engine-vectorization acceptance gate: the fast path must produce
#: blocks at least this many times faster than the scalar oracle on the
#: dataset-C analogue.  Applied only at ``scale >= ENGINE_GATE_SCALE`` —
#: below that, fixed per-run overhead (array packing, policy
#: compilation) dominates and the ratio is not meaningful.
ENGINE_GATE_SPEEDUP = 10.0
ENGINE_GATE_SCALE = 0.3
ENGINE_GATE_DATASET = "dataset-C"


def _serialize_observers(result) -> dict[str, str]:
    """Canonical JSON blob per observer — the byte-identity artefacts."""
    from ..datasets.io import dataset_to_dict

    return {
        name: json.dumps(
            dataset_to_dict(dataset), separators=(",", ":"), sort_keys=True
        )
        for name, dataset in sorted(result.datasets_by_observer.items())
    }


def _engine_run(factory, repeats: int) -> tuple[float, dict, dict[str, str]]:
    """Best-of-``repeats`` block-production seconds for one engine mode.

    Production time is the ``engine.run`` span minus the ``engine.curate``
    span: admission, template building, the mining race and chain append
    — excluding dataset curation, which is identical in both modes.
    Returns (best seconds, counters from the best run, observer blobs).
    """
    best = math.inf
    counters: dict = {}
    blobs: dict[str, str] = {}
    for _ in range(max(repeats, 1)):
        with obs.tracing(reset=True):
            result = factory().run()
            snapshot = obs.snapshot()
        spans = snapshot.get("spans", {})
        production = spans.get("engine.run", {}).get(
            "total_seconds", 0.0
        ) - spans.get("engine.curate", {}).get("total_seconds", 0.0)
        if production < best:
            best = production
            counters = snapshot.get("counters", {})
        blobs = _serialize_observers(result)
    return best, counters, blobs


def run_engine_bench(scale: float = ENGINE_GATE_SCALE, repeats: int = 2) -> dict:
    """Time the scalar engine loop against the vectorized fast path.

    Runs the dataset-A and dataset-C scenario analogues at ``scale`` in
    both modes (``REPRO_AUDIT_SCALAR=1`` vs the default fast path) and
    reports best-of-``repeats`` block-production times.  Two gates:

    * **byte identity** (always): every observer's serialized dataset
      must match between the modes, cell by cell;
    * **speedup** (only when ``scale >= ENGINE_GATE_SCALE``): dataset C
      must clear :data:`ENGINE_GATE_SPEEDUP` on production time.
    """
    from ..simulation.scenarios import dataset_a_scenario, dataset_c_scenario

    factories = {
        "dataset-A": lambda: dataset_a_scenario(scale=scale),
        "dataset-C": lambda: dataset_c_scenario(scale=scale),
    }
    cells: dict[str, dict] = {}
    for name, factory in factories.items():
        with _scalar_env(True):
            scalar_seconds, _, scalar_blobs = _engine_run(factory, repeats)
        with _scalar_env(False):
            fast_seconds, counters, fast_blobs = _engine_run(factory, repeats)
        blocks = int(counters.get("engine.blocks.committed", 0))
        cells[name] = {
            "scalar_production_seconds": round(scalar_seconds, 4),
            "fast_production_seconds": round(fast_seconds, 4),
            "speedup": round(scalar_seconds / max(fast_seconds, 1e-9), 2),
            "identical": scalar_blobs == fast_blobs,
            "blocks_committed": blocks,
            "fast_blocks_per_second": round(
                blocks / max(fast_seconds, 1e-9), 2
            ),
            "scalar_blocks_per_second": round(
                blocks / max(scalar_seconds, 1e-9), 2
            ),
            "fast_path_engaged": (
                counters.get("engine.fast.pools_compiled", 0) > 0
                and counters.get("engine.fast.pools_fallback", 0) == 0
            ),
        }
    gate_applies = scale >= ENGINE_GATE_SCALE
    return {
        "benchmark": "engine",
        "scale": scale,
        "repeats": repeats,
        "cells": cells,
        "gate": {
            "dataset": ENGINE_GATE_DATASET,
            "min_speedup": ENGINE_GATE_SPEEDUP,
            "applies": gate_applies,
        },
        "all_identical": all(c["identical"] for c in cells.values()),
        "all_fast_path_engaged": all(
            c["fast_path_engaged"] for c in cells.values()
        ),
        "speedup_ok": (
            not gate_applies
            or cells[ENGINE_GATE_DATASET]["speedup"] >= ENGINE_GATE_SPEEDUP
        ),
    }


def run_adversaries_bench(
    scale: float = 0.08,
    kinds: Sequence[str] = ("fifo", "sandwich", "censor-for-rent", "selfish"),
    repeats: int = 1,
) -> dict:
    """Time adversary-zoo lineups on both substrates and the sweep itself.

    Two sections:

    * **cells** — for each zoo ``kind``, best-of-``repeats`` block
      production seconds in scalar vs fast mode with the byte-identity
      gate; zoo *template* policies are unknown to the fast path's
      policy compiler, so these cells also record whether the
      compiled-policy-program fallback actually engaged (the selfish
      lineup keeps honest templates and must *not* fall back);
    * **sweep** — cold vs cache-warm wall time of a one-seed detection
      matrix over the same kinds plus the honest row, with the
      honest-row false-positive bound as the gate.
    """
    from ..simulation.scenarios import adversary_scenario
    from .ext_adversaries import sweep_detection_matrix

    cells: dict[str, dict] = {}
    for kind in kinds:
        factory = lambda: adversary_scenario(kind, scale=scale)  # noqa: E731
        with _scalar_env(True):
            scalar_seconds, _, scalar_blobs = _engine_run(factory, repeats)
        with _scalar_env(False):
            fast_seconds, counters, fast_blobs = _engine_run(factory, repeats)
        cells[kind] = {
            "scalar_production_seconds": round(scalar_seconds, 4),
            "fast_production_seconds": round(fast_seconds, 4),
            "identical": scalar_blobs == fast_blobs,
            "fallback_pools": int(
                counters.get("engine.fast.pools_fallback", 0)
            ),
            "compiled_pools": int(
                counters.get("engine.fast.pools_compiled", 0)
            ),
        }

    sweep_kinds = ("honest",) + tuple(kinds)
    sweep_seconds: dict[str, float] = {}
    matrix = None
    with tempfile.TemporaryDirectory(prefix="repro-adv-bench-") as tmp:
        cache = DatasetCache(tmp)
        for phase in ("cold", "warm"):
            clear_memory_cache()
            started = time.perf_counter()
            matrix = sweep_detection_matrix(
                scale=scale,
                kinds=sweep_kinds,
                seeds=(11,),
                intensities=(1.0,),
                cache=cache,
            )
            sweep_seconds[phase] = round(time.perf_counter() - started, 3)
    honest_fpr = {c.test: c.rate for c in matrix.row("honest")}
    template_kinds = [k for k in kinds if k != "selfish"]
    return {
        "benchmark": "adversaries",
        "scale": scale,
        "repeats": repeats,
        "cells": cells,
        "sweep": {
            "kinds": list(sweep_kinds),
            "cold_seconds": sweep_seconds["cold"],
            "warm_seconds": sweep_seconds["warm"],
            "honest_fpr": honest_fpr,
            "alpha": matrix.alpha,
        },
        "all_identical": all(c["identical"] for c in cells.values()),
        "fallback_exercised": all(
            cells[k]["fallback_pools"] > 0 for k in template_kinds
        ),
        "honest_fpr_ok": all(
            rate <= matrix.alpha for rate in honest_fpr.values()
        ),
    }


def run_metrics_bench(
    scale: float = 0.3,
    cache_dir: Optional[Union[str, Path]] = None,
    repeats: int = 2,
) -> dict:
    """Time the scalar oracle against the vectorized metrics core.

    Builds (or loads) the dataset-C analogue at ``scale`` and times the
    Table 2 per-pool SPPE sweep, the chain-wide PPE distribution, and
    the Fig 6 violation grid in both modes.  Vectorized timings are
    reported twice: *cold* (first call on a fresh auditor — pays for
    packing the chain into arrays) and *warm* (arrays cached); the
    headline ``speedup`` compares the scalar best against the vectorized
    cold time, i.e. it already amortises nothing.  Each cell also checks
    the two modes produced identical results.
    """
    from ..core.audit import Auditor
    from ..datasets.builder import build_dataset_c

    import numpy as np

    cache = DatasetCache(cache_dir) if cache_dir is not None else DatasetCache()
    dataset = build_dataset_c(scale=scale, cache=cache)
    cells: dict[str, dict] = {}

    def cell(
        name: str,
        run: Callable[[Auditor], object],
        same: Callable[[object, object], bool],
    ) -> None:
        with _scalar_env(True):
            auditor = Auditor(dataset)
            scalar_seconds, scalar_result = _timed(
                lambda: run(auditor), repeats
            )
        with _scalar_env(False):
            auditor = Auditor(dataset)
            start = time.perf_counter()
            fast_result = run(auditor)
            cold = time.perf_counter() - start
            warm, fast_result = _timed(lambda: run(auditor), repeats)
        cells[name] = {
            "scalar_seconds": round(scalar_seconds, 4),
            "vectorized_cold_seconds": round(cold, 4),
            "vectorized_warm_seconds": round(warm, 4),
            "speedup": round(scalar_seconds / max(cold, 1e-9), 2),
            "warm_speedup": round(scalar_seconds / max(warm, 1e-9), 2),
            "identical": bool(same(scalar_result, fast_result)),
        }

    cell(
        "table2_sppe_sweep",
        lambda auditor: auditor.self_interest_table(),
        _rows_equal,
    )
    cell(
        "ppe_distribution",
        lambda auditor: auditor.ppe_distribution(),
        lambda a, b: a == b,
    )
    cell(
        "fig6_violation_grid",
        lambda auditor: auditor.violation_stats_multi(
            (0.0, 10.0, 600.0), rng=np.random.default_rng(30)
        ),
        lambda a, b: a == b,
    )
    return {
        "benchmark": "metrics",
        "dataset": "dataset_c",
        "scale": scale,
        "repeats": repeats,
        "cells": cells,
        "table2_speedup": cells["table2_sppe_sweep"]["speedup"],
        "all_identical": all(c["identical"] for c in cells.values()),
        # Warm-vs-warm: the scalar timings are best-of-N, so per-block
        # memos built by earlier repeats make them effectively warm; the
        # fair "never slower" gate compares against vectorized warm.
        "vectorized_never_slower": all(
            c["warm_speedup"] >= 1.0 for c in cells.values()
        ),
    }


# ----------------------------------------------------------------------
# Columnar-dataset benchmark (cold sharded builds / warm mmap loads)
# ----------------------------------------------------------------------
def _build_dataset_shard(cell) -> dict:
    """Pool worker: build one of the A/B/C analogues through the cache."""
    from ..datasets import builder as dataset_builder

    name, scale, cache_dir = cell
    build = {
        "A": dataset_builder.build_dataset_a,
        "B": dataset_builder.build_dataset_b,
        "C": dataset_builder.build_dataset_c,
    }[name]
    cache = DatasetCache(cache_dir)
    start = time.perf_counter()
    dataset = build(scale=scale, cache=cache)
    seconds = time.perf_counter() - start
    return {
        "dataset": name,
        "build_seconds": round(seconds, 3),
        "blocks": dataset.block_count,
        "records": dataset.tx_count,
        "snapshots": len(dataset.snapshots),
        "columnar_attached": dataset.columnar is not None,
    }


def run_datasets_bench(
    scale: float = 1.0,
    jobs: int = 4,
    battery_ids: Optional[Sequence[str]] = None,
    work_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Benchmark the columnar dataset pipeline end to end.

    Four sections over one fresh cache directory:

    * **cold** — the A/B/C analogues built once each, sharded across
      the process pool (``jobs``), every entry persisted in both
      formats with the on-disk sizes recorded;
    * **warm** — the same datasets re-loaded from the populated cache
      (in-process memos cleared first), which must come back through
      the memory-mapped sidecar;
    * **chain_arrays / table2_warm** — packing cost via mmap vs the
      object-graph walk on dataset C, then a warm Table 2 sweep with
      the ``vectorized.chain_arrays.*`` counters, gating that the
      zero-copy path engaged and **zero** fallbacks occurred;
    * **battery** — a full paper battery at ``scale`` against the warm
      cache (scenario-only datasets still build cold inside it).

    Gates: interchange **byte identity** for every dataset loaded back
    from the columnar store, the mmap path engaging with no fallback on
    the warm sweep, and the battery completing.
    """
    import gzip

    import numpy as np

    from ..core.audit import Auditor
    from ..core.vectorized import ChainArrays
    from ..datasets import builder as dataset_builder
    from ..datasets.builder import disk_cache_key
    from ..datasets.columnar import columnar_sidecar
    from ..datasets.io import dataset_to_dict
    from ..simulation.scenarios import (
        dataset_a_scenario,
        dataset_b_scenario,
        dataset_c_scenario,
    )
    from .experiments import EXPERIMENTS

    ids = list(battery_ids) if battery_ids is not None else list(EXPERIMENTS)
    scenarios = {
        "A": dataset_a_scenario(scale=scale),
        "B": dataset_b_scenario(scale=scale),
        "C": dataset_c_scenario(scale=scale),
    }
    cache_root = tempfile.mkdtemp(
        prefix="repro-bench-datasets-",
        dir=str(work_dir) if work_dir is not None else None,
    )
    try:
        with obs.tracing():
            # -- cold: shard the three builds across the pool ----------
            _reset_process_caches()
            cells = [(name, scale, cache_root) for name in ("A", "B", "C")]
            started = time.perf_counter()
            outcomes = run_sharded(cells, _build_dataset_shard, jobs=jobs)
            cold_wall = time.perf_counter() - started
            cache = DatasetCache(cache_root)
            cold: dict[str, dict] = {}
            for (name, _, _), outcome in zip(cells, outcomes):
                entry = (
                    dict(outcome.value)
                    if outcome.ok
                    else {"dataset": name, "error": outcome.error}
                )
                path = cache.path_for(disk_cache_key(scenarios[name]))
                sidecar = columnar_sidecar(path)
                if path.exists():
                    entry["gzip_bytes"] = path.stat().st_size
                if sidecar.exists():
                    entry["columnar_bytes"] = sidecar.stat().st_size
                cold[name] = entry

            # -- warm: loads must come back memory-mapped --------------
            _reset_process_caches()
            builders = {
                "A": dataset_builder.build_dataset_a,
                "B": dataset_builder.build_dataset_b,
                "C": dataset_builder.build_dataset_c,
            }
            warm: dict[str, dict] = {}
            datasets: dict[str, object] = {}
            for name, build in builders.items():
                started = time.perf_counter()
                dataset = build(scale=scale, cache=cache)
                seconds = time.perf_counter() - started
                datasets[name] = dataset
                warm[name] = {
                    "load_seconds": round(seconds, 3),
                    "mmap_attached": dataset.columnar is not None,
                }

            # -- byte identity: columnar round-trip == gzip interchange
            byte_identity: dict[str, bool] = {}
            for name, dataset in datasets.items():
                path = cache.path_for(disk_cache_key(scenarios[name]))
                with gzip.open(path, "rb") as handle:
                    interchange = handle.read()
                serialized = json.dumps(
                    dataset_to_dict(dataset), separators=(",", ":")
                ).encode("utf-8")
                byte_identity[name] = serialized == interchange

            # -- packing: mmap vs object graph on dataset C ------------
            dataset_c = datasets["C"]
            mmap_seconds, packed_mmap = _timed(
                lambda: ChainArrays.from_dataset(dataset_c), 1
            )
            object_seconds, packed_objects = _timed(
                lambda: ChainArrays.from_blocks(
                    dataset_c.chain, dataset_c.block_pools
                ),
                1,
            )
            packs_identical = (
                packed_mmap.txids == packed_objects.txids
                and np.array_equal(
                    packed_mmap.fee_rates, packed_objects.fee_rates
                )
                and np.array_equal(
                    packed_mmap.predicted_rank, packed_objects.predicted_rank
                )
            )

            # -- warm Table 2 with the pack-path counters --------------
            obs_before = obs.snapshot()
            table2_seconds, _ = _timed(
                lambda: Auditor(dataset_c).self_interest_table(), 1
            )
            pack_counters = obs.delta(obs_before, obs.snapshot()).get(
                "counters", {}
            )
            mmap_packs = int(
                pack_counters.get("vectorized.chain_arrays.mmap", 0)
            )
            fallback_packs = int(
                pack_counters.get("vectorized.chain_arrays.fallback", 0)
            )

            # -- a full paper battery against the warm cache -----------
            battery_cell, _ = _bench_cell(ids, scale, jobs, cache_root)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    _reset_process_caches()

    gates = {
        "byte_identical": all(byte_identity.values()),
        "mmap_engaged": mmap_packs > 0 and fallback_packs == 0,
        "battery_ok": not battery_cell["raised"],
    }
    return {
        "benchmark": "datasets",
        "scale": scale,
        "jobs": jobs,
        "experiments": ids,
        "cold": {
            "wall_seconds": round(cold_wall, 3),
            "sharded": jobs > 1 and len(cells) > 1,
            "datasets": cold,
        },
        "warm": warm,
        "byte_identity": byte_identity,
        "chain_arrays": {
            "mmap_pack_seconds": round(mmap_seconds, 4),
            "object_pack_seconds": round(object_seconds, 4),
            "speedup": round(object_seconds / max(mmap_seconds, 1e-9), 2),
            "identical": bool(packs_identical),
        },
        "table2_warm": {
            "seconds": round(table2_seconds, 4),
            "mmap_packs": mmap_packs,
            "fallback_packs": fallback_packs,
        },
        "battery": battery_cell,
        "gates": gates,
    }
