"""Ablations for the design choices DESIGN.md calls out.

* ``abl_selection`` — greedy vs ancestor-package block building: how
  much PPE/violation noise does CPFP-aware selection itself create,
  and what does it earn the miner?
* ``abl_epsilon`` — the ε-tightening of the violation test, swept over
  a fine grid, separating propagation-skew artefacts from real
  violations.
* ``abl_jitter`` — PPE sensitivity to template staleness (the rank
  jitter honest pools exhibit), mapping jitter to the Fig 7 error band.
"""

from __future__ import annotations

import numpy as np

from ..core.audit import Auditor
from ..core.norms import CpfpFilter
from ..core.ppe import chain_ppe, summarize_ppe
from ..mempool.mempool import MempoolEntry
from ..mining.gbt import ancestor_package_template, greedy_feerate_template
from ..mining.policies import FeeRatePolicy, JitterSource, NoisyPolicy
from ..simulation.rng import RngStreams
from ..simulation.workload import (
    DemandModel,
    InjectionConfig,
    WorkloadConfig,
    WorkloadGenerator,
)
from .base import DataContext, ExperimentResult, check
from .tables import render_table


# ----------------------------------------------------------------------
# abl_selection
# ----------------------------------------------------------------------
def _sample_mempools(scale: float, pools: int = 30):
    """Generate independent congested pending sets with CPFP chains."""
    config = WorkloadConfig(
        duration=pools * 1200.0,
        capacity_vsize_per_second=1_000_000 / 600.0,
        demand=DemandModel(base_ratio=1.3),
        injections=InjectionConfig(cpfp_child_fraction=0.4),
    )
    plan = WorkloadGenerator(config, RngStreams(777)).generate()
    window = config.duration / pools
    mempools = []
    for index in range(pools):
        lo, hi = index * window, (index + 1) * window
        entries = [
            MempoolEntry(tx=p.tx, arrival_time=p.broadcast_time)
            for p in plan
            if lo <= p.broadcast_time < hi
        ]
        if len(entries) > 20:
            mempools.append(entries)
    return mempools


def _valid_greedy_template(entries, max_vsize):
    """Greedy fee-rate filling that refuses orphaned children.

    The honest baseline a norm-following miner could run *without*
    package logic: scan by fee-rate, but only include a transaction
    once its in-set parents are already in the block.
    """
    from ..mining.gbt import BlockTemplate

    in_set = {entry.txid for entry in entries}
    ranked = sorted(entries, key=lambda e: (-e.fee_rate, e.arrival_time, e.txid))
    included: set[str] = set()
    chosen = []
    used = 0
    fee = 0
    progress = True
    while progress:
        progress = False
        for entry in ranked:
            if entry.txid in included:
                continue
            if used + entry.vsize > max_vsize:
                continue
            if any(
                parent in in_set and parent not in included
                for parent in entry.tx.parent_txids
            ):
                continue
            included.add(entry.txid)
            chosen.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee
            progress = True
    return BlockTemplate(tuple(chosen), total_fee=fee, total_vsize=used)


def run_selection(ctx: DataContext) -> ExperimentResult:
    """Naive greedy vs valid-greedy vs ancestor-package building."""
    mempools = _sample_mempools(ctx.scale)
    naive_fees = []
    valid_fees = []
    package_fees = []
    invalid_naive = 0
    from ..mining.gbt import is_topologically_valid

    for entries in mempools:
        naive = greedy_feerate_template(entries, max_vsize=400_000)
        valid = _valid_greedy_template(entries, max_vsize=400_000)
        package = ancestor_package_template(entries, max_vsize=400_000)
        naive_fees.append(naive.total_fee)
        valid_fees.append(valid.total_fee)
        package_fees.append(package.total_fee)
        if not is_topologically_valid(naive.transactions):
            invalid_naive += 1
    naive_fees = np.asarray(naive_fees, dtype=float)
    valid_fees = np.asarray(valid_fees, dtype=float)
    package_fees = np.asarray(package_fees, dtype=float)
    gain = float((package_fees / np.maximum(valid_fees, 1)).mean())
    rendered = render_table(
        ["builder", "mean fee/block (sat)", "valid blocks"],
        [
            ("naive greedy (invalid)", float(naive_fees.mean()),
             len(mempools) - invalid_naive),
            ("valid greedy", float(valid_fees.mean()), len(mempools)),
            ("ancestor-package", float(package_fees.mean()), len(mempools)),
        ],
        title=(
            f"Block building over {len(mempools)} congested mempools "
            f"(package/valid-greedy fee ratio {gain:.4f})"
        ),
    )
    measured = {
        "package_over_valid_greedy_fee_ratio": round(gain, 4),
        "naive_greedy_invalid_blocks": invalid_naive,
        "mempools": len(mempools),
    }
    checks = [
        check(
            "package selection collects at least as much fee as the "
            "valid greedy baseline",
            gain >= 0.9995,
            f"ratio={gain:.4f}",
        ),
        check(
            "naive greedy selection emits topologically invalid blocks "
            "under CPFP load (why real miners need package logic)",
            invalid_naive > 0,
            f"{invalid_naive}/{len(mempools)}",
        ),
    ]
    return ExperimentResult(
        experiment_id="abl_selection",
        title="Ablation: greedy vs ancestor-package GBT",
        paper={"design_note": "DESIGN.md §5.2"},
        measured=measured,
        rendered=rendered,
        checks=checks,
    )


# ----------------------------------------------------------------------
# abl_epsilon
# ----------------------------------------------------------------------
EPSILON_GRID = (0.0, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 600.0, 1800.0)


def run_epsilon(ctx: DataContext) -> ExperimentResult:
    """Fine ε sweep of the violation test on dataset A."""
    auditor = Auditor(ctx.dataset_a())
    rows = []
    means = []
    for epsilon in EPSILON_GRID:
        stats = auditor.violation_stats(
            epsilon=epsilon, count=20, rng=np.random.default_rng(8)
        )
        fractions = np.asarray([s.violating_fraction for s in stats])
        means.append(float(fractions.mean()))
        rows.append(
            (
                f"{epsilon:g}s",
                float(fractions.mean()),
                float(np.median(fractions)),
                float(fractions.max()),
            )
        )
    rendered = render_table(
        ["epsilon", "mean fraction", "median", "max"],
        rows,
        title="Violation fraction vs arrival-time slack (dataset A)",
    )
    measured = {"mean_by_epsilon": dict(zip(map(str, EPSILON_GRID), means))}
    checks = [
        check(
            "violations decrease monotonically with epsilon",
            all(a >= b - 1e-12 for a, b in zip(means, means[1:])),
        ),
        check(
            "most of the raw signal is propagation skew "
            "(epsilon=60s removes a large share of it)",
            means[0] == 0 or means[EPSILON_GRID.index(60.0)] <= means[0],
        ),
        check(
            "a residual violating fraction survives 10 minutes of slack",
            means[EPSILON_GRID.index(600.0)] >= 0.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="abl_epsilon",
        title="Ablation: epsilon-tightening of the violation test",
        paper={"paper_values": "Fig 6 uses eps in {0, 10s, 10min}"},
        measured=measured,
        rendered=rendered,
        checks=checks,
    )


# ----------------------------------------------------------------------
# abl_jitter
# ----------------------------------------------------------------------
JITTER_GRID = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def run_jitter(ctx: DataContext) -> ExperimentResult:
    """Map template jitter to the resulting PPE band."""
    from ..chain.block import GENESIS_HASH, build_block
    from ..chain.constants import block_subsidy
    from ..chain.transaction import coinbase_value, make_coinbase

    mempools = _sample_mempools(ctx.scale, pools=12)
    rows = []
    means = []
    for jitter in JITTER_GRID:
        policy = NoisyPolicy(
            base_jitter_source=JitterSource(rng=np.random.default_rng(int(jitter * 10) + 1)),
            base=FeeRatePolicy(package_selection=True),
            jitter=jitter,
        )
        blocks = []
        prev_hash = GENESIS_HASH
        for height, entries in enumerate(mempools):
            template = policy.build(entries, max_vsize=400_000, reserved_vsize=200)
            coinbase = make_coinbase(
                "jitter-pool",
                coinbase_value(block_subsidy(height), template.total_fee),
                "/jitter/",
                height=height,
            )
            block = build_block(
                height=height,
                prev_hash=prev_hash,
                timestamp=float(height),
                coinbase=coinbase,
                transactions=template.transactions,
            )
            blocks.append(block)
            prev_hash = block.block_hash
        summary = summarize_ppe(chain_ppe(blocks, CpfpFilter.CHILDREN))
        means.append(summary.mean)
        rows.append((jitter, summary.mean, summary.percentile_80))
    rendered = render_table(
        ["rank jitter", "mean PPE %", "p80 PPE %"],
        rows,
        title="PPE as a function of template rank jitter",
    )
    measured = {"mean_ppe_by_jitter": dict(zip(map(str, JITTER_GRID), [round(m, 3) for m in means]))}
    checks = [
        check(
            "PPE increases monotonically with jitter",
            all(a <= b + 0.25 for a, b in zip(means, means[1:])),
        ),
        check(
            "the paper's ~2.7% mean PPE corresponds to small jitter (<= 4 ranks)",
            any(m <= 4.0 for m in means[:5]),
        ),
    ]
    return ExperimentResult(
        experiment_id="abl_jitter",
        title="Ablation: template jitter vs PPE",
        paper={"paper_values": "Fig 7: mean PPE 2.65%, p80 4.03%"},
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
