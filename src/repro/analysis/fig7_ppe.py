"""Fig 7 — position prediction error across blocks and pools.

(a) PPE over all dataset-C blocks: the paper finds mean 2.65%, with 80%
of blocks under 4.03% — ordering is largely norm-conformant; (b) per-
pool PPE for the top-6 pools, with ViaBTC deviating more than peers.
"""

from __future__ import annotations

import numpy as np

from ..core.audit import Auditor
from ..core.ppe import summarize_ppe
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "mean_ppe": 2.65,
    "std_ppe": 2.89,
    "p80_ppe": 4.03,
    "viabtc_deviates_more": True,
}


def run(ctx: DataContext) -> ExperimentResult:
    """Regenerate Fig 7 (overall and per-pool PPE)."""
    auditor = Auditor(ctx.dataset_c())
    overall = auditor.ppe_distribution()
    summary = summarize_ppe(overall)
    top6 = [
        est.pool
        for est in auditor.dataset.hash_rates()
        if est.pool != "unknown"
    ][:6]
    per_pool = auditor.ppe_by_pool(top6)
    pool_rows = []
    pool_means: dict[str, float] = {}
    for pool in top6:
        values = [r.ppe for r in per_pool[pool]]
        mean = float(np.mean(values)) if values else float("nan")
        pool_means[pool] = mean
        pool_rows.append(
            (
                pool,
                len(values),
                mean,
                float(np.percentile(values, 80)) if values else float("nan"),
            )
        )
    rendered = "\n\n".join(
        [
            render_table(
                ["blocks", "mean PPE %", "std", "median", "p80"],
                [
                    (
                        summary.block_count,
                        summary.mean,
                        summary.std,
                        summary.median,
                        summary.percentile_80,
                    )
                ],
                title="Fig 7a: PPE over all blocks (dataset C)",
            ),
            render_table(
                ["pool", "blocks", "mean PPE %", "p80"],
                pool_rows,
                title="Fig 7b: PPE of the top-6 pools",
            ),
        ]
    )
    others = [m for p, m in pool_means.items() if p != "ViaBTC" and m == m]
    viabtc_mean = pool_means.get("ViaBTC", float("nan"))
    measured = {
        "mean_ppe": round(summary.mean, 3),
        "std_ppe": round(summary.std, 3),
        "p80_ppe": round(summary.percentile_80, 3),
        "viabtc_mean": round(viabtc_mean, 3) if viabtc_mean == viabtc_mean else None,
    }
    checks = [
        check(
            "transactions are by and large ordered by fee-rate (mean PPE < 10%)",
            summary.mean < 10.0,
            f"mean={summary.mean:.2f}%",
        ),
        check(
            "80% of blocks have single-digit PPE",
            summary.percentile_80 < 10.0,
            f"p80={summary.percentile_80:.2f}%",
        ),
        check(
            "ViaBTC deviates more from the norm than its peers",
            viabtc_mean == viabtc_mean
            and bool(others)
            and viabtc_mean > float(np.mean(others)),
            f"ViaBTC={viabtc_mean:.2f}% peers={float(np.mean(others)) if others else float('nan'):.2f}%",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="Position prediction error (overall and per pool)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
