"""Experiment framework: context, results, and the paper-vs-measured check.

Every table/figure reproduction is a function ``run(ctx) -> ExperimentResult``.
The :class:`DataContext` builds (and memoises) the datasets a run needs at a
chosen scale; the :class:`ExperimentResult` carries the measured rows, the
paper's reference values, and a list of *shape checks* — qualitative claims
("misbehaving pools flagged", "higher fees ⇒ lower delays") that benches
assert instead of brittle absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..datasets.builder import (
    build_dataset,
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
)
from ..datasets.cache import DatasetCache
from ..datasets.dataset import Dataset
from ..simulation.scenarios import Scenario

#: Default scale for experiment runs: large enough for the statistics,
#: small enough for a laptop session.
DEFAULT_SCALE = 0.25


@dataclass
class DataContext:
    """Lazily built datasets shared by experiment runs.

    With ``cache`` set, builds go through the persistent
    content-addressed dataset cache: warm contexts load from disk
    instead of simulating, and concurrent worker processes sharing one
    cache directory build each dataset at most once (the first builder
    wins a lockfile; everyone else loads its artifact).
    """

    scale: float = DEFAULT_SCALE
    cache: Optional[DatasetCache] = None
    _cache: dict[str, Dataset] = field(default_factory=dict, repr=False)

    def dataset_a(self) -> Dataset:
        if "A" not in self._cache:
            self._cache["A"] = build_dataset_a(scale=self.scale, cache=self.cache)
        return self._cache["A"]

    def dataset_b(self) -> Dataset:
        if "B" not in self._cache:
            self._cache["B"] = build_dataset_b(scale=self.scale, cache=self.cache)
        return self._cache["B"]

    def dataset_c(self) -> Dataset:
        if "C" not in self._cache:
            self._cache["C"] = build_dataset_c(scale=self.scale, cache=self.cache)
        return self._cache["C"]

    def scenario_dataset(self, scenario: Scenario) -> Dataset:
        """Build (or fetch) an arbitrary scenario's dataset via the cache.

        Experiments that derive bespoke scenarios (modified injections,
        extra policies) route their builds through here so warm runs
        and parallel workers reuse them; the scenario's ``name`` is the
        cache's builder key, so derived scenarios must be renamed to
        not collide with the stock dataset at the same seed.
        """
        return build_dataset(scenario, cache=self.cache)


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, verified on measured output."""

    description: str
    passed: bool
    detail: str = ""


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction."""

    experiment_id: str
    title: str
    #: Reference values quoted from the paper, for side-by-side review.
    paper: dict[str, object]
    #: Measured values from this run.
    measured: dict[str, object]
    #: Rendered tables/series, ready to print.
    rendered: str
    checks: list[ShapeCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> list[ShapeCheck]:
        return [check for check in self.checks if not check.passed]

    def report(self) -> str:
        """Full human-readable report."""
        lines = [f"=== {self.experiment_id}: {self.title} ===", self.rendered, ""]
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            detail = f" ({check.detail})" if check.detail else ""
            lines.append(f"[{status}] {check.description}{detail}")
        return "\n".join(lines)


def check(
    description: str, passed: bool, detail: str = ""
) -> ShapeCheck:
    """Convenience constructor."""
    return ShapeCheck(description=description, passed=bool(passed), detail=detail)


#: Signature every experiment module's ``run`` follows.
ExperimentRunner = Callable[[DataContext], ExperimentResult]


def paper_vs_measured_rows(
    paper: dict[str, object], measured: dict[str, object]
) -> list[Sequence[object]]:
    """Join paper and measured dicts on shared keys for rendering."""
    rows = []
    for key in paper:
        rows.append((key, paper[key], measured.get(key, "-")))
    for key in measured:
        if key not in paper:
            rows.append((key, "-", measured[key]))
    return rows
