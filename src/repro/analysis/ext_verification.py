"""Extension: third-party verification of norm adherence (§6.1).

The paper asks whether an outside observer can *verify* that a miner
follows a declared ordering norm.  :class:`~repro.core.neutrality.NormVerifier`
replays each audited block against the declared fee-rate norm applied
to a reconstructed pending set and scores selection and ordering
agreement.  Expected shape on dataset C: honest pools score high;
ViaBTC (extra jitter + collusion) scores visibly lower; BTC.com (dark
fee boosting) shows depressed *ordering* agreement even though its
selection is largely honest.
"""

from __future__ import annotations

import numpy as np

from ..core.neutrality import NormVerifier
from ..mining.policies import FeeRatePolicy
from .base import DataContext, ExperimentResult, check
from .tables import render_table

PAPER = {
    "question": "§6.1: can a third party verify adherence to a norm?",
    "expectation": "honest pools score high; misbehaving pools lower",
}

HONEST_POOLS = ("Poolin", "AntPool", "Huobi", "OKEx")
MISBEHAVING_POOLS = ("ViaBTC", "BTC.com", "F2Pool")


def run(ctx: DataContext) -> ExperimentResult:
    """Verify every large pool's blocks against the fee-rate norm."""
    dataset = ctx.dataset_c()
    broadcast_times = {
        txid: record.broadcast_time
        for txid, record in dataset.tx_records.items()
    }
    verifier = NormVerifier(broadcast_times)
    policy = FeeRatePolicy(package_selection=True)
    all_blocks = list(dataset.chain)

    results = {}
    for pool in HONEST_POOLS + MISBEHAVING_POOLS:
        blocks = dataset.blocks_of(pool)
        if not blocks:
            continue
        results[pool] = verifier.verify(
            pool,
            "fee-rate",
            policy,
            blocks,
            future_blocks=all_blocks,
            sample=25,
            rng=np.random.default_rng(66),
        )
    rows = [
        (
            pool,
            result.blocks_checked,
            round(result.selection_agreement, 3),
            round(result.ordering_agreement, 3),
            result.conforms(threshold=0.75),
        )
        for pool, result in sorted(
            results.items(), key=lambda kv: -kv[1].ordering_agreement
        )
    ]
    rendered = render_table(
        ["pool", "blocks checked", "selection agr.", "ordering agr.", "conforms"],
        rows,
        title="Third-party verification against the declared fee-rate norm",
    )
    honest_scores = [
        results[p].ordering_agreement for p in HONEST_POOLS if p in results
    ]
    measured = {
        pool: {
            "selection": round(result.selection_agreement, 3),
            "ordering": round(result.ordering_agreement, 3),
        }
        for pool, result in results.items()
    }
    viabtc = results.get("ViaBTC")
    checks = [
        check(
            "honest pools verify as norm-conformant (ordering agreement > 0.85)",
            bool(honest_scores) and min(honest_scores) > 0.85,
            f"min honest ordering={min(honest_scores):.3f}" if honest_scores else "-",
        ),
        check(
            "ViaBTC's ordering agreement is visibly below the honest pools'",
            viabtc is not None
            and bool(honest_scores)
            and viabtc.ordering_agreement < float(np.mean(honest_scores)),
            f"ViaBTC={viabtc.ordering_agreement:.3f}" if viabtc else "-",
        ),
        check(
            "selection agreement stays high for everyone "
            "(misbehaviour here is about ordering, not exclusion)",
            all(r.selection_agreement > 0.5 for r in results.values()),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_verification",
        title="Third-party norm verification (extension of §6.1)",
        paper=PAPER,
        measured=measured,
        rendered=rendered,
        checks=checks,
    )
