"""CSV export: flat files in the spirit of the paper's data release.

The authors published their curated measurements as flat tables; this
module renders a :class:`~repro.datasets.dataset.Dataset` the same way:

* ``transactions.csv`` — one row per recorded transaction (arrivals,
  fees, commit location, labels),
* ``blocks.csv`` — one row per block (pool, sizes, fees),
* ``snapshot_sizes.csv`` — the mempool size series,
* ``pools.csv`` — per-pool hash-rate estimates and wallet counts.

Everything is plain ``csv`` from the standard library so the files load
anywhere (pandas, R, spreadsheets) without this package installed.

Each table is written atomically (staged in memory, renamed into place
via :func:`repro.datasets.io.atomic_write_text`), so a crash mid-export
never leaves a truncated CSV behind.
"""

from __future__ import annotations

import csv
import io
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

from .dataset import Dataset
from .io import atomic_write_text


@contextmanager
def _atomic_csv(path: Path) -> Iterator["csv._writer"]:
    """A csv writer whose output lands atomically at ``path``."""
    buffer = io.StringIO(newline="")
    yield csv.writer(buffer)
    atomic_write_text(path, buffer.getvalue())

TRANSACTIONS_FILE = "transactions.csv"
BLOCKS_FILE = "blocks.csv"
SNAPSHOT_SIZES_FILE = "snapshot_sizes.csv"
POOLS_FILE = "pools.csv"


def export_transactions(dataset: Dataset, path: Path) -> int:
    """Write the per-transaction table; returns the row count."""
    fields = [
        "txid",
        "broadcast_time",
        "observer_arrival",
        "fee_sat",
        "vsize",
        "fee_rate_sat_vb",
        "commit_height",
        "commit_position",
        "labels",
    ]
    with _atomic_csv(path) as writer:
        writer.writerow(fields)
        count = 0
        for record in dataset.tx_records.values():
            writer.writerow(
                [
                    record.txid,
                    f"{record.broadcast_time:.3f}",
                    (
                        f"{record.observer_arrival:.3f}"
                        if record.observer_arrival is not None
                        else ""
                    ),
                    record.fee,
                    record.vsize,
                    f"{record.fee_rate:.6f}",
                    record.commit_height if record.commit_height is not None else "",
                    (
                        record.commit_position
                        if record.commit_position is not None
                        else ""
                    ),
                    ";".join(sorted(record.labels)),
                ]
            )
            count += 1
    return count


def export_blocks(dataset: Dataset, path: Path) -> int:
    """Write the per-block table; returns the row count."""
    fields = [
        "height",
        "block_hash",
        "timestamp",
        "pool",
        "tx_count",
        "vsize",
        "total_fees_sat",
        "subsidy_sat",
        "fee_share_of_revenue",
    ]
    with _atomic_csv(path) as writer:
        writer.writerow(fields)
        count = 0
        for record in dataset.block_records():
            writer.writerow(
                [
                    record.height,
                    record.block_hash,
                    f"{record.timestamp:.3f}",
                    record.pool,
                    record.tx_count,
                    record.vsize,
                    record.total_fees,
                    record.subsidy,
                    f"{record.fee_share_of_revenue:.6f}",
                ]
            )
            count += 1
    return count


def export_snapshot_sizes(dataset: Dataset, path: Path) -> int:
    """Write the mempool size series; returns the row count."""
    with _atomic_csv(path) as writer:
        writer.writerow(["time", "pending_vsize", "pending_tx_count"])
        if dataset.size_series is None:
            times = dataset.snapshots.times
            sizes = dataset.snapshots.sizes()
            counts = [s.tx_count for s in dataset.snapshots]
        else:
            times = dataset.size_series.times
            sizes = dataset.size_series.sizes()
            counts = dataset.size_series.tx_counts() or [""] * len(times)
        for time, size, count in zip(times, sizes, counts):
            writer.writerow([f"{time:.3f}", size, count])
        return len(times)


def export_pools(dataset: Dataset, path: Path) -> int:
    """Write the per-pool table; returns the row count."""
    with _atomic_csv(path) as writer:
        writer.writerow(["pool", "blocks", "hash_share", "reward_wallets"])
        estimates = dataset.hash_rates()
        for estimate in estimates:
            wallets = dataset.pool_wallets.get(estimate.pool, frozenset())
            writer.writerow(
                [
                    estimate.pool,
                    estimate.blocks,
                    f"{estimate.share:.6f}",
                    len(wallets),
                ]
            )
        return len(estimates)


def export_csv(dataset: Dataset, directory: Union[str, Path]) -> dict[str, int]:
    """Export all four tables into ``directory``; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        TRANSACTIONS_FILE: export_transactions(
            dataset, directory / TRANSACTIONS_FILE
        ),
        BLOCKS_FILE: export_blocks(dataset, directory / BLOCKS_FILE),
        SNAPSHOT_SIZES_FILE: export_snapshot_sizes(
            dataset, directory / SNAPSHOT_SIZES_FILE
        ),
        POOLS_FILE: export_pools(dataset, directory / POOLS_FILE),
    }


def export_columnar(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Export ``dataset`` as a columnar npz (the memory-mappable form).

    A thin alias over :func:`repro.datasets.columnar.save_columnar` so
    export call sites (CLI ``dataset --columnar``) read symmetrically
    with :func:`export_csv`.
    """
    from .columnar import save_columnar

    return save_columnar(dataset, Path(path))
