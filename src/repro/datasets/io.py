"""Dataset persistence: gzip-JSON round-trips.

The paper released its curated datasets; we mirror that by making every
:class:`~repro.datasets.dataset.Dataset` serialisable.  The format is
a single gzip-compressed JSON document with compact per-transaction
tuples.  Round-tripping re-derives transaction and block hashes from
content, so a load verifies integrity for free: a corrupted file simply
fails chain validation.

Robustness guarantees (tests/test_io.py):

* writes are **atomic** — the document goes to ``<path>.tmp`` first and
  is moved into place with :func:`os.replace`, so a crash mid-write
  never leaves a truncated artifact where a reader expects a dataset;
* writes are **deterministic** — the gzip header is written with
  ``mtime=0``, so the same dataset always produces the same bytes
  (the zero-rate fault-schedule identity test depends on this);
* a truncated or malformed file raises :class:`DatasetCorruptionError`
  carrying the path and, where available, the byte offset — never a
  bare decoder traceback.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from pathlib import Path
from typing import Optional, Union

from ..chain.block import Block, build_block
from ..chain.blockchain import Blockchain
from ..chain.transaction import (
    CoinbaseTransaction,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from ..mempool.snapshots import (
    MempoolSnapshot,
    SizeSeries,
    SnapshotStore,
    SnapshotTx,
)
from .dataset import Dataset
from .records import TxRecord

FORMAT_VERSION = 1


class DatasetCorruptionError(ValueError):
    """A dataset file exists but cannot be decoded.

    ``path`` locates the artifact; ``offset`` is the byte/character
    position the decoder stopped at when the underlying error exposes
    one (JSON syntax errors do; truncated gzip streams do not).
    """

    def __init__(
        self,
        path: Union[str, Path],
        reason: str,
        offset: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.reason = reason
        self.offset = offset
        location = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"corrupt dataset {self.path}{location}: {reason}")


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` via a sibling temp file + rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def _encode_tx(tx: Transaction) -> list:
    return [
        [[txin.prevout.txid, txin.prevout.index] for txin in tx.inputs],
        [[txout.address, txout.value] for txout in tx.outputs],
        tx.vsize,
        tx.fee,
        tx.nonce,
    ]


def _decode_tx(payload: list) -> Transaction:
    inputs, outputs, vsize, fee, nonce = payload
    return Transaction(
        inputs=tuple(TxInput(OutPoint(txid, index)) for txid, index in inputs),
        outputs=tuple(TxOutput(address, value) for address, value in outputs),
        vsize=vsize,
        fee=fee,
        nonce=nonce,
    )


def _encode_block(block: Block) -> dict:
    coinbase = block.coinbase
    return {
        "height": block.height,
        "timestamp": block.timestamp,
        "coinbase": {
            "address": coinbase.outputs[0].address,
            "value": coinbase.outputs[0].value,
            "marker": coinbase.marker,
            "vsize": coinbase.vsize,
        },
        "txs": [_encode_tx(tx) for tx in block.transactions],
    }


def _decode_block(payload: dict, prev_hash: str) -> Block:
    cb = payload["coinbase"]
    coinbase = CoinbaseTransaction(
        inputs=(),
        outputs=(TxOutput(cb["address"], cb["value"]),),
        vsize=cb["vsize"],
        fee=0,
        nonce=payload["height"],
        marker=cb["marker"],
    )
    return build_block(
        height=payload["height"],
        prev_hash=prev_hash,
        timestamp=payload["timestamp"],
        coinbase=coinbase,
        transactions=[_decode_tx(tx) for tx in payload["txs"]],
    )


def _encode_record(record: TxRecord) -> list:
    return [
        record.txid,
        record.broadcast_time,
        record.observer_arrival,
        record.fee,
        record.vsize,
        record.commit_height,
        record.commit_position,
        sorted(record.labels),
    ]


def _decode_record(payload: list) -> TxRecord:
    txid, broadcast, arrival, fee, vsize, height, position, labels = payload
    return TxRecord(
        txid=txid,
        broadcast_time=broadcast,
        observer_arrival=arrival,
        fee=fee,
        vsize=vsize,
        commit_height=height,
        commit_position=position,
        labels=frozenset(labels),
    )


def _encode_snapshot(snapshot: MempoolSnapshot) -> dict:
    return {
        "time": snapshot.time,
        "txs": [
            [tx.txid, tx.arrival_time, tx.fee, tx.vsize] for tx in snapshot.txs
        ],
    }


def _decode_snapshot(payload: dict) -> MempoolSnapshot:
    return MempoolSnapshot(
        time=payload["time"],
        txs=tuple(
            SnapshotTx(txid=t, arrival_time=a, fee=f, vsize=v)
            for t, a, f, v in payload["txs"]
        ),
    )


def dataset_to_dict(dataset: Dataset) -> dict:
    """Encode a dataset as a JSON-ready dictionary."""
    size_series = None
    if dataset.size_series is not None:
        size_series = {
            "times": dataset.size_series.times,
            "vsizes": dataset.size_series.sizes(),
            "tx_counts": dataset.size_series.tx_counts(),
        }
    return {
        "version": FORMAT_VERSION,
        "name": dataset.name,
        "blocks": [_encode_block(block) for block in dataset.chain],
        "snapshots": [_encode_snapshot(s) for s in dataset.snapshots],
        "tx_records": [_encode_record(r) for r in dataset.tx_records.values()],
        "block_pools": {str(h): p for h, p in dataset.block_pools.items()},
        "pool_wallets": {
            pool: sorted(wallets) for pool, wallets in dataset.pool_wallets.items()
        },
        "size_series": size_series,
        "metadata": dataset.metadata,
    }


def dataset_from_dict(payload: dict) -> Dataset:
    """Decode a dataset; chain linkage is re-validated on the way in."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version}")
    chain = Blockchain()
    for block_payload in payload["blocks"]:
        chain.append(_decode_block(block_payload, chain.tip_hash))
    snapshots = SnapshotStore(
        _decode_snapshot(s) for s in payload["snapshots"]
    )
    records = {}
    for record_payload in payload["tx_records"]:
        record = _decode_record(record_payload)
        records[record.txid] = record
    size_series = None
    if payload.get("size_series") is not None:
        raw = payload["size_series"]
        size_series = SizeSeries(
            times=raw["times"], vsizes=raw["vsizes"], tx_counts=raw.get("tx_counts")
        )
    return Dataset(
        name=payload["name"],
        chain=chain,
        snapshots=snapshots,
        tx_records=records,
        block_pools={int(h): p for h, p in payload["block_pools"].items()},
        pool_wallets={
            pool: frozenset(wallets)
            for pool, wallets in payload.get("pool_wallets", {}).items()
        },
        size_series=size_series,
        metadata=payload.get("metadata", {}),
    )


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Atomically write a dataset to ``path`` as gzip-compressed JSON.

    The document is staged at ``<path>.tmp`` and renamed into place, so
    readers never see a half-written file.  ``mtime=0`` in the gzip
    header makes the output a pure function of the dataset contents.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(dataset_to_dict(dataset), separators=(",", ":"))
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as raw:
            with gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as handle:
                handle.write(text.encode("utf-8"))
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises :class:`DatasetCorruptionError` (with path and, for JSON
    syntax errors, the character offset) on truncated gzip streams,
    malformed JSON, or structurally invalid documents — and plain
    :class:`FileNotFoundError` when the file is simply absent.
    """
    path = Path(path)
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise
    except json.JSONDecodeError as exc:
        raise DatasetCorruptionError(path, exc.msg, offset=exc.pos) from exc
    except (EOFError, OSError, ValueError, UnicodeDecodeError, zlib.error) as exc:
        raise DatasetCorruptionError(path, str(exc)) from exc
    try:
        return dataset_from_dict(payload)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise DatasetCorruptionError(path, f"invalid structure: {exc!r}") from exc


def dataset_path(directory: Union[str, Path], name: str, seed: int) -> Path:
    """Canonical cache path for a (scenario, seed) pair."""
    return Path(directory) / f"{name}-seed{seed}.json.gz"


def load_if_exists(path: Union[str, Path]) -> Optional[Dataset]:
    """Load a dataset if the file exists, else None."""
    path = Path(path)
    if not path.exists():
        return None
    return load_dataset(path)
