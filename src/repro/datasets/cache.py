"""Content-addressed persistent dataset cache.

The paper's pipeline (§3) separates one-time data collection from the
repeated analyses that consume it; this module gives the reproduction
the same split.  Simulated datasets are expensive to build but are pure
functions of *(builder, scale, seed, dataset-schema version)* — so that
tuple is the cache key, hashed into a content address, and the built
dataset is persisted under it with the atomic deterministic writer from
:mod:`repro.datasets.io`.  Warm runs skip simulation entirely.

Concurrency: parallel experiment workers may want the same dataset at
the same time.  A sidecar *lockfile* (``O_CREAT | O_EXCL``) elects the
first builder; everyone else polls until the artifact appears and loads
it, so each dataset is simulated at most once per cache directory no
matter how many processes race.  Because :func:`~repro.datasets.io.save_dataset`
renames the finished file into place, a waiter never observes a
half-written dataset.

Each entry is a *pair* of files: the columnar, memory-mappable npz
sidecar (the hot path ``ChainArrays`` loads zero-copy) written first,
and the gzip-JSON interchange artifact written last as the completion
marker.  Loads prefer the sidecar; a torn or truncated sidecar is
evicted and re-healed from the interchange file transparently.

Corrupt cache entries (truncated files, stale schema) are treated as
misses and rebuilt, never propagated.

Stale locks: the elected builder records its PID in the lockfile.  A
waiter that can *prove* the recorded holder is dead (the PID parses and
``kill -0`` reports no such process) reclaims the lock after a bounded
grace period and re-elects, instead of burning the whole lock timeout.
Locks whose content does not parse as a PID are never reclaimed — the
holder may be a foreign writer we cannot reason about — so the old
timeout-then-build-locally fallback still backstops correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from .. import obs
from .columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnStore,
    columnar_sidecar,
    load_columnar,
    save_columnar,
)
from .dataset import Dataset
from .io import FORMAT_VERSION, DatasetCorruptionError, load_dataset, save_dataset

#: Default on-disk location, overridable via ``REPRO_AUDIT_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_AUDIT_CACHE_DIR", "~/.cache/repro-audit")
).expanduser()

#: How long a waiter polls for another process's build before giving up
#: and building locally (seconds).
DEFAULT_LOCK_TIMEOUT = 900.0

#: Poll cadence while waiting on another builder (seconds).
DEFAULT_POLL_INTERVAL = 0.05

#: How long a lock naming a *dead* PID must stay dead before a waiter
#: reclaims it (seconds).  The grace bounds the damage of PID reuse and
#: of observing a lock mid-write.
DEFAULT_STALE_LOCK_GRACE = 1.0


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached dataset: the inputs that determine it.

    Both format versions participate: ``schema_version`` pins the
    gzip-JSON interchange layout and ``columnar_version`` pins the npz
    sidecar layout.  An entry is the *pair* of files, so a bump to
    either version must miss — otherwise a new reader could stale-hit
    (and mmap garbage out of) a sidecar written by an older writer.
    """

    builder: str
    scale: float
    seed: int
    schema_version: int = FORMAT_VERSION
    columnar_version: int = COLUMNAR_FORMAT_VERSION

    def digest(self) -> str:
        """Content address: a stable hash of the key tuple."""
        payload = json.dumps(
            [
                self.builder,
                repr(float(self.scale)),
                int(self.seed),
                int(self.schema_version),
                int(self.columnar_version),
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def filename(self) -> str:
        """Cache file name: human-readable prefix + content address."""
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", self.builder)
        return (
            f"{safe}-scale{float(self.scale):g}-seed{self.seed}"
            f"-v{self.schema_version}.{self.columnar_version}"
            f"-{self.digest()}.json.gz"
        )


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    lock_waits: int = 0
    evictions: int = 0
    stale_reclaims: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            builds=self.builds,
            lock_waits=self.lock_waits,
            evictions=self.evictions,
            stale_reclaims=self.stale_reclaims,
        )

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            builds=self.builds - before.builds,
            lock_waits=self.lock_waits - before.lock_waits,
            evictions=self.evictions - before.evictions,
            stale_reclaims=self.stale_reclaims - before.stale_reclaims,
        )

    def summary(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.builds} build(s)"
        )


class DatasetCache:
    """On-disk dataset store keyed by :class:`CacheKey`.

    ``get_or_build`` is the whole API surface most callers need: it
    returns the cached dataset when present, otherwise elects a builder
    via the lockfile protocol and persists the result.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        stale_lock_grace: float = DEFAULT_STALE_LOCK_GRACE,
    ) -> None:
        self.directory = Path(directory or DEFAULT_CACHE_DIR).expanduser()
        self.lock_timeout = lock_timeout
        self.poll_interval = poll_interval
        self.stale_lock_grace = stale_lock_grace
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatasetCache({str(self.directory)!r})"

    def path_for(self, key: CacheKey) -> Path:
        return self.directory / key.filename()

    def _evict(self, path: Path) -> None:
        """Drop one corrupt file; a corrupt entry is a miss, not an error."""
        self.stats.evictions += 1
        obs.counter("cache.evictions")
        try:
            path.unlink()
        except OSError:
            pass

    def _write_sidecar(self, dataset: Dataset, sidecar: Path) -> None:
        """Write (or re-heal) the columnar sidecar and attach its store.

        Datasets the columnar writer refuses — e.g. float-typed values
        in integer columns, which could not round-trip byte-identically
        — stay gzip-only; the interchange file remains authoritative.
        """
        try:
            save_columnar(dataset, sidecar)
        except (ValueError, OverflowError, OSError):
            obs.counter("cache.sidecar_skipped")
            return
        try:
            store = ColumnStore(sidecar)
            if store.matches(dataset):
                dataset.columnar = store
        except (DatasetCorruptionError, OSError):
            pass

    def _load(self, path: Path) -> Optional[Dataset]:
        """Load the entry at ``path`` if valid; evict what is corrupt.

        The gzip-JSON artifact is the entry's *completion marker* (it is
        written last), so its absence is a miss even when a sidecar
        exists.  A present entry loads through the memory-mapped sidecar
        when possible; a torn or truncated sidecar is evicted and the
        entry falls back to the gzip interchange, which also re-heals
        the sidecar for the next load.  Only when both files are
        unreadable does the entry count as gone.
        """
        if not path.exists():
            return None
        sidecar = columnar_sidecar(path)
        if sidecar.exists():
            try:
                return load_columnar(sidecar)
            except DatasetCorruptionError:
                self._evict(sidecar)
        try:
            dataset = load_dataset(path)
        except DatasetCorruptionError:
            self._evict(path)
            if sidecar.exists():
                # Without its completion marker the sidecar is dead
                # weight; drop it so the entry rebuilds cleanly.
                try:
                    sidecar.unlink()
                except OSError:
                    pass
            return None
        self._write_sidecar(dataset, sidecar)
        return dataset

    def load(self, key: CacheKey) -> Optional[Dataset]:
        """The cached dataset for ``key``, or None on a miss."""
        dataset = self._load(self.path_for(key))
        if dataset is None:
            self.stats.misses += 1
            obs.counter("cache.misses")
        else:
            self.stats.hits += 1
            obs.counter("cache.hits")
        return dataset

    def store(self, key: CacheKey, dataset: Dataset) -> Path:
        """Persist ``dataset`` under ``key`` (atomic, deterministic).

        The columnar sidecar goes down first, the gzip-JSON interchange
        last: waiters in the lockfile protocol treat the gzip artifact
        as the completion marker, so no process can observe an entry
        whose sidecar is still missing or half-written.
        """
        path = self.path_for(key)
        self._write_sidecar(dataset, columnar_sidecar(path))
        return save_dataset(dataset, path)

    def get_or_build(
        self, key: CacheKey, build: Callable[[], Dataset]
    ) -> Dataset:
        """Fetch ``key`` from disk, or build-and-store it exactly once.

        When several processes ask for the same key concurrently, the
        first to create the sidecar lockfile simulates; the rest wait
        for the artifact and load it.  If the elected builder dies (its
        lock disappears without an artifact) a waiter takes over; if
        the wait times out the caller builds locally — correctness is
        never contingent on the lock.
        """
        path = self.path_for(key)
        dataset = self._load(path)
        if dataset is not None:
            self.stats.hits += 1
            obs.counter("cache.hits")
            return dataset
        self.stats.misses += 1
        obs.counter("cache.misses")
        self.directory.mkdir(parents=True, exist_ok=True)
        lock = path.with_name(path.name + ".lock")
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                waited = self._wait_for_builder(path, lock, deadline)
                if waited is not None:
                    self.stats.lock_waits += 1
                    self.stats.hits += 1
                    obs.counter("cache.lock_waits")
                    obs.counter("cache.hits")
                    return waited
                if time.monotonic() >= deadline:
                    # Lock holder is stuck; build locally without it.
                    self.stats.builds += 1
                    obs.counter("cache.builds")
                    with obs.span("cache.build"):
                        dataset = build()
                    self.store(key, dataset)
                    return dataset
                continue  # lock vanished without an artifact: re-elect
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            try:
                # Re-check: the artifact may have landed between our
                # miss and winning the lock.
                dataset = self._load(path)
                if dataset is not None:
                    self.stats.hits += 1
                    obs.counter("cache.hits")
                    return dataset
                self.stats.builds += 1
                obs.counter("cache.builds")
                with obs.span("cache.build"):
                    dataset = build()
                self.store(key, dataset)
                return dataset
            finally:
                try:
                    lock.unlink()
                except FileNotFoundError:
                    pass

    def _wait_for_builder(
        self, path: Path, lock: Path, deadline: float
    ) -> Optional[Dataset]:
        """Poll until the elected builder's artifact appears.

        Returns the loaded dataset, or None when the lock disappeared
        without an artifact (builder died) or the deadline passed.

        A lock whose recorded PID is verifiably dead is *reclaimed*
        (unlinked) once it has stayed dead for ``stale_lock_grace``
        seconds, so a crashed builder costs one grace period instead of
        the full lock timeout.  Unparseable lock content is left alone.
        """
        stale_since: Optional[float] = None
        while time.monotonic() < deadline:
            if path.exists():
                dataset = self._load(path)
                if dataset is not None:
                    return dataset
            if not lock.exists():
                # Builder exited.  One final check for its artifact.
                dataset = self._load(path)
                return dataset
            if self._lock_holder_dead(lock):
                if stale_since is None:
                    stale_since = time.monotonic()
                elif time.monotonic() - stale_since >= self.stale_lock_grace:
                    # Holder stayed dead for the whole grace: reclaim.
                    try:
                        lock.unlink()
                    except FileNotFoundError:
                        pass  # another waiter reclaimed it first
                    self.stats.stale_reclaims += 1
                    obs.counter("cache.stale_reclaims")
                    return self._load(path)
            else:
                stale_since = None
            time.sleep(self.poll_interval)
        return None

    @staticmethod
    def _lock_holder_dead(lock: Path) -> bool:
        """True only when the lock names a PID that provably no longer runs.

        Anything ambiguous — unreadable lock, non-numeric content, a
        live process, or one we lack permission to signal — counts as
        alive, so reclamation can never steal a lock from a holder that
        might still finish.
        """
        try:
            text = lock.read_text().strip()
        except OSError:
            return False
        if not text.isdigit():
            return False
        pid = int(text)
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # exists under another uid: alive
        except OSError:
            return False
        return False

    def clear(self) -> int:
        """Delete every cache entry (and stray lock); returns the count."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in self.directory.iterdir():
            if (
                entry.suffix == ".lock"
                or entry.name.endswith(".json.gz")
                or entry.name.endswith(".npz")
            ):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
