"""Columnar, memory-mappable dataset persistence (the hot-path format).

The gzip-JSON writer in :mod:`repro.datasets.io` stays the *interchange*
format — human-auditable, schema-versioned, diffable.  This module adds
the format the analyses actually load: an **uncompressed npz** holding
one typed array per record column, written atomically next to the
gzip-JSON artifact.  Because members are stored (never deflated) at
known offsets, every column can be memory-mapped directly out of the
zip, so :class:`~repro.core.vectorized.ChainArrays` builds from disk
without re-deriving anything from the object graph.

Layout (all members are plain ``.npy`` arrays; the file opens with
vanilla ``np.load`` too):

* ``manifest`` — a JSON document (uint8 bytes) carrying the format
  versions, the dataset name/metadata, element counts, string
  vocabularies, and the ragged-column bookkeeping;
* per-block columns (``block_*``) plus ``block_tx_start`` offsets into
  the chain-transaction columns;
* per-chain-transaction columns (``ctx_*``) with ragged input/output
  columns behind ``ctx_in_start`` / ``ctx_out_start``, and the
  precomputed CPFP flags the position analyses filter on;
* snapshot (``snap_*``/``stx_*``), tx-record (``rec_*``), pool
  attribution (``block_pool_*``) and size-series (``ss_*``) columns.

Contract (tests/test_columnar.py, tests/test_columnar_property.py):
``load_columnar(save_columnar(ds))`` serialises to **byte-identical**
gzip-JSON interchange — dict insertion orders, int-vs-float JSON typing
and optional fields all survive.  The integer-typed entries of float
columns are listed in the manifest so ``1`` never comes back as ``1.0``.

Robustness mirrors the gzip reader: truncated, torn, or otherwise
undecodable files raise :class:`~repro.datasets.io.DatasetCorruptionError`
with the byte offset where the reader stopped, and writes go through a
``.tmp`` + fsync + rename so a crash mid-write never leaves a partial
artifact at the final path.
"""

from __future__ import annotations

import io as _io
import json
import os
import struct
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..chain.block import Block, build_block
from ..chain.blockchain import Blockchain
from ..chain.transaction import (
    CoinbaseTransaction,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from ..mempool.ancestry import find_cpfp_parent_txids, find_cpfp_txids
from ..mempool.snapshots import (
    MempoolSnapshot,
    SizeSeries,
    SnapshotStore,
    SnapshotTx,
)
from .dataset import Dataset
from .io import FORMAT_VERSION, DatasetCorruptionError
from .records import TxRecord

#: Version of the columnar layout.  Part of every dataset-cache key
#: (alongside the interchange ``FORMAT_VERSION``), so a layout change
#: can never stale-hit entries written by an older writer.
COLUMNAR_FORMAT_VERSION = 1

#: File suffix of the columnar sidecar.
COLUMNAR_SUFFIX = ".npz"

#: Interchange suffix the sidecar sits next to.
_INTERCHANGE_SUFFIX = ".json.gz"

#: Fixed member order (determinism) — the manifest first, then every
#: column.  A missing member is corruption, an unknown one is tolerated
#: (forward compatibility within a columnar version).
_MEMBER_ORDER = (
    "manifest",
    "block_height",
    "block_timestamp",
    "block_hash",
    "block_cb_address",
    "block_cb_value",
    "block_cb_marker",
    "block_cb_vsize",
    "block_tx_start",
    "ctx_txid",
    "ctx_fee",
    "ctx_vsize",
    "ctx_nonce",
    "ctx_cpfp_child",
    "ctx_cpfp_parent",
    "ctx_in_start",
    "ctx_out_start",
    "in_txid",
    "in_index",
    "out_address",
    "out_value",
    "snap_time",
    "snap_start",
    "stx_txid",
    "stx_arrival",
    "stx_fee",
    "stx_vsize",
    "rec_txid",
    "rec_broadcast",
    "rec_arrival",
    "rec_has_arrival",
    "rec_fee",
    "rec_vsize",
    "rec_commit_height",
    "rec_commit_position",
    "rec_label_start",
    "rec_label_id",
    "block_pool_height",
    "block_pool_id",
    "ss_time",
    "ss_vsize",
    "ss_count",
)

#: Sentinel for absent optional ints (commit height/position are >= 0).
_NULL_INT = -1


def columnar_sidecar(path: Union[str, Path]) -> Path:
    """The columnar twin of a gzip-JSON interchange path."""
    path = Path(path)
    name = path.name
    if name.endswith(_INTERCHANGE_SUFFIX):
        name = name[: -len(_INTERCHANGE_SUFFIX)]
    return path.with_name(name + COLUMNAR_SUFFIX)


# ----------------------------------------------------------------------
# Pre-grown column buffers
# ----------------------------------------------------------------------
class ColumnBuffer:
    """A typed append-only buffer that grows geometrically.

    Dataset construction streams block-by-block into these instead of
    materialising intermediate Python lists: each append writes straight
    into a preallocated numpy array, doubled when full.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, capacity: int = 1024) -> None:
        self._data = np.empty(max(capacity, 1), dtype=np.dtype(dtype))
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, needed: int) -> None:
        capacity = len(self._data)
        if needed <= capacity:
            return
        grown = np.empty(max(needed, 2 * capacity), dtype=self._data.dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, value) -> None:
        self._reserve(self._size + 1)
        self._data[self._size] = value
        self._size += 1

    def finish(self) -> np.ndarray:
        """The compacted column (a copy; the buffer stays reusable)."""
        return self._data[: self._size].copy()


class _IntColumn(ColumnBuffer):
    """int64 column; rejects anything that is not a plain Python int.

    The interchange JSON distinguishes ``1`` from ``1.0`` and ``true``;
    an int column silently coercing either would break byte identity,
    so the writer refuses such datasets (the gzip interchange remains
    their only format).
    """

    def __init__(self, capacity: int = 1024) -> None:
        super().__init__(np.int64, capacity)

    def append(self, value) -> None:
        if type(value) is not int:
            raise ValueError(
                f"expected a plain int, got {type(value).__name__}: {value!r}"
            )
        super().append(value)


class _FloatColumn(ColumnBuffer):
    """float64 column that remembers which entries were typed as ints.

    JSON distinguishes ``5`` from ``5.0``; the indices of int-typed
    entries land in the manifest so decoding restores the exact type.
    """

    __slots__ = ("int_indices",)

    def __init__(self, capacity: int = 1024) -> None:
        super().__init__(np.float64, capacity)
        self.int_indices: list[int] = []

    def append(self, value) -> None:
        kind = type(value)
        if kind is int:
            self.int_indices.append(self._size)
        elif kind is not float:
            raise ValueError(
                f"expected int or float, got {type(value).__name__}: {value!r}"
            )
        super().append(value)


class _StringColumn(ColumnBuffer):
    """Fixed-width unicode column that re-widens as longer values arrive."""

    def __init__(self, width: int = 8, capacity: int = 1024) -> None:
        super().__init__(f"<U{max(width, 1)}", capacity)

    def append(self, value) -> None:
        if not isinstance(value, str):
            raise ValueError(
                f"expected str, got {type(value).__name__}: {value!r}"
            )
        width = self._data.dtype.itemsize // 4
        if len(value) > width:
            wide = np.empty(
                len(self._data), dtype=f"<U{max(len(value), 2 * width)}"
            )
            wide[: self._size] = self._data[: self._size]
            self._data = wide
        super().append(value)


class _BoolColumn(ColumnBuffer):
    def __init__(self, capacity: int = 1024) -> None:
        super().__init__(np.bool_, capacity)


# ----------------------------------------------------------------------
# Streaming writer
# ----------------------------------------------------------------------
class DatasetColumnWriter:
    """Streams one dataset, part by part, into pre-grown column buffers.

    Call ``add_block`` / ``add_snapshot`` / ``add_record`` as the pieces
    become available (blocks must arrive in chain order, records in
    their dict insertion order), then the ``set_*`` setters, then
    :meth:`save`.  Nothing is ever materialised twice: per-item rows go
    straight into typed buffers.
    """

    def __init__(self, name: str) -> None:
        self.name = str(name)
        # per block
        self._block_height = _IntColumn(256)
        self._block_timestamp = _FloatColumn(256)
        self._block_hash = _StringColumn(64, 256)
        self._cb_address = _StringColumn(16, 256)
        self._cb_value = _IntColumn(256)
        self._cb_marker = _StringColumn(8, 256)
        self._cb_vsize = _IntColumn(256)
        self._block_tx_start = ColumnBuffer(np.int64, 256)
        # per chain transaction
        self._ctx_txid = _StringColumn(64, 4096)
        self._ctx_fee = _IntColumn(4096)
        self._ctx_vsize = _IntColumn(4096)
        self._ctx_nonce = _IntColumn(4096)
        self._ctx_cpfp_child = _BoolColumn(4096)
        self._ctx_cpfp_parent = _BoolColumn(4096)
        self._ctx_in_start = ColumnBuffer(np.int64, 4096)
        self._ctx_out_start = ColumnBuffer(np.int64, 4096)
        self._in_txid = _StringColumn(64, 4096)
        self._in_index = _IntColumn(4096)
        self._out_address = _StringColumn(16, 4096)
        self._out_value = _IntColumn(4096)
        # snapshots
        self._snap_time = _FloatColumn(256)
        self._snap_start = ColumnBuffer(np.int64, 256)
        self._stx_txid = _StringColumn(64, 4096)
        self._stx_arrival = _FloatColumn(4096)
        self._stx_fee = _IntColumn(4096)
        self._stx_vsize = _IntColumn(4096)
        # tx records
        self._rec_txid = _StringColumn(64, 4096)
        self._rec_broadcast = _FloatColumn(4096)
        self._rec_arrival = _FloatColumn(4096)
        self._rec_has_arrival = _BoolColumn(4096)
        self._rec_fee = _IntColumn(4096)
        self._rec_vsize = _IntColumn(4096)
        self._rec_commit_height = _IntColumn(4096)
        self._rec_commit_position = _IntColumn(4096)
        self._rec_label_start = ColumnBuffer(np.int64, 4096)
        self._rec_label_id = ColumnBuffer(np.int64, 1024)
        self._label_ids: dict[str, int] = {}
        # attribution / series / metadata
        self._pool_vocab: dict[str, int] = {}
        self._bp_height = _IntColumn(256)
        self._bp_pool = ColumnBuffer(np.int64, 256)
        self._pool_wallets: dict[str, list[str]] = {}
        self._ss_time = _FloatColumn(256)
        self._ss_vsize = _IntColumn(256)
        self._ss_count = _IntColumn(256)
        self._has_size_series = False
        self._has_tx_counts = False
        self._metadata: dict = {}
        self._block_tx_start.append(0)
        self._ctx_in_start.append(0)
        self._ctx_out_start.append(0)
        self._snap_start.append(0)
        self._rec_label_start.append(0)

    # -- streamed parts -------------------------------------------------
    def add_block(self, block: Block) -> None:
        coinbase = block.coinbase
        self._block_height.append(block.height)
        self._block_timestamp.append(block.timestamp)
        self._block_hash.append(block.block_hash)
        self._cb_address.append(coinbase.outputs[0].address)
        self._cb_value.append(coinbase.outputs[0].value)
        self._cb_marker.append(coinbase.marker)
        self._cb_vsize.append(coinbase.vsize)
        children = find_cpfp_txids(block)
        parents = find_cpfp_parent_txids(block)
        for tx in block.transactions:
            self._ctx_txid.append(tx.txid)
            self._ctx_fee.append(tx.fee)
            self._ctx_vsize.append(tx.vsize)
            self._ctx_nonce.append(tx.nonce)
            self._ctx_cpfp_child.append(tx.txid in children)
            self._ctx_cpfp_parent.append(tx.txid in parents)
            for txin in tx.inputs:
                self._in_txid.append(txin.prevout.txid)
                self._in_index.append(txin.prevout.index)
            self._ctx_in_start.append(len(self._in_txid))
            for txout in tx.outputs:
                self._out_address.append(txout.address)
                self._out_value.append(txout.value)
            self._ctx_out_start.append(len(self._out_address))
        self._block_tx_start.append(len(self._ctx_txid))

    def add_snapshot(self, snapshot: MempoolSnapshot) -> None:
        self._snap_time.append(snapshot.time)
        for tx in snapshot.txs:
            self._stx_txid.append(tx.txid)
            self._stx_arrival.append(tx.arrival_time)
            self._stx_fee.append(tx.fee)
            self._stx_vsize.append(tx.vsize)
        self._snap_start.append(len(self._stx_txid))

    def add_record(self, record: TxRecord) -> None:
        self._rec_txid.append(record.txid)
        self._rec_broadcast.append(record.broadcast_time)
        if record.observer_arrival is None:
            self._rec_has_arrival.append(False)
            # Placeholder keeps the column aligned without touching the
            # int-typed bookkeeping.
            ColumnBuffer.append(self._rec_arrival, 0.0)
        else:
            self._rec_has_arrival.append(True)
            self._rec_arrival.append(record.observer_arrival)
        self._rec_fee.append(record.fee)
        self._rec_vsize.append(record.vsize)
        self._rec_commit_height.append(
            _NULL_INT if record.commit_height is None else record.commit_height
        )
        self._rec_commit_position.append(
            _NULL_INT
            if record.commit_position is None
            else record.commit_position
        )
        for label in sorted(record.labels):
            if not isinstance(label, str):
                raise ValueError(f"labels must be strings, got {label!r}")
            self._rec_label_id.append(
                self._label_ids.setdefault(label, len(self._label_ids))
            )
        self._rec_label_start.append(len(self._rec_label_id))

    # -- whole-dataset attributes ---------------------------------------
    def set_block_pools(self, block_pools: dict) -> None:
        for height, pool in block_pools.items():
            if type(height) is not int or not isinstance(pool, str):
                raise ValueError(
                    f"block_pools must map int -> str, got {height!r}: {pool!r}"
                )
            self._bp_height.append(height)
            self._bp_pool.append(
                self._pool_vocab.setdefault(pool, len(self._pool_vocab))
            )

    def set_pool_wallets(self, pool_wallets: dict) -> None:
        self._pool_wallets = {
            str(pool): sorted(str(w) for w in wallets)
            for pool, wallets in pool_wallets.items()
        }

    def set_size_series(self, series: Optional[SizeSeries]) -> None:
        if series is None:
            return
        self._has_size_series = True
        counts = series.tx_counts()
        self._has_tx_counts = counts is not None
        for time in series.times:
            self._ss_time.append(time)
        for vsize in series.sizes():
            self._ss_vsize.append(vsize)
        for count in counts or ():
            self._ss_count.append(count)

    def set_metadata(self, metadata: dict) -> None:
        self._metadata = metadata

    # -- finish ---------------------------------------------------------
    def _finish_labels(self) -> tuple[list[str], np.ndarray]:
        """Sorted label vocabulary + per-record ids remapped onto it.

        Ids were assigned by first appearance while streaming; the
        stored vocabulary is sorted, so ids are remapped and re-sorted
        *within* each record's segment (segments are contiguous, so a
        segment-major lexsort leaves the offsets valid).
        """
        vocab = sorted(self._label_ids)
        ids = self._rec_label_id.finish()
        if not len(ids):
            return vocab, ids
        remap = np.empty(len(vocab), dtype=np.int64)
        for new_id, label in enumerate(vocab):
            remap[self._label_ids[label]] = new_id
        ids = remap[ids]
        starts = self._rec_label_start.finish()
        segment = np.searchsorted(starts, np.arange(len(ids)), side="right")
        order = np.lexsort((ids, segment))
        return vocab, ids[order]

    def arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """(column arrays, manifest) ready for :func:`_write_npz`."""
        label_vocab, label_ids = self._finish_labels()
        int_typed = {
            name: column.int_indices
            for name, column in (
                ("block_timestamp", self._block_timestamp),
                ("snap_time", self._snap_time),
                ("stx_arrival", self._stx_arrival),
                ("rec_broadcast", self._rec_broadcast),
                ("rec_arrival", self._rec_arrival),
                ("ss_time", self._ss_time),
            )
            if column.int_indices
        }
        manifest = {
            "columnar_version": COLUMNAR_FORMAT_VERSION,
            "schema_version": FORMAT_VERSION,
            "name": self.name,
            "counts": {
                "blocks": len(self._block_height),
                "chain_txs": len(self._ctx_txid),
                "inputs": len(self._in_txid),
                "outputs": len(self._out_address),
                "snapshots": len(self._snap_time),
                "snapshot_txs": len(self._stx_txid),
                "records": len(self._rec_txid),
                "labels": len(label_ids),
                "block_pools": len(self._bp_height),
                "size_points": len(self._ss_time),
            },
            "pool_vocab": list(self._pool_vocab),
            "pool_wallets": self._pool_wallets,
            "label_vocab": label_vocab,
            "has_size_series": self._has_size_series,
            "has_tx_counts": self._has_tx_counts,
            "int_typed": int_typed,
            "metadata": self._metadata,
        }
        columns = {
            "block_height": self._block_height.finish(),
            "block_timestamp": self._block_timestamp.finish(),
            "block_hash": self._block_hash.finish(),
            "block_cb_address": self._cb_address.finish(),
            "block_cb_value": self._cb_value.finish(),
            "block_cb_marker": self._cb_marker.finish(),
            "block_cb_vsize": self._cb_vsize.finish(),
            "block_tx_start": self._block_tx_start.finish(),
            "ctx_txid": self._ctx_txid.finish(),
            "ctx_fee": self._ctx_fee.finish(),
            "ctx_vsize": self._ctx_vsize.finish(),
            "ctx_nonce": self._ctx_nonce.finish(),
            "ctx_cpfp_child": self._ctx_cpfp_child.finish(),
            "ctx_cpfp_parent": self._ctx_cpfp_parent.finish(),
            "ctx_in_start": self._ctx_in_start.finish(),
            "ctx_out_start": self._ctx_out_start.finish(),
            "in_txid": self._in_txid.finish(),
            "in_index": self._in_index.finish(),
            "out_address": self._out_address.finish(),
            "out_value": self._out_value.finish(),
            "snap_time": self._snap_time.finish(),
            "snap_start": self._snap_start.finish(),
            "stx_txid": self._stx_txid.finish(),
            "stx_arrival": self._stx_arrival.finish(),
            "stx_fee": self._stx_fee.finish(),
            "stx_vsize": self._stx_vsize.finish(),
            "rec_txid": self._rec_txid.finish(),
            "rec_broadcast": self._rec_broadcast.finish(),
            "rec_arrival": self._rec_arrival.finish(),
            "rec_has_arrival": self._rec_has_arrival.finish(),
            "rec_fee": self._rec_fee.finish(),
            "rec_vsize": self._rec_vsize.finish(),
            "rec_commit_height": self._rec_commit_height.finish(),
            "rec_commit_position": self._rec_commit_position.finish(),
            "rec_label_start": self._rec_label_start.finish(),
            "rec_label_id": label_ids,
            "block_pool_height": self._bp_height.finish(),
            "block_pool_id": self._bp_pool.finish(),
            "ss_time": self._ss_time.finish(),
            "ss_vsize": self._ss_vsize.finish(),
            "ss_count": self._ss_count.finish(),
        }
        return columns, manifest

    def save(self, path: Union[str, Path]) -> Path:
        columns, manifest = self.arrays()
        return _write_npz(path, columns, manifest)


def save_columnar(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Atomically write ``dataset`` as a columnar npz.

    Deterministic like the gzip writer: fixed member order, fixed zip
    timestamps, stored (uncompressed) members — the same dataset always
    produces the same bytes, and every column stays memory-mappable.
    """
    writer = DatasetColumnWriter(dataset.name)
    for block in dataset.chain:
        writer.add_block(block)
    for snapshot in dataset.snapshots:
        writer.add_snapshot(snapshot)
    for record in dataset.tx_records.values():
        writer.add_record(record)
    writer.set_block_pools(dataset.block_pools)
    writer.set_pool_wallets(dataset.pool_wallets)
    writer.set_size_series(dataset.size_series)
    writer.set_metadata(dataset.metadata)
    return writer.save(path)


def _write_npz(
    path: Union[str, Path], columns: dict[str, np.ndarray], manifest: dict
) -> Path:
    """Write a deterministic, uncompressed, atomically-replaced npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest_bytes = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
    members: dict[str, np.ndarray] = {
        "manifest": np.frombuffer(manifest_bytes, dtype=np.uint8)
    }
    members.update(columns)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            with zipfile.ZipFile(handle, "w", zipfile.ZIP_STORED) as archive:
                for name in _MEMBER_ORDER:
                    buffer = _io.BytesIO()
                    np.lib.format.write_array(
                        buffer,
                        np.ascontiguousarray(members[name]),
                        allow_pickle=False,
                    )
                    info = zipfile.ZipInfo(
                        name + ".npy", date_time=(1980, 1, 1, 0, 0, 0)
                    )
                    info.compress_type = zipfile.ZIP_STORED
                    info.external_attr = 0o600 << 16
                    archive.writestr(info, buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


# ----------------------------------------------------------------------
# Zero-copy reader
# ----------------------------------------------------------------------
#: Local zip header layout: magic(4) .. name_len@26(2) extra_len@28(2).
_LOCAL_HEADER_SIZE = 30
_LOCAL_MAGIC = b"PK\x03\x04"


class ColumnStore:
    """Memory-mapped view over one columnar dataset file.

    Opening parses the zip directory and every member's npy header but
    maps **no** data; columns materialise lazily as ``np.memmap`` views
    on first access (``store["ctx_fee"]``), so touching two columns of
    a multi-gigabyte dataset reads two columns, not the file.

    Pickling carries only the path; a worker process re-opens (and
    re-validates) lazily on first access.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._members: Optional[dict[str, tuple[np.dtype, tuple, int]]] = None
        self.manifest: Optional[dict] = None
        self._cache: dict[str, np.ndarray] = {}
        self._open()

    # -- pickling: path only, reopen lazily -----------------------------
    def __getstate__(self) -> dict:
        return {"path": str(self.path)}

    def __setstate__(self, state: dict) -> None:
        self.path = Path(state["path"])
        self._members = None
        self.manifest = None
        self._cache = {}

    def _ensure_open(self) -> None:
        if self._members is None:
            self._open()

    def _open(self) -> None:
        path = self.path
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            raise
        members: dict[str, tuple[np.dtype, tuple, int]] = {}
        try:
            with open(path, "rb") as handle:
                with zipfile.ZipFile(handle) as archive:
                    infos = {
                        info.filename: info for info in archive.infolist()
                    }
                for name in _MEMBER_ORDER:
                    info = infos.get(name + ".npy")
                    if info is None:
                        raise DatasetCorruptionError(
                            path, f"missing column {name!r}", offset=size
                        )
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise DatasetCorruptionError(
                            path,
                            f"column {name!r} is compressed (not mappable)",
                            offset=info.header_offset,
                        )
                    members[name] = self._member_layout(
                        handle, info, name, size
                    )
        except DatasetCorruptionError:
            raise
        except (zipfile.BadZipFile, struct.error, EOFError, OSError, ValueError) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise DatasetCorruptionError(path, str(exc), offset=size) from exc
        self._members = members
        self.manifest = self._read_manifest()

    def _member_layout(
        self, handle, info: zipfile.ZipInfo, name: str, size: int
    ) -> tuple[np.dtype, tuple, int]:
        """(dtype, shape, absolute data offset) of one stored member."""
        handle.seek(info.header_offset)
        header = handle.read(_LOCAL_HEADER_SIZE)
        if len(header) < _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_MAGIC:
            raise DatasetCorruptionError(
                self.path,
                f"torn local header for column {name!r}",
                offset=info.header_offset,
            )
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        npy_offset = (
            info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len
        )
        handle.seek(npy_offset)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise DatasetCorruptionError(
                self.path,
                f"unsupported npy version {version} for column {name!r}",
                offset=npy_offset,
            )
        if fortran:
            raise DatasetCorruptionError(
                self.path, f"column {name!r} is Fortran-ordered", offset=npy_offset
            )
        data_offset = handle.tell()
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if data_offset + nbytes > size:
            raise DatasetCorruptionError(
                self.path,
                f"column {name!r} truncated "
                f"(needs {data_offset + nbytes} bytes)",
                offset=size,
            )
        return dtype, shape, data_offset

    def _read_manifest(self) -> dict:
        raw = bytes(self["manifest"])
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DatasetCorruptionError(
                self.path, f"undecodable manifest: {exc}"
            ) from exc
        version = manifest.get("columnar_version")
        if version != COLUMNAR_FORMAT_VERSION:
            raise DatasetCorruptionError(
                self.path, f"unsupported columnar version: {version}"
            )
        if manifest.get("schema_version") != FORMAT_VERSION:
            raise DatasetCorruptionError(
                self.path,
                f"unsupported dataset schema: {manifest.get('schema_version')}",
            )
        return manifest

    def __getitem__(self, name: str) -> np.ndarray:
        column = self._cache.get(name)
        if column is not None:
            return column
        self._ensure_open()
        try:
            dtype, shape, offset = self._members[name]
        except KeyError:
            raise KeyError(f"no such column: {name!r}") from None
        if int(np.prod(shape, dtype=np.int64)) == 0:
            column = np.empty(shape, dtype=dtype)
        else:
            try:
                column = np.memmap(
                    self.path, dtype=dtype, mode="r", offset=offset, shape=shape
                )
            except (OSError, ValueError) as exc:
                raise DatasetCorruptionError(
                    self.path, f"cannot map column {name!r}: {exc}", offset=offset
                ) from exc
        self._cache[name] = column
        return column

    # -- conveniences ----------------------------------------------------
    @property
    def counts(self) -> dict:
        self._ensure_open()
        return self.manifest["counts"]

    @property
    def block_count(self) -> int:
        return int(self.counts["blocks"])

    @property
    def chain_tx_count(self) -> int:
        return int(self.counts["chain_txs"])

    @property
    def record_count(self) -> int:
        return int(self.counts["records"])

    @property
    def name(self) -> str:
        self._ensure_open()
        return self.manifest["name"]

    def matches(self, dataset: Dataset) -> bool:
        """Cheap check that this store describes exactly ``dataset``.

        Guards the zero-copy path against derived datasets (degraded
        copies, re-simulations) silently reusing a stale sidecar: name,
        block/record counts and the chain tip hash must all agree.
        """
        try:
            self._ensure_open()
            if self.name != dataset.name:
                return False
            if self.block_count != len(dataset.chain):
                return False
            if self.record_count != len(dataset.tx_records):
                return False
            if self.block_count == 0:
                return True
            return str(self["block_hash"][-1]) == dataset.chain.tip_hash
        except (DatasetCorruptionError, OSError, KeyError, ValueError):
            return False


def open_columns(path: Union[str, Path]) -> ColumnStore:
    """Open (and validate the layout of) a columnar dataset file."""
    return ColumnStore(path)


# ----------------------------------------------------------------------
# Interchange decode (columnar file -> full Dataset)
# ----------------------------------------------------------------------
def _restore_floats(column: np.ndarray, int_indices) -> list:
    """Python floats, with the manifest's int-typed entries restored."""
    values: list = [float(v) for v in column]
    for index in int_indices:
        values[index] = int(values[index])
    return values


def load_columnar(path: Union[str, Path]) -> Dataset:
    """Read a dataset written by :func:`save_columnar`.

    The object graph is rebuilt exactly as the gzip reader builds it —
    through :func:`~repro.chain.block.build_block`, so transaction and
    block hashes re-derive from content and are cross-checked against
    the stored columns; any disagreement (bit rot, torn write) raises
    :class:`DatasetCorruptionError`.  The returned dataset carries the
    open :class:`ColumnStore` on ``dataset.columnar``, which
    :meth:`ChainArrays.from_dataset` uses for zero-copy packing.
    """
    store = ColumnStore(path)
    try:
        dataset = _dataset_from_store(store)
    except DatasetCorruptionError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise DatasetCorruptionError(
            path, f"invalid structure: {exc!r}"
        ) from exc
    dataset.columnar = store
    return dataset


def _dataset_from_store(store: ColumnStore) -> Dataset:
    manifest = store.manifest
    int_typed = manifest.get("int_typed", {})

    def floats(name: str) -> list:
        return _restore_floats(store[name], int_typed.get(name, ()))

    # -- chain ----------------------------------------------------------
    chain = Blockchain()
    heights = store["block_height"]
    timestamps = floats("block_timestamp")
    block_hashes = store["block_hash"]
    cb_address = store["block_cb_address"]
    cb_value = store["block_cb_value"]
    cb_marker = store["block_cb_marker"]
    cb_vsize = store["block_cb_vsize"]
    block_tx_start = store["block_tx_start"]
    ctx_txid = store["ctx_txid"]
    ctx_fee = store["ctx_fee"]
    ctx_vsize = store["ctx_vsize"]
    ctx_nonce = store["ctx_nonce"]
    in_start = store["ctx_in_start"]
    out_start = store["ctx_out_start"]
    in_txid = store["in_txid"]
    in_index = store["in_index"]
    out_address = store["out_address"]
    out_value = store["out_value"]
    for index in range(store.block_count):
        height = int(heights[index])
        coinbase = CoinbaseTransaction(
            inputs=(),
            outputs=(
                TxOutput(str(cb_address[index]), int(cb_value[index])),
            ),
            vsize=int(cb_vsize[index]),
            fee=0,
            nonce=height,
            marker=str(cb_marker[index]),
        )
        transactions = []
        for j in range(int(block_tx_start[index]), int(block_tx_start[index + 1])):
            inputs = tuple(
                TxInput(OutPoint(str(in_txid[k]), int(in_index[k])))
                for k in range(int(in_start[j]), int(in_start[j + 1]))
            )
            outputs = tuple(
                TxOutput(str(out_address[k]), int(out_value[k]))
                for k in range(int(out_start[j]), int(out_start[j + 1]))
            )
            tx = Transaction(
                inputs=inputs,
                outputs=outputs,
                vsize=int(ctx_vsize[j]),
                fee=int(ctx_fee[j]),
                nonce=int(ctx_nonce[j]),
            )
            if tx.txid != str(ctx_txid[j]):
                raise DatasetCorruptionError(
                    store.path,
                    f"txid mismatch at chain index {j} "
                    f"(stored {str(ctx_txid[j])!r})",
                )
            transactions.append(tx)
        block = build_block(
            height=height,
            prev_hash=chain.tip_hash,
            timestamp=timestamps[index],
            coinbase=coinbase,
            transactions=transactions,
        )
        if block.block_hash != str(block_hashes[index]):
            raise DatasetCorruptionError(
                store.path, f"block hash mismatch at height {height}"
            )
        chain.append(block)

    # -- snapshots -------------------------------------------------------
    snap_time = floats("snap_time")
    snap_start = store["snap_start"]
    stx_txid = store["stx_txid"]
    stx_arrival = floats("stx_arrival")
    stx_fee = store["stx_fee"]
    stx_vsize = store["stx_vsize"]
    snapshots = SnapshotStore(
        MempoolSnapshot(
            time=snap_time[index],
            txs=tuple(
                SnapshotTx(
                    txid=str(stx_txid[k]),
                    arrival_time=stx_arrival[k],
                    fee=int(stx_fee[k]),
                    vsize=int(stx_vsize[k]),
                )
                for k in range(int(snap_start[index]), int(snap_start[index + 1]))
            ),
        )
        for index in range(len(snap_time))
    )

    # -- tx records ------------------------------------------------------
    label_vocab = manifest["label_vocab"]
    rec_txid = store["rec_txid"]
    rec_broadcast = floats("rec_broadcast")
    rec_arrival = floats("rec_arrival")
    rec_has_arrival = store["rec_has_arrival"]
    rec_fee = store["rec_fee"]
    rec_vsize = store["rec_vsize"]
    rec_commit_height = store["rec_commit_height"]
    rec_commit_position = store["rec_commit_position"]
    rec_label_start = store["rec_label_start"]
    rec_label_id = store["rec_label_id"]
    records: dict[str, TxRecord] = {}
    for index in range(store.record_count):
        height = int(rec_commit_height[index])
        position = int(rec_commit_position[index])
        record = TxRecord(
            txid=str(rec_txid[index]),
            broadcast_time=rec_broadcast[index],
            observer_arrival=(
                rec_arrival[index] if bool(rec_has_arrival[index]) else None
            ),
            fee=int(rec_fee[index]),
            vsize=int(rec_vsize[index]),
            commit_height=None if height == _NULL_INT else height,
            commit_position=None if position == _NULL_INT else position,
            labels=frozenset(
                label_vocab[int(label)]
                for label in rec_label_id[
                    int(rec_label_start[index]) : int(rec_label_start[index + 1])
                ]
            ),
        )
        records[record.txid] = record

    # -- attribution, series, metadata -----------------------------------
    pool_vocab = manifest["pool_vocab"]
    block_pools = {
        int(height): pool_vocab[int(pool)]
        for height, pool in zip(
            store["block_pool_height"], store["block_pool_id"]
        )
    }
    pool_wallets = {
        pool: frozenset(wallets)
        for pool, wallets in manifest["pool_wallets"].items()
    }
    size_series = None
    if manifest["has_size_series"]:
        tx_counts = None
        if manifest["has_tx_counts"]:
            tx_counts = [int(v) for v in store["ss_count"]]
        size_series = SizeSeries(
            times=floats("ss_time"),
            vsizes=[int(v) for v in store["ss_vsize"]],
            tx_counts=tx_counts,
        )
    return Dataset(
        name=manifest["name"],
        chain=chain,
        snapshots=snapshots,
        tx_records=records,
        block_pools=block_pools,
        pool_wallets=pool_wallets,
        size_series=size_series,
        metadata=manifest["metadata"],
    )


def load_columnar_if_exists(path: Union[str, Path]) -> Optional[Dataset]:
    """Load a columnar dataset if the file exists, else None."""
    path = Path(path)
    if not path.exists():
        return None
    return load_columnar(path)
