"""Curated datasets: records, containers, builders, persistence."""

from .builder import (
    build_dataset,
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
    clear_memory_cache,
    disk_cache_key,
)
from .cache import DEFAULT_CACHE_DIR, CacheKey, CacheStats, DatasetCache
from .dataset import Dataset
from .export import export_csv
from .io import (
    DatasetCorruptionError,
    dataset_from_dict,
    dataset_path,
    dataset_to_dict,
    load_dataset,
    load_if_exists,
    save_dataset,
)
from .records import (
    LABEL_ACCELERATED,
    LABEL_LOW_FEE,
    LABEL_RBF_BUMP,
    LABEL_RBF_ORIGINAL,
    LABEL_SCAM,
    LABEL_SELF_INTEREST,
    LABEL_ZERO_FEE,
    BlockRecord,
    TxRecord,
    label_value,
    make_label,
)

__all__ = [
    "build_dataset",
    "build_dataset_a",
    "build_dataset_b",
    "build_dataset_c",
    "clear_memory_cache",
    "disk_cache_key",
    "DEFAULT_CACHE_DIR",
    "CacheKey",
    "CacheStats",
    "DatasetCache",
    "Dataset",
    "DatasetCorruptionError",
    "export_csv",
    "dataset_from_dict",
    "dataset_path",
    "dataset_to_dict",
    "load_dataset",
    "load_if_exists",
    "save_dataset",
    "LABEL_ACCELERATED",
    "LABEL_LOW_FEE",
    "LABEL_RBF_BUMP",
    "LABEL_RBF_ORIGINAL",
    "LABEL_SCAM",
    "LABEL_SELF_INTEREST",
    "LABEL_ZERO_FEE",
    "BlockRecord",
    "TxRecord",
    "label_value",
    "make_label",
]
