"""Build (and cache) datasets from scenarios.

Scenario runs are deterministic but not free; the builder memoises them
per-process and can persist them through the content-addressed
:class:`~repro.datasets.cache.DatasetCache`, so analyses, tests, and
benchmarks — including concurrent experiment workers — share one build
per (builder, scale, seed, schema-version) key.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..simulation.scenarios import (
    Scenario,
    dataset_a_scenario,
    dataset_b_scenario,
    dataset_c_scenario,
)
from .cache import CacheKey, DatasetCache
from .columnar import columnar_sidecar, load_columnar_if_exists, save_columnar
from .dataset import Dataset
from .io import DatasetCorruptionError, dataset_path, load_if_exists, save_dataset

_MEMORY_CACHE: dict[tuple[str, int, float], Dataset] = {}


def _cache_key(scenario: Scenario) -> tuple[str, int, float]:
    return (scenario.name, scenario.seed, scenario.engine_config.duration)


def disk_cache_key(scenario: Scenario) -> CacheKey:
    """The persistent-cache key of a scenario's dataset."""
    return CacheKey(
        builder=scenario.name, scale=scenario.scale, seed=scenario.seed
    )


def build_dataset(
    scenario: Scenario,
    cache_dir: Optional[Union[str, Path]] = None,
    use_memory_cache: bool = True,
    cache: Optional[DatasetCache] = None,
) -> Dataset:
    """Run ``scenario`` (or fetch a cached result) and return its dataset.

    Lookup order: in-process memo, then the persistent ``cache`` (if
    given), then a fresh simulation whose result is written back to both
    caches.  ``cache_dir`` is the legacy flat layout kept for explicit
    exports; prefer ``cache``, whose keys include scale and schema
    version and whose builds are lockfile-coordinated across processes.
    """
    key = _cache_key(scenario)
    if use_memory_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    if cache is not None:
        dataset = cache.get_or_build(
            disk_cache_key(scenario), lambda: scenario.run().dataset
        )
        if use_memory_cache:
            _MEMORY_CACHE[key] = dataset
        return dataset
    path = None
    if cache_dir is not None:
        path = dataset_path(cache_dir, scenario.name, scenario.seed)
        cached = None
        if path.exists():
            # Prefer the memory-mapped sidecar; a torn one falls back
            # to the gzip artifact (the completion marker).
            try:
                cached = load_columnar_if_exists(columnar_sidecar(path))
            except DatasetCorruptionError:
                cached = None
            if cached is None:
                cached = load_if_exists(path)
        if cached is not None:
            if use_memory_cache:
                _MEMORY_CACHE[key] = cached
            return cached
    dataset = scenario.run().dataset
    if use_memory_cache:
        _MEMORY_CACHE[key] = dataset
    if path is not None:
        try:
            save_columnar(dataset, columnar_sidecar(path))
        except (ValueError, OverflowError, OSError):
            pass  # gzip-only datasets keep working; interchange rules
        save_dataset(dataset, path)
    return dataset


def clear_memory_cache() -> None:
    """Drop all memoised datasets (mainly for tests and benchmarks)."""
    _MEMORY_CACHE.clear()


def build_dataset_a(
    scale: float = 1.0,
    seed: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache: Optional[DatasetCache] = None,
) -> Dataset:
    """The dataset-A analogue at the requested scale."""
    scenario = (
        dataset_a_scenario(scale=scale)
        if seed is None
        else dataset_a_scenario(seed=seed, scale=scale)
    )
    return build_dataset(scenario, cache_dir=cache_dir, cache=cache)


def build_dataset_b(
    scale: float = 1.0,
    seed: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache: Optional[DatasetCache] = None,
) -> Dataset:
    """The dataset-B analogue at the requested scale."""
    scenario = (
        dataset_b_scenario(scale=scale)
        if seed is None
        else dataset_b_scenario(seed=seed, scale=scale)
    )
    return build_dataset(scenario, cache_dir=cache_dir, cache=cache)


def build_dataset_c(
    scale: float = 1.0,
    seed: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache: Optional[DatasetCache] = None,
) -> Dataset:
    """The dataset-C analogue (misbehaviour included) at the requested scale."""
    scenario = (
        dataset_c_scenario(scale=scale)
        if seed is None
        else dataset_c_scenario(seed=seed, scale=scale)
    )
    return build_dataset(scenario, cache_dir=cache_dir, cache=cache)
