"""The Dataset: one curated measurement campaign.

A :class:`Dataset` bundles everything the paper's analyses join:

* the committed chain (full blocks, ordered transactions),
* the observer's 15-second mempool snapshots,
* the per-transaction metadata rows (arrivals, fees, labels),
* block→pool attribution and the pools' estimated hash shares,
* ground-truth label sets carried over from the workload.

It exposes the derived mappings (commit heights, fee-rates, c-block
labels, …) that the core analyses consume, so experiment code reads as
the paper's method sections do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..chain.attribution import estimate_hash_rates, HashRateEstimate
from ..chain.block import Block
from ..chain.blockchain import Blockchain
from ..mempool.ancestry import find_cpfp_txids
from ..mempool.snapshots import SizeSeries, SnapshotStore
from .records import (
    LABEL_ACCELERATED,
    LABEL_MEV_ATTACK,
    LABEL_MEV_VICTIM,
    LABEL_SCAM,
    LABEL_SELF_INTEREST,
    BlockRecord,
    TxRecord,
)


@dataclass
class Dataset:
    """A joined measurement campaign, analogous to the paper's A/B/C."""

    name: str
    chain: Blockchain
    snapshots: SnapshotStore
    tx_records: dict[str, TxRecord]
    block_pools: dict[int, str]
    pool_wallets: dict[str, frozenset[str]] = field(default_factory=dict)
    size_series: Optional[SizeSeries] = None
    metadata: dict[str, object] = field(default_factory=dict)
    #: Open :class:`~repro.datasets.columnar.ColumnStore` backing this
    #: dataset, when it was loaded from (or saved to) the columnar
    #: format.  The zero-copy ``ChainArrays`` path reads from it; plain
    #: object-graph datasets leave it None and fall back.
    columnar: Optional[object] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> Sequence[Block]:
        return self.chain.blocks()

    @property
    def block_count(self) -> int:
        return len(self.chain)

    @property
    def tx_count(self) -> int:
        """Count of transactions issued (committed or not)."""
        return len(self.tx_records)

    def pool_of(self, height: int) -> Optional[str]:
        return self.block_pools.get(height)

    def blocks_of(self, pool: str) -> list[Block]:
        """All blocks attributed to ``pool``."""
        return [
            block
            for block in self.chain
            if self.block_pools.get(block.height) == pool
        ]

    def hash_rates(self) -> list[HashRateEstimate]:
        """Pools' normalized hash rates (θ0) from block shares."""
        return estimate_hash_rates(
            [self.block_pools[h] for h in sorted(self.block_pools)]
        )

    def hash_rate_of(self, pool: str) -> float:
        """θ0 of one pool (0.0 if it mined nothing)."""
        for estimate in self.hash_rates():
            if estimate.pool == pool:
                return estimate.share
        return 0.0

    # ------------------------------------------------------------------
    # Derived mappings for core analyses
    # ------------------------------------------------------------------
    def commit_heights(self) -> dict[str, int]:
        """txid → commit height over committed transactions."""
        return {
            txid: record.commit_height
            for txid, record in self.tx_records.items()
            if record.commit_height is not None
        }

    def fee_rates(self) -> dict[str, float]:
        """txid → fee-rate (sat/vB) over all recorded transactions."""
        return {txid: record.fee_rate for txid, record in self.tx_records.items()}

    def block_times(self) -> np.ndarray:
        """Discovery time of each height, as an array indexed by height."""
        return np.asarray([block.timestamp for block in self.chain], dtype=float)

    def committed_records(self) -> list[TxRecord]:
        return [r for r in self.tx_records.values() if r.committed]

    def observed_committed_records(self) -> list[TxRecord]:
        """Rows both seen by the observer and committed — the §4.1 base."""
        return [
            r for r in self.tx_records.values() if r.committed and r.observed
        ]

    def cpfp_txids(self) -> frozenset[str]:
        """All in-block CPFP children across the chain (Appendix E)."""
        cpfp: set[str] = set()
        for block in self.chain:
            cpfp.update(find_cpfp_txids(block))
        return frozenset(cpfp)

    def commit_pools(self) -> dict[str, str]:
        """txid → pool that committed it."""
        mapping: dict[str, str] = {}
        for block in self.chain:
            pool = self.block_pools.get(block.height)
            if pool is None:
                continue
            for tx in block.transactions:
                mapping[tx.txid] = pool
        return mapping

    # ------------------------------------------------------------------
    # Labelled transaction sets (ground truth)
    # ------------------------------------------------------------------
    def labelled_txids(self, prefix: str, value: str = "") -> frozenset[str]:
        """Transactions carrying a label (optionally with a value)."""
        return frozenset(
            txid
            for txid, record in self.tx_records.items()
            if record.has_label(prefix, value)
        )

    def self_interest_txids(self, pool: str) -> frozenset[str]:
        """Ground-truth self-interest transactions of ``pool``."""
        return self.labelled_txids(LABEL_SELF_INTEREST, pool)

    def scam_txids(self) -> frozenset[str]:
        return self.labelled_txids(LABEL_SCAM)

    def accelerated_txids(self, service: str = "") -> frozenset[str]:
        return self.labelled_txids(LABEL_ACCELERATED, service)

    def mev_victim_txids(self, campaign: str = "") -> frozenset[str]:
        """Ground-truth MEV victim transactions (adversary-zoo workloads)."""
        return self.labelled_txids(LABEL_MEV_VICTIM, campaign)

    def mev_attack_txids(self, campaign: str = "") -> frozenset[str]:
        """The attacker's own sandwich insertions."""
        return self.labelled_txids(LABEL_MEV_ATTACK, campaign)

    def inferred_self_interest_txids(self, pool: str) -> frozenset[str]:
        """Self-interest transactions as the *auditor* infers them (§5.2).

        Uses only public information: transactions paying to, or spending
        from, the pool's known reward wallets.
        """
        wallets = self.pool_wallets.get(pool, frozenset())
        if not wallets:
            return frozenset()
        return frozenset(self.chain.transactions_touching(wallets))

    def inferred_self_interest_txids_indexed(self, pool: str) -> frozenset[str]:
        """Index-backed :meth:`inferred_self_interest_txids`.

        Same set, computed from the chain's one-pass address index
        instead of a full scan per pool; the Table 2 sweep calls this
        once per owner pool.
        """
        wallets = self.pool_wallets.get(pool, frozenset())
        if not wallets:
            return frozenset()
        return self.chain.transactions_touching_indexed(wallets)

    # ------------------------------------------------------------------
    # c-block machinery for the statistical tests
    # ------------------------------------------------------------------
    def c_block_miners(self, txids: Iterable[str]) -> list[str]:
        """Miner label of every block containing ≥1 of ``txids``."""
        heights: set[int] = set()
        for txid in txids:
            record = self.tx_records.get(txid)
            if record is not None and record.commit_height is not None:
                heights.add(record.commit_height)
            elif record is None:
                location = self.chain.location_of(txid)
                if location is not None:
                    heights.add(location.height)
        return [
            self.block_pools[h]
            for h in sorted(heights)
            if h in self.block_pools
        ]

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def block_records(self) -> list[BlockRecord]:
        """Per-block summary rows."""
        from ..chain.constants import block_subsidy

        records = []
        for block in self.chain:
            records.append(
                BlockRecord(
                    height=block.height,
                    block_hash=block.block_hash,
                    timestamp=block.timestamp,
                    pool=self.block_pools.get(block.height, "unknown"),
                    tx_count=block.tx_count,
                    vsize=block.vsize,
                    total_fees=block.total_fees,
                    subsidy=block_subsidy(block.height),
                )
            )
        return records

    def empty_block_count(self) -> int:
        return sum(1 for block in self.chain if block.is_empty)

    def summary(self) -> dict[str, object]:
        """Table 1-style summary of this dataset."""
        from ..mempool.ancestry import cpfp_fraction

        blocks = list(self.chain)
        return {
            "name": self.name,
            "blocks": len(blocks),
            "transactions_issued": self.tx_count,
            "transactions_committed": len(self.committed_records()),
            "cpfp_fraction": cpfp_fraction(blocks),
            "empty_blocks": self.empty_block_count(),
            "snapshots": len(self.snapshots),
        }
