"""Typed row records for curated datasets.

A dataset is the joined product the paper's analyses consume; each row
type captures one measurement stream.  Ground-truth labels (which
transactions were self-interest payments, scam payments, or dark-fee
accelerated) ride along on :class:`TxRecord` — the simulator knows the
truth the paper had to infer, and keeping it lets experiments score
their detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Well-known label prefixes attached to transactions by the workload.
LABEL_SELF_INTEREST = "self-interest"  # self-interest:<pool name>
LABEL_SCAM = "scam"
LABEL_ACCELERATED = "accelerated"  # accelerated:<service name>
LABEL_ZERO_FEE = "zero-fee"
LABEL_LOW_FEE = "low-fee"
#: A replace-by-fee bump (public fee acceleration) and the transaction
#: it displaced.
LABEL_RBF_BUMP = "rbf-bump"
LABEL_RBF_ORIGINAL = "rbf-original"
#: MEV campaign populations: targeted victim transactions and the
#: attacker's own insertion (front-run/back-run) transactions.
LABEL_MEV_VICTIM = "mev-victim"  # mev-victim:<campaign name>
LABEL_MEV_ATTACK = "mev-attack"  # mev-attack:<campaign name>


def make_label(prefix: str, value: str = "") -> str:
    """Compose a namespaced label like ``self-interest:F2Pool``."""
    return f"{prefix}:{value}" if value else prefix


def label_value(label: str, prefix: str) -> Optional[str]:
    """Extract the value of a namespaced label, or None if mismatched."""
    if label == prefix:
        return ""
    if label.startswith(prefix + ":"):
        return label[len(prefix) + 1 :]
    return None


@dataclass(frozen=True)
class TxRecord:
    """Everything known about one transaction across the pipeline."""

    txid: str
    broadcast_time: float
    observer_arrival: Optional[float]
    fee: int
    vsize: int
    commit_height: Optional[int]
    commit_position: Optional[int]
    labels: frozenset[str] = field(default_factory=frozenset)

    @property
    def fee_rate(self) -> float:
        return self.fee / self.vsize

    @property
    def committed(self) -> bool:
        return self.commit_height is not None

    @property
    def observed(self) -> bool:
        """True if the observer node admitted this transaction."""
        return self.observer_arrival is not None

    def has_label(self, prefix: str, value: str = "") -> bool:
        """Membership test for a namespaced label."""
        if value:
            return make_label(prefix, value) in self.labels
        return any(
            label == prefix or label.startswith(prefix + ":")
            for label in self.labels
        )

    def label_values(self, prefix: str) -> list[str]:
        """All values carried under ``prefix``."""
        values = []
        for label in self.labels:
            value = label_value(label, prefix)
            if value is not None:
                values.append(value)
        return values


@dataclass(frozen=True)
class BlockRecord:
    """Per-block summary used by attribution-level analyses."""

    height: int
    block_hash: str
    timestamp: float
    pool: str
    tx_count: int
    vsize: int
    total_fees: int
    subsidy: int

    @property
    def is_empty(self) -> bool:
        return self.tx_count == 0

    @property
    def fee_share_of_revenue(self) -> float:
        """Fees as a fraction of total block revenue (Table 5 cell)."""
        revenue = self.total_fees + self.subsidy
        return self.total_fees / revenue if revenue else 0.0
