"""Norm definitions and the fee-rate position predictor.

The paper's audit rests on one predictor: *if the miner followed the
GetBlockTemplate norm, where would each transaction sit inside its
block?*  Predicted positions come from re-sorting the block's own
transactions by fee-rate; comparing them with observed positions yields
PPE (unsigned, §4.2.2) and SPPE (signed, §5.1.1).

Positions are expressed as percentile ranks in [0, 100] so blocks of
different sizes are comparable — the paper normalises "by the size of
the block ... expressed as a percentage".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from ..chain.block import Block
from ..chain.transaction import Transaction
from ..mempool.ancestry import cpfp_involved_txids, find_cpfp_txids


class CpfpFilter(Enum):
    """Which CPFP-related transactions to drop before position analysis."""

    #: Keep everything (no filtering).
    NONE = "none"
    #: Drop CPFP children — the paper's Appendix E definition.
    CHILDREN = "children"
    #: Drop CPFP children and their in-block parents.
    INVOLVED = "involved"


def filter_block_transactions(
    block: Block, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> list[Transaction]:
    """Non-CPFP transactions of ``block`` in observed order."""
    if cpfp_filter is CpfpFilter.NONE:
        return list(block.transactions)
    if cpfp_filter is CpfpFilter.CHILDREN:
        excluded = find_cpfp_txids(block)
    else:
        excluded = cpfp_involved_txids(block)
    return [tx for tx in block.transactions if tx.txid not in excluded]


def percentile_ranks(count: int) -> list[float]:
    """Percentile rank of each position among ``count`` slots.

    Position 0 (top of the block) maps to 0.0 and the last position to
    100.0; a single transaction sits at 0.0.
    """
    if count <= 0:
        return []
    if count == 1:
        return [0.0]
    return [100.0 * index / (count - 1) for index in range(count)]


def predicted_order(transactions: Sequence[Transaction]) -> list[Transaction]:
    """Transactions re-sorted by the norm: descending fee-rate.

    The sort is stable with observed order as the tie-break, so
    transactions with exactly equal fee-rates contribute zero error —
    the norm genuinely does not constrain their relative order.
    """
    indexed = list(enumerate(transactions))
    indexed.sort(key=lambda pair: (-pair[1].fee_rate, pair[0]))
    return [tx for _, tx in indexed]


@dataclass(frozen=True)
class PositionPrediction:
    """Observed vs norm-predicted percentile position of one transaction."""

    txid: str
    fee_rate: float
    observed_rank: float
    predicted_rank: float

    @property
    def error(self) -> float:
        """Unsigned percentile error (PPE contribution)."""
        return abs(self.predicted_rank - self.observed_rank)

    @property
    def signed_error(self) -> float:
        """Signed percentile error: predicted − observed.

        Positive means the transaction appeared *earlier* (closer to the
        top) than its fee-rate warrants — the acceleration signature.
        """
        return self.predicted_rank - self.observed_rank


def predict_block_positions(
    block: Block, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> list[PositionPrediction]:
    """Per-transaction observed/predicted percentile ranks for a block.

    Ranks are computed over the *filtered* transaction list: after CPFP
    exclusion, the remaining transactions are re-ranked contiguously in
    both the observed and the predicted orders.
    """
    transactions = filter_block_transactions(block, cpfp_filter)
    count = len(transactions)
    if count == 0:
        return []
    ranks = percentile_ranks(count)
    observed_rank = {tx.txid: ranks[i] for i, tx in enumerate(transactions)}
    predicted = predicted_order(transactions)
    predicted_rank = {tx.txid: ranks[i] for i, tx in enumerate(predicted)}
    return [
        PositionPrediction(
            txid=tx.txid,
            fee_rate=tx.fee_rate,
            observed_rank=observed_rank[tx.txid],
            predicted_rank=predicted_rank[tx.txid],
        )
        for tx in transactions
    ]


def prediction_for(
    block: Block,
    txid: str,
    cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
) -> Optional[PositionPrediction]:
    """The prediction record for one transaction, if it survives filtering."""
    for prediction in predict_block_positions(block, cpfp_filter):
        if prediction.txid == txid:
            return prediction
    return None


class Norm(Enum):
    """The three implicit norms catalogued in §2.1."""

    #: Norm I: select transactions for inclusion by fee-rate.
    FEE_RATE_SELECTION = "fee-rate-selection"
    #: Norm II: order transactions within a block by fee-rate.
    FEE_RATE_ORDERING = "fee-rate-ordering"
    #: Norm III: never commit transactions below the minimum fee-rate.
    MIN_FEE_THRESHOLD = "min-fee-threshold"
