"""Norm-assuming fee estimation — what wallet software does.

Bitcoin Core and most wallets suggest fees from the fee-rate
distribution of recently committed transactions, **assuming miners
follow the fee-rate norm** (§4.1, footnote on Coinbase).  This module
implements that estimator so experiments can quantify how dark-fee and
self-interest deviations mislead it: an accelerated transaction's tiny
public fee drags the observed distribution down, while the true price
of priority is hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..chain.block import Block


@dataclass(frozen=True)
class FeeEstimate:
    """A suggested fee-rate for a confirmation target."""

    target_blocks: int
    fee_rate_sat_vb: float
    based_on_blocks: int
    based_on_txs: int


class NormBasedFeeEstimator:
    """Suggest fee-rates from recent blocks' committed fee-rates.

    The heuristic mirrors deployed estimators: to confirm within ``k``
    blocks, offer around the fee-rate that beat all but the cheapest
    tail of transactions in the last ``window`` blocks — specifically
    the q-th percentile with q shrinking as urgency rises.
    """

    #: Percentile targeted per confirmation horizon: next block demands
    #: beating most of the recent market; 10+ blocks can undercut it.
    TARGET_PERCENTILES = {1: 75.0, 3: 50.0, 6: 35.0, 10: 20.0}

    def __init__(self, window: int = 24) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def estimate(
        self, recent_blocks: Sequence[Block], target_blocks: int = 1
    ) -> FeeEstimate:
        """Suggest a fee-rate to confirm within ``target_blocks``."""
        if target_blocks < 1:
            raise ValueError("target_blocks must be >= 1")
        blocks = list(recent_blocks)[-self.window :]
        rates = [tx.fee_rate for block in blocks for tx in block.transactions]
        if not rates:
            return FeeEstimate(
                target_blocks=target_blocks,
                fee_rate_sat_vb=1.0,
                based_on_blocks=len(blocks),
                based_on_txs=0,
            )
        percentile = self._percentile_for(target_blocks)
        suggested = float(np.percentile(np.asarray(rates, dtype=float), percentile))
        return FeeEstimate(
            target_blocks=target_blocks,
            fee_rate_sat_vb=max(suggested, 1.0),
            based_on_blocks=len(blocks),
            based_on_txs=len(rates),
        )

    def _percentile_for(self, target_blocks: int) -> float:
        thresholds = sorted(self.TARGET_PERCENTILES)
        chosen = self.TARGET_PERCENTILES[thresholds[-1]]
        for horizon in thresholds:
            if target_blocks <= horizon:
                chosen = self.TARGET_PERCENTILES[horizon]
                break
        return chosen


def estimator_bias_from_dark_fees(
    blocks: Iterable[Block],
    accelerated_txids: frozenset[str],
    target_blocks: int = 1,
    window: int = 24,
) -> tuple[FeeEstimate, FeeEstimate]:
    """Fee estimates with and without dark-fee pollution.

    Returns (naive, corrected): the naive estimate consumes all
    committed transactions as a wallet would; the corrected one drops
    transactions known to have paid off-chain.  The gap quantifies the
    §6 concern that opaque fees break fee estimation.
    """
    blocks = list(blocks)
    estimator = NormBasedFeeEstimator(window=window)
    naive = estimator.estimate(blocks, target_blocks)

    cleaned_rates = [
        tx.fee_rate
        for block in blocks[-window:]
        for tx in block.transactions
        if tx.txid not in accelerated_txids
    ]
    if cleaned_rates:
        percentile = estimator._percentile_for(target_blocks)
        corrected_rate = float(
            np.percentile(np.asarray(cleaned_rates, dtype=float), percentile)
        )
    else:
        corrected_rate = naive.fee_rate_sat_vb
    corrected = FeeEstimate(
        target_blocks=target_blocks,
        fee_rate_sat_vb=max(corrected_rate, 1.0),
        based_on_blocks=min(window, len(blocks)),
        based_on_txs=len(cleaned_rates),
    )
    return naive, corrected
