"""Pairwise selection-norm violation detection (§4.2.1).

The test scans a mempool snapshot for ordered transaction pairs (i, j)
where i arrived earlier AND offers a strictly higher fee-rate, yet was
committed in a *later* block.  Any such pair contradicts a pure
fee-rate selection norm.

Two refinements from the paper are supported:

* an ε slack on arrival times (``t_i + ε < t_j``) to discount pairs the
  observer may simply have received in a different order than miners;
* exclusion of CPFP-dependent transactions, whose out-of-order commits
  are legitimate.

The pair count is a three-way dominance count; we evaluate it with a
row-blocked numpy sweep, which keeps memory linear while vectorising
the inner comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..mempool.snapshots import MempoolSnapshot

#: The two ε values the paper uses when tightening the test.
EPSILON_10_SECONDS = 10.0
EPSILON_10_MINUTES = 600.0


@dataclass(frozen=True)
class ViolationStats:
    """Outcome of the pairwise test on one snapshot."""

    snapshot_time: float
    tx_count: int
    total_pairs: int
    eligible_pairs: int
    violating_pairs: int
    epsilon: float

    @property
    def violating_fraction(self) -> float:
        """Violating pairs over all pairs — the Fig 6 y-quantity."""
        if self.total_pairs == 0:
            return 0.0
        return self.violating_pairs / self.total_pairs

    @property
    def violating_fraction_of_eligible(self) -> float:
        """Violating pairs over (earlier, higher-fee-rate) pairs only."""
        if self.eligible_pairs == 0:
            return 0.0
        return self.violating_pairs / self.eligible_pairs


def count_violations(
    arrival_times: Sequence[float],
    fee_rates: Sequence[float],
    commit_heights: Sequence[int],
    epsilon: float = 0.0,
    block_size: int = 512,
) -> tuple[int, int]:
    """Count (eligible, violating) pairs among parallel arrays.

    Eligible: ``t_i + ε < t_j`` and ``f_i > f_j`` (transaction i should
    win).  Violating: additionally ``b_i > b_j`` (it lost).  Uncommitted
    transactions must be filtered out by the caller.
    """
    times = np.asarray(arrival_times, dtype=float)
    rates = np.asarray(fee_rates, dtype=float)
    heights = np.asarray(commit_heights, dtype=np.int64)
    count = times.size
    if not (rates.size == count and heights.size == count):
        raise ValueError("input arrays must have equal length")
    eligible = 0
    violating = 0
    for start in range(0, count, block_size):
        stop = min(start + block_size, count)
        t_i = times[start:stop, None]
        f_i = rates[start:stop, None]
        b_i = heights[start:stop, None]
        earlier = t_i + epsilon < times[None, :]
        richer = f_i > rates[None, :]
        eligible_mask = earlier & richer
        eligible += int(eligible_mask.sum())
        violating += int((eligible_mask & (b_i > heights[None, :])).sum())
    return eligible, violating


@dataclass(frozen=True)
class SnapshotView:
    """A snapshot joined with commit information, ready for the test."""

    time: float
    txids: tuple[str, ...]
    arrival_times: np.ndarray
    fee_rates: np.ndarray
    commit_heights: np.ndarray

    @property
    def tx_count(self) -> int:
        return len(self.txids)


def build_snapshot_view(
    snapshot: MempoolSnapshot,
    commit_heights: Mapping[str, int],
    cpfp_txids: Optional[frozenset[str]] = None,
) -> SnapshotView:
    """Join a snapshot with the chain's commit heights.

    Transactions never committed are dropped (the test is defined over
    committed transactions); ``cpfp_txids`` additionally removes CPFP
    transactions for the Fig 6b variant.
    """
    txids: list[str] = []
    times: list[float] = []
    rates: list[float] = []
    heights: list[int] = []
    for tx in snapshot.txs:
        height = commit_heights.get(tx.txid)
        if height is None:
            continue
        if cpfp_txids is not None and tx.txid in cpfp_txids:
            continue
        txids.append(tx.txid)
        times.append(tx.arrival_time)
        rates.append(tx.fee_rate)
        heights.append(height)
    return SnapshotView(
        time=snapshot.time,
        txids=tuple(txids),
        arrival_times=np.asarray(times, dtype=float),
        fee_rates=np.asarray(rates, dtype=float),
        commit_heights=np.asarray(heights, dtype=np.int64),
    )


def analyze_snapshot(view: SnapshotView, epsilon: float = 0.0) -> ViolationStats:
    """Run the pairwise violation test on one joined snapshot."""
    count = view.tx_count
    total_pairs = count * (count - 1) // 2
    eligible, violating = count_violations(
        view.arrival_times, view.fee_rates, view.commit_heights, epsilon=epsilon
    )
    return ViolationStats(
        snapshot_time=view.time,
        tx_count=count,
        total_pairs=total_pairs,
        eligible_pairs=eligible,
        violating_pairs=violating,
        epsilon=epsilon,
    )


def analyze_snapshots(
    views: Iterable[SnapshotView], epsilons: Sequence[float] = (0.0,)
) -> dict[float, list[ViolationStats]]:
    """Run the test across snapshots for each ε (Fig 6 series)."""
    views = list(views)
    return {
        epsilon: [analyze_snapshot(view, epsilon) for view in views]
        for epsilon in epsilons
    }


def enumerate_violating_pairs(
    view: SnapshotView, epsilon: float = 0.0, limit: Optional[int] = None
) -> list[tuple[str, str]]:
    """Materialise violating (earlier-richer-later, later-poorer-earlier) pairs.

    Useful for drilling into *which* transactions jumped the queue; the
    aggregate analyses never need the explicit list, so this is O(n²)
    by design and accepts a ``limit``.
    """
    pairs: list[tuple[str, str]] = []
    times = view.arrival_times
    rates = view.fee_rates
    heights = view.commit_heights
    for i in range(view.tx_count):
        mask = (
            (times[i] + epsilon < times)
            & (rates[i] > rates)
            & (heights[i] > heights)
        )
        for j in np.nonzero(mask)[0]:
            pairs.append((view.txids[i], view.txids[int(j)]))
            if limit is not None and len(pairs) >= limit:
                return pairs
    return pairs
