"""Pairwise selection-norm violation detection (§4.2.1).

The test scans a mempool snapshot for ordered transaction pairs (i, j)
where i arrived earlier AND offers a strictly higher fee-rate, yet was
committed in a *later* block.  Any such pair contradicts a pure
fee-rate selection norm.

Two refinements from the paper are supported:

* an ε slack on arrival times (``t_i + ε < t_j``) to discount pairs the
  observer may simply have received in a different order than miners;
* exclusion of CPFP-dependent transactions, whose out-of-order commits
  are legitimate.

The pair count is a three-way dominance count; we evaluate it with a
row-blocked numpy sweep, which keeps memory linear while vectorising
the inner comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..chain.block import Block
from ..mempool.ancestry import find_cpfp_txids
from ..mempool.snapshots import MempoolSnapshot

#: The two ε values the paper uses when tightening the test.
EPSILON_10_SECONDS = 10.0
EPSILON_10_MINUTES = 600.0


@dataclass(frozen=True)
class ViolationStats:
    """Outcome of the pairwise test on one snapshot."""

    snapshot_time: float
    tx_count: int
    total_pairs: int
    eligible_pairs: int
    violating_pairs: int
    epsilon: float

    @property
    def violating_fraction(self) -> float:
        """Violating pairs over all pairs — the Fig 6 y-quantity."""
        if self.total_pairs == 0:
            return 0.0
        return self.violating_pairs / self.total_pairs

    @property
    def violating_fraction_of_eligible(self) -> float:
        """Violating pairs over (earlier, higher-fee-rate) pairs only."""
        if self.eligible_pairs == 0:
            return 0.0
        return self.violating_pairs / self.eligible_pairs


def count_violations(
    arrival_times: Sequence[float],
    fee_rates: Sequence[float],
    commit_heights: Sequence[int],
    epsilon: float = 0.0,
    block_size: int = 512,
) -> tuple[int, int]:
    """Count (eligible, violating) pairs among parallel arrays.

    Eligible: ``t_i + ε < t_j`` and ``f_i > f_j`` (transaction i should
    win).  Violating: additionally ``b_i > b_j`` (it lost).  Uncommitted
    transactions must be filtered out by the caller.
    """
    times = np.asarray(arrival_times, dtype=float)
    rates = np.asarray(fee_rates, dtype=float)
    heights = np.asarray(commit_heights, dtype=np.int64)
    count = times.size
    if not (rates.size == count and heights.size == count):
        raise ValueError("input arrays must have equal length")
    eligible = 0
    violating = 0
    for start in range(0, count, block_size):
        stop = min(start + block_size, count)
        t_i = times[start:stop, None]
        f_i = rates[start:stop, None]
        b_i = heights[start:stop, None]
        earlier = t_i + epsilon < times[None, :]
        richer = f_i > rates[None, :]
        eligible_mask = earlier & richer
        eligible += int(eligible_mask.sum())
        violating += int((eligible_mask & (b_i > heights[None, :])).sum())
    return eligible, violating


@dataclass(frozen=True)
class SnapshotView:
    """A snapshot joined with commit information, ready for the test."""

    time: float
    txids: tuple[str, ...]
    arrival_times: np.ndarray
    fee_rates: np.ndarray
    commit_heights: np.ndarray

    @property
    def tx_count(self) -> int:
        return len(self.txids)


def build_snapshot_view(
    snapshot: MempoolSnapshot,
    commit_heights: Mapping[str, int],
    cpfp_txids: Optional[frozenset[str]] = None,
) -> SnapshotView:
    """Join a snapshot with the chain's commit heights.

    Transactions never committed are dropped (the test is defined over
    committed transactions); ``cpfp_txids`` additionally removes CPFP
    transactions for the Fig 6b variant.
    """
    txids: list[str] = []
    times: list[float] = []
    rates: list[float] = []
    heights: list[int] = []
    for tx in snapshot.txs:
        height = commit_heights.get(tx.txid)
        if height is None:
            continue
        if cpfp_txids is not None and tx.txid in cpfp_txids:
            continue
        txids.append(tx.txid)
        times.append(tx.arrival_time)
        rates.append(tx.fee_rate)
        heights.append(height)
    return SnapshotView(
        time=snapshot.time,
        txids=tuple(txids),
        arrival_times=np.asarray(times, dtype=float),
        fee_rates=np.asarray(rates, dtype=float),
        commit_heights=np.asarray(heights, dtype=np.int64),
    )


def analyze_snapshot(view: SnapshotView, epsilon: float = 0.0) -> ViolationStats:
    """Run the pairwise violation test on one joined snapshot."""
    count = view.tx_count
    total_pairs = count * (count - 1) // 2
    eligible, violating = count_violations(
        view.arrival_times, view.fee_rates, view.commit_heights, epsilon=epsilon
    )
    return ViolationStats(
        snapshot_time=view.time,
        tx_count=count,
        total_pairs=total_pairs,
        eligible_pairs=eligible,
        violating_pairs=violating,
        epsilon=epsilon,
    )


def analyze_snapshots(
    views: Iterable[SnapshotView], epsilons: Sequence[float] = (0.0,)
) -> dict[float, list[ViolationStats]]:
    """Run the test across snapshots for each ε (Fig 6 series)."""
    views = list(views)
    return {
        epsilon: [analyze_snapshot(view, epsilon) for view in views]
        for epsilon in epsilons
    }


class ViolationAccumulator:
    """Incremental commit/CPFP state behind the pairwise violation test.

    The batch path derives ``commit_heights`` from a full record scan and
    ``cpfp_txids`` from a full chain scan for every audit.  This
    accumulator maintains both maps fold-by-fold: each committed block
    contributes its txid → height entries and its in-block CPFP children
    (Appendix E), after which any snapshot can be joined and tested
    without touching the chain again.

    Equivalence contract: after folding blocks 0..h, ``commit_heights``
    equals the batch ``Dataset.commit_heights()`` restricted to those
    blocks' transactions, and ``cpfp_txids`` equals the batch
    ``Dataset.cpfp_txids()`` union over the same prefix — both are built
    by the same underlying functions, so :func:`build_snapshot_view`
    joins produce bit-identical :class:`ViolationStats`.
    """

    def __init__(self) -> None:
        #: txid → commit height over every folded block.
        self.commit_heights: dict[str, int] = {}
        #: Union of in-block CPFP children across folded blocks.
        self.cpfp_txids: set[str] = set()
        self.block_count = 0

    def fold(self, block: Block) -> None:
        """Fold one committed block's commit and CPFP contributions."""
        self.block_count += 1
        height = block.height
        for tx in block.transactions:
            self.commit_heights[tx.txid] = height
        self.cpfp_txids.update(find_cpfp_txids(block))

    def heights_of(self, txids: Iterable[str]) -> set[int]:
        """Distinct commit heights of the folded subset of ``txids``."""
        heights: set[int] = set()
        for txid in txids:
            height = self.commit_heights.get(txid)
            if height is not None:
                heights.add(height)
        return heights

    def snapshot_view(
        self, snapshot: MempoolSnapshot, exclude_cpfp: bool = True
    ) -> SnapshotView:
        """Join ``snapshot`` against the folded commit state."""
        cpfp = frozenset(self.cpfp_txids) if exclude_cpfp else None
        return build_snapshot_view(snapshot, self.commit_heights, cpfp)

    def analyze(
        self,
        snapshot: MempoolSnapshot,
        epsilon: float = 0.0,
        exclude_cpfp: bool = True,
    ) -> ViolationStats:
        """Run the pairwise test on one snapshot at the current fold."""
        return analyze_snapshot(
            self.snapshot_view(snapshot, exclude_cpfp), epsilon
        )


def enumerate_violating_pairs(
    view: SnapshotView, epsilon: float = 0.0, limit: Optional[int] = None
) -> list[tuple[str, str]]:
    """Materialise violating (earlier-richer-later, later-poorer-earlier) pairs.

    Useful for drilling into *which* transactions jumped the queue; the
    aggregate analyses never need the explicit list, so this is O(n²)
    by design and accepts a ``limit``.
    """
    pairs: list[tuple[str, str]] = []
    times = view.arrival_times
    rates = view.fee_rates
    heights = view.commit_heights
    for i in range(view.tx_count):
        mask = (
            (times[i] + epsilon < times)
            & (rates[i] > rates)
            & (heights[i] > heights)
        )
        for j in np.nonzero(mask)[0]:
            pairs.append((view.txids[i], view.txids[int(j)]))
            if limit is not None and len(pairs) >= limit:
                return pairs
    return pairs
