"""The Auditor: the paper's methodology as one high-level API.

``Auditor`` wraps a :class:`~repro.datasets.dataset.Dataset` and exposes
each analysis of §4 and §5 as a method.  Example::

    auditor = Auditor(build_dataset_c(scale=0.2))
    for row in auditor.self_interest_table(top_n=10):
        print(row.target_pool, row.test.p_accelerate, row.sppe)

Everything here is a thin join between the dataset's derived mappings
and the pure analysis functions in the sibling modules, so each piece
stays independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..datasets.dataset import Dataset
from .acceleration import (
    TABLE4_THRESHOLDS,
    DetectionReport,
    DetectorScore,
    detection_sweep,
    score_detector,
)
from .congestion import (
    DelaySummary,
    commit_delays_in_blocks,
    delays_by_fee_band,
    fee_rates_by_congestion,
)
from .norms import CpfpFilter
from .ppe import BlockPpe, PpeSummary, SppeResult, chain_ppe, sppe, summarize_ppe
from .stattests import PrioritizationTestResult, prioritization_test
from .violations import (
    SnapshotView,
    ViolationStats,
    analyze_snapshot,
    build_snapshot_view,
)


@dataclass(frozen=True)
class SelfInterestRow:
    """One Table 2 row: a (transaction owner, tested miner) pair."""

    owner_pool: str
    target_pool: str
    test: PrioritizationTestResult
    sppe: float
    tx_count: int


@dataclass(frozen=True)
class ScamRow:
    """One Table 3 row."""

    pool: str
    test: PrioritizationTestResult
    sppe: float


class Auditor:
    """Run the paper's audits against one dataset."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    # ------------------------------------------------------------------
    # §4.2.2 — in-block ordering
    # ------------------------------------------------------------------
    def ppe_distribution(
        self, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> list[BlockPpe]:
        """Per-block PPE over the whole chain (Fig 7a input)."""
        return chain_ppe(self.dataset.chain, cpfp_filter)

    def ppe_summary(self) -> PpeSummary:
        return summarize_ppe(self.ppe_distribution())

    def ppe_by_pool(self, pools: Sequence[str]) -> dict[str, list[BlockPpe]]:
        """PPE distributions for named pools (Fig 7b input)."""
        return {
            pool: chain_ppe(self.dataset.blocks_of(pool)) for pool in pools
        }

    # ------------------------------------------------------------------
    # §4.2.1 — pairwise selection violations
    # ------------------------------------------------------------------
    def snapshot_views(
        self,
        count: int = 30,
        rng: Optional[np.random.Generator] = None,
        exclude_cpfp: bool = False,
    ) -> list[SnapshotView]:
        """Join ``count`` random snapshots with commit data (Fig 6 input)."""
        rng = rng if rng is not None else np.random.default_rng(30)
        snapshots = self.dataset.snapshots.sample(count, rng)
        commit_heights = self.dataset.commit_heights()
        cpfp = self.dataset.cpfp_txids() if exclude_cpfp else None
        return [
            build_snapshot_view(snapshot, commit_heights, cpfp)
            for snapshot in snapshots
        ]

    def violation_stats(
        self,
        epsilon: float = 0.0,
        count: int = 30,
        exclude_cpfp: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> list[ViolationStats]:
        """Violation fractions per sampled snapshot at one ε."""
        views = self.snapshot_views(count, rng=rng, exclude_cpfp=exclude_cpfp)
        return [analyze_snapshot(view, epsilon) for view in views]

    # ------------------------------------------------------------------
    # §5.1/§5.2 — differential prioritization
    # ------------------------------------------------------------------
    def prioritization_test_for(
        self, target_pool: str, txids: Iterable[str]
    ) -> PrioritizationTestResult:
        """Both directional binomial tests of ``target_pool`` on ``txids``."""
        theta0 = self.dataset.hash_rate_of(target_pool)
        miners = self.dataset.c_block_miners(txids)
        return prioritization_test(target_pool, theta0, miners)

    def sppe_for(
        self, target_pool: str, txids: Iterable[str]
    ) -> SppeResult:
        """SPPE of ``txids`` inside blocks mined by ``target_pool``."""
        return sppe(self.dataset.blocks_of(target_pool), txids)

    def self_interest_table(
        self,
        owner_pools: Optional[Sequence[str]] = None,
        target_pools: Optional[Sequence[str]] = None,
        min_target_share: float = 0.035,
        use_inferred: bool = True,
    ) -> list[SelfInterestRow]:
        """Reproduce Table 2: every (owner, target) pair's test + SPPE.

        ``use_inferred`` selects between the auditor's wallet-based
        inference of self-interest transactions (the paper's §5.2
        method) and the simulator's ground-truth labels.
        """
        estimates = self.dataset.hash_rates()
        if owner_pools is None:
            owner_pools = [
                est.pool for est in estimates if est.pool != "unknown"
            ][:20]
        if target_pools is None:
            target_pools = [
                est.pool
                for est in estimates
                if est.share >= min_target_share and est.pool != "unknown"
            ]
        rows: list[SelfInterestRow] = []
        for owner in owner_pools:
            txids = (
                self.dataset.inferred_self_interest_txids(owner)
                if use_inferred
                else self.dataset.self_interest_txids(owner)
            )
            if not txids:
                continue
            for target in target_pools:
                test = self.prioritization_test_for(target, txids)
                if test.y == 0:
                    continue
                sppe_result = self.sppe_for(target, txids)
                rows.append(
                    SelfInterestRow(
                        owner_pool=owner,
                        target_pool=target,
                        test=test,
                        sppe=sppe_result.sppe,
                        tx_count=len(txids),
                    )
                )
        return rows

    # ------------------------------------------------------------------
    # §5.3 — scam payments
    # ------------------------------------------------------------------
    def scam_table(
        self, target_pools: Optional[Sequence[str]] = None, min_share: float = 0.05
    ) -> list[ScamRow]:
        """Reproduce Table 3 over the dataset's scam transactions."""
        scam_txids = self.dataset.scam_txids()
        if target_pools is None:
            target_pools = [
                est.pool
                for est in self.dataset.hash_rates()
                if est.share >= min_share and est.pool != "unknown"
            ]
        rows = []
        for pool in target_pools:
            test = self.prioritization_test_for(pool, scam_txids)
            sppe_result = self.sppe_for(pool, scam_txids)
            rows.append(ScamRow(pool=pool, test=test, sppe=sppe_result.sppe))
        return rows

    # ------------------------------------------------------------------
    # §5.4 — dark-fee acceleration
    # ------------------------------------------------------------------
    def dark_fee_sweep(
        self,
        pool: str,
        service_name: str = "",
        thresholds: Sequence[float] = TABLE4_THRESHOLDS,
        rng: Optional[np.random.Generator] = None,
    ) -> DetectionReport:
        """Reproduce Table 4 for one pool.

        The dataset's accelerated-transaction labels play the role of
        the service's public checker.
        """
        accelerated = self.dataset.accelerated_txids(service_name)
        return detection_sweep(
            self.dataset.blocks_of(pool),
            is_accelerated=lambda txid: txid in accelerated,
            pool=pool,
            thresholds=thresholds,
            rng=rng if rng is not None else np.random.default_rng(4),
        )

    def dark_fee_scores(
        self, pool: str, service_name: str = ""
    ) -> list[DetectorScore]:
        """Precision *and* recall against ground truth (extension)."""
        accelerated = self.dataset.accelerated_txids(service_name)
        return score_detector(self.dataset.blocks_of(pool), accelerated)

    # ------------------------------------------------------------------
    # §4.1 — congestion and delays
    # ------------------------------------------------------------------
    def commit_delays(
        self, include_censored: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """(fee-rates, delays-in-blocks) for observed transactions.

        With ``include_censored``, transactions the observer saw but
        that never committed within the measurement window contribute a
        right-censored delay (blocks remaining until the chain tip).
        Committed-only delays suffer survivor bias: the most-delayed
        low-fee transactions are exactly the ones still pending when
        the window closes.
        """
        block_times = self.dataset.block_times()
        tip = len(block_times)
        arrivals: list[float] = []
        heights: list[int] = []
        rates: list[float] = []
        for record in self.dataset.tx_records.values():
            if not record.observed:
                continue
            if record.commit_height is not None:
                arrivals.append(record.observer_arrival)
                heights.append(record.commit_height)
                rates.append(record.fee_rate)
            elif include_censored:
                arrivals.append(record.observer_arrival)
                heights.append(tip - 1)
                rates.append(record.fee_rate)
        if not arrivals:
            return np.empty(0), np.empty(0, dtype=np.int64)
        delays = commit_delays_in_blocks(arrivals, heights, block_times)
        return np.asarray(rates, dtype=float), delays

    def delay_summary(self) -> DelaySummary:
        """Headline commit-delay stats (Fig 4a text)."""
        _, delays = self.commit_delays()
        return DelaySummary.from_delays(delays)

    def delay_by_fee_band(
        self, include_censored: bool = False
    ) -> dict[str, np.ndarray]:
        """Delay distributions per fee band (Fig 5 / Fig 12)."""
        rates, delays = self.commit_delays(include_censored=include_censored)
        return delays_by_fee_band(rates, delays)

    def fee_rates_by_congestion_level(self) -> dict[str, np.ndarray]:
        """Fee-rates grouped by congestion at issuance (Fig 4c / Fig 11)."""
        source = self.dataset.size_series or self.dataset.snapshots
        records = [
            r for r in self.dataset.tx_records.values() if r.observed
        ]
        arrivals = [r.observer_arrival for r in records]
        rates = [r.fee_rate for r in records]
        return fee_rates_by_congestion(arrivals, rates, source)

    def congested_fraction(self) -> float:
        """Share of snapshot ticks with a >1 MvB backlog (Fig 3b)."""
        if self.dataset.size_series is not None:
            return self.dataset.size_series.congested_fraction()
        return self.dataset.snapshots.congested_fraction()
