"""The Auditor: the paper's methodology as one high-level API.

``Auditor`` wraps a :class:`~repro.datasets.dataset.Dataset` and exposes
each analysis of §4 and §5 as a method.  Example::

    auditor = Auditor(build_dataset_c(scale=0.2))
    for row in auditor.self_interest_table(top_n=10):
        print(row.target_pool, row.test.p_accelerate, row.sppe)

Everything here is a thin join between the dataset's derived mappings
and the pure analysis functions in the sibling modules, so each piece
stays independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar

import numpy as np

from ..chain.attribution import HashRateEstimate, estimate_hash_rates
from ..chain.block import Block
from ..chain.blockchain import Blockchain
from ..datasets.dataset import Dataset
from ..faults.quality import DataQualityReport, assess_quality
from ..mempool.snapshots import CONGESTION_BINS
from .acceleration import (
    TABLE4_THRESHOLDS,
    DetectionReport,
    DetectorScore,
    detection_sweep,
    score_detector,
)
from .congestion import (
    DelaySummary,
    commit_delays_in_blocks,
    delays_by_fee_band,
    fee_rates_by_congestion,
)
from .norms import CpfpFilter
from .ppe import (
    BlockPpe,
    PpeAccumulator,
    PpeSummary,
    SppeResult,
    chain_ppe,
    sppe,
    summarize_ppe,
)
from .stattests import (
    PrioritizationAccumulator,
    PrioritizationTestResult,
    prioritization_test,
)
from .vectorized import (
    ChainArrays,
    analyze_snapshots_multi,
    chain_ppe_arrays,
    per_transaction_sppe_arrays,
    scalar_mode,
    sppe_arrays,
)
from .violations import (
    SnapshotView,
    ViolationAccumulator,
    ViolationStats,
    analyze_snapshot,
    build_snapshot_view,
)


@dataclass(frozen=True)
class SelfInterestRow:
    """One Table 2 row: a (transaction owner, tested miner) pair."""

    owner_pool: str
    target_pool: str
    test: PrioritizationTestResult
    sppe: float
    tx_count: int


@dataclass(frozen=True)
class ScamRow:
    """One Table 3 row."""

    pool: str
    test: PrioritizationTestResult
    sppe: float


@dataclass
class AuditReport:
    """Everything :meth:`Auditor.audit` produces over one dataset.

    Fields degrade to None/empty instead of the audit raising; the
    ``quality`` report says how much to trust them, and ``notes``
    records every analysis that had to be skipped and why.
    """

    quality: DataQualityReport
    ppe: Optional[PpeSummary] = None
    delay: Optional[DelaySummary] = None
    violations: list[ViolationStats] = field(default_factory=list)
    self_interest: list[SelfInterestRow] = field(default_factory=list)
    scam: list[ScamRow] = field(default_factory=list)
    congested_fraction: float = float("nan")
    notes: list[str] = field(default_factory=list)


_T = TypeVar("_T")


class Auditor:
    """Run the paper's audits against one dataset.

    The auditor tolerates degraded inputs: partial mempool coverage,
    snapshot gaps, orphaned blocks and unmined pools produce degenerate
    results plus a :class:`DataQualityReport` — never an exception from
    :meth:`audit`.
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._quality: Optional[DataQualityReport] = None
        self._arrays: dict[CpfpFilter, ChainArrays] = {}

    def arrays(
        self, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> ChainArrays:
        """The dataset's chain packed for the vectorized path (cached)."""
        cached = self._arrays.get(cpfp_filter)
        if cached is None:
            cached = ChainArrays.from_dataset(self.dataset, cpfp_filter)
            self._arrays[cpfp_filter] = cached
        return cached

    def quality_report(self) -> DataQualityReport:
        """Measured coverage/gap statistics of this dataset (cached)."""
        if self._quality is None:
            self._quality = assess_quality(self.dataset)
        return self._quality

    # ------------------------------------------------------------------
    # §4.2.2 — in-block ordering
    # ------------------------------------------------------------------
    def ppe_distribution(
        self, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> list[BlockPpe]:
        """Per-block PPE over the whole chain (Fig 7a input)."""
        if scalar_mode():
            return chain_ppe(self.dataset.chain, cpfp_filter)
        return chain_ppe_arrays(self.arrays(cpfp_filter))

    def ppe_summary(self) -> PpeSummary:
        return summarize_ppe(self.ppe_distribution())

    def ppe_by_pool(self, pools: Sequence[str]) -> dict[str, list[BlockPpe]]:
        """PPE distributions for named pools (Fig 7b input)."""
        if scalar_mode():
            return {
                pool: chain_ppe(self.dataset.blocks_of(pool)) for pool in pools
            }
        arrays = self.arrays()
        return {
            pool: chain_ppe_arrays(arrays, block_mask=arrays.block_mask(pool))
            for pool in pools
        }

    # ------------------------------------------------------------------
    # §4.2.1 — pairwise selection violations
    # ------------------------------------------------------------------
    def snapshot_views(
        self,
        count: int = 30,
        rng: Optional[np.random.Generator] = None,
        exclude_cpfp: bool = False,
    ) -> list[SnapshotView]:
        """Join ``count`` random snapshots with commit data (Fig 6 input)."""
        rng = rng if rng is not None else np.random.default_rng(30)
        snapshots = self.dataset.snapshots.sample(count, rng)
        commit_heights = self.dataset.commit_heights()
        cpfp = self.dataset.cpfp_txids() if exclude_cpfp else None
        return [
            build_snapshot_view(snapshot, commit_heights, cpfp)
            for snapshot in snapshots
        ]

    def violation_stats(
        self,
        epsilon: float = 0.0,
        count: int = 30,
        exclude_cpfp: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> list[ViolationStats]:
        """Violation fractions per sampled snapshot at one ε."""
        views = self.snapshot_views(count, rng=rng, exclude_cpfp=exclude_cpfp)
        return [analyze_snapshot(view, epsilon) for view in views]

    def violation_stats_multi(
        self,
        epsilons: Sequence[float],
        count: int = 30,
        exclude_cpfp: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> dict[float, list[ViolationStats]]:
        """Violation stats for a whole ε grid over one snapshot sample.

        Joins the snapshots once and (on the vectorized path) reuses the
        ε-independent pair comparisons across the grid — the Fig 6 entry
        point.
        """
        views = self.snapshot_views(count, rng=rng, exclude_cpfp=exclude_cpfp)
        if scalar_mode():
            return {
                epsilon: [analyze_snapshot(view, epsilon) for view in views]
                for epsilon in epsilons
            }
        return analyze_snapshots_multi(views, epsilons)

    # ------------------------------------------------------------------
    # §5.1/§5.2 — differential prioritization
    # ------------------------------------------------------------------
    def prioritization_test_for(
        self, target_pool: str, txids: Iterable[str], coverage: float = 1.0
    ) -> PrioritizationTestResult:
        """Both directional binomial tests of ``target_pool`` on ``txids``.

        A pool with no attributable blocks (or one owning the whole
        chain) admits no binomial test — instead of raising, the result
        degenerates to x = y = 0 with p-values of 1.0, which downstream
        tables treat as "no evidence".
        """
        theta0 = self.dataset.hash_rate_of(target_pool)
        if not 0.0 < theta0 < 1.0:
            return PrioritizationTestResult(
                pool=target_pool,
                theta0=theta0,
                x=0,
                y=0,
                p_accelerate=1.0,
                p_decelerate=1.0,
                coverage=coverage,
            )
        miners = self.dataset.c_block_miners(txids)
        return prioritization_test(target_pool, theta0, miners, coverage=coverage)

    def observed_prioritization_test_for(
        self, target_pool: str, txids: Iterable[str]
    ) -> PrioritizationTestResult:
        """Prioritization test restricted to what the observer saw.

        A degraded observer cannot audit transactions it never
        recorded; this variant intersects the candidate set with the
        observed transactions and stamps the result with the resulting
        coverage, so detection power degrades with measurement loss the
        way it would for a real, lossy vantage point.
        """
        txids = set(txids)
        observed = {
            txid
            for txid in txids
            if (record := self.dataset.tx_records.get(txid)) is not None
            and record.observed
        }
        committed = sum(
            1
            for txid in txids
            if (record := self.dataset.tx_records.get(txid)) is not None
            and record.committed
        )
        committed_observed = sum(
            1
            for txid in observed
            if self.dataset.tx_records[txid].committed
        )
        coverage = committed_observed / committed if committed else 1.0
        return self.prioritization_test_for(
            target_pool, observed, coverage=max(coverage, 1e-9)
        )

    def sppe_for(
        self, target_pool: str, txids: Iterable[str]
    ) -> SppeResult:
        """SPPE of ``txids`` inside blocks mined by ``target_pool``.

        Always the scalar oracle: the result carries the full per-tx
        prediction records.  Table loops that only need the SPPE scalar
        go through :meth:`sppe_value` instead.
        """
        return sppe(self.dataset.blocks_of(target_pool), txids)

    def sppe_value(self, target_pool: str, txids: Iterable[str]) -> float:
        """SPPE of ``txids`` in ``target_pool``'s blocks, scalar only."""
        if scalar_mode():
            return self.sppe_for(target_pool, txids).sppe
        return sppe_arrays(self.arrays(), txids, pool=target_pool).sppe

    def self_interest_table(
        self,
        owner_pools: Optional[Sequence[str]] = None,
        target_pools: Optional[Sequence[str]] = None,
        min_target_share: float = 0.035,
        use_inferred: bool = True,
    ) -> list[SelfInterestRow]:
        """Reproduce Table 2: every (owner, target) pair's test + SPPE.

        ``use_inferred`` selects between the auditor's wallet-based
        inference of self-interest transactions (the paper's §5.2
        method) and the simulator's ground-truth labels.
        """
        estimates = self.dataset.hash_rates()
        if owner_pools is None:
            owner_pools = [
                est.pool for est in estimates if est.pool != "unknown"
            ][:20]
        if target_pools is None:
            target_pools = [
                est.pool
                for est in estimates
                if est.share >= min_target_share and est.pool != "unknown"
            ]
        if scalar_mode():
            return self._self_interest_table_scalar(
                owner_pools, target_pools, use_inferred
            )
        return self._self_interest_table_fast(
            owner_pools, target_pools, use_inferred
        )

    def _self_interest_table_scalar(
        self,
        owner_pools: Sequence[str],
        target_pools: Sequence[str],
        use_inferred: bool,
    ) -> list[SelfInterestRow]:
        """Reference Table 2 loop: per-pair scans, no shared state."""
        rows: list[SelfInterestRow] = []
        for owner in owner_pools:
            txids = (
                self.dataset.inferred_self_interest_txids(owner)
                if use_inferred
                else self.dataset.self_interest_txids(owner)
            )
            if not txids:
                continue
            for target in target_pools:
                test = self.prioritization_test_for(target, txids)
                if test.y == 0:
                    continue
                sppe_result = self.sppe_for(target, txids)
                rows.append(
                    SelfInterestRow(
                        owner_pool=owner,
                        target_pool=target,
                        test=test,
                        sppe=sppe_result.sppe,
                        tx_count=len(txids),
                    )
                )
        return rows

    def _self_interest_table_fast(
        self,
        owner_pools: Sequence[str],
        target_pools: Sequence[str],
        use_inferred: bool,
    ) -> list[SelfInterestRow]:
        """Vectorized Table 2 loop — same rows, shared per-owner work.

        Hash shares are read once, each owner's transaction set comes
        from the chain's address index (one pass, not one scan per
        owner), its c-block labels are computed once instead of once per
        target, and SPPE selects from the packed arrays via a
        precomputed match.  The binomial tails reuse the scalar oracle
        (they are cheap and this keeps p-values bit-identical).
        """
        arrays = self.arrays()
        shares = {est.pool: est.share for est in self.dataset.hash_rates()}
        rows: list[SelfInterestRow] = []
        for owner in owner_pools:
            txids = (
                self.dataset.inferred_self_interest_txids_indexed(owner)
                if use_inferred
                else self.dataset.self_interest_txids(owner)
            )
            if not txids:
                continue
            miners = self.dataset.c_block_miners(txids)
            matched = arrays.match_indices(txids)
            for target in target_pools:
                theta0 = shares.get(target, 0.0)
                if not 0.0 < theta0 < 1.0:
                    continue  # mirrors the degenerate y == 0 skip
                test = prioritization_test(target, theta0, miners)
                if test.y == 0:
                    continue
                sppe_result = sppe_arrays(
                    arrays, txids, pool=target, matched=matched
                )
                rows.append(
                    SelfInterestRow(
                        owner_pool=owner,
                        target_pool=target,
                        test=test,
                        sppe=sppe_result.sppe,
                        tx_count=len(txids),
                    )
                )
        return rows

    # ------------------------------------------------------------------
    # §5.3 — scam payments
    # ------------------------------------------------------------------
    def scam_table(
        self, target_pools: Optional[Sequence[str]] = None, min_share: float = 0.05
    ) -> list[ScamRow]:
        """Reproduce Table 3 over the dataset's scam transactions."""
        scam_txids = self.dataset.scam_txids()
        if target_pools is None:
            target_pools = [
                est.pool
                for est in self.dataset.hash_rates()
                if est.share >= min_share and est.pool != "unknown"
            ]
        rows = []
        for pool in target_pools:
            test = self.prioritization_test_for(pool, scam_txids)
            rows.append(
                ScamRow(
                    pool=pool,
                    test=test,
                    sppe=self.sppe_value(pool, scam_txids),
                )
            )
        return rows

    # ------------------------------------------------------------------
    # §5.4 — dark-fee acceleration
    # ------------------------------------------------------------------
    def dark_fee_sweep(
        self,
        pool: str,
        service_name: str = "",
        thresholds: Sequence[float] = TABLE4_THRESHOLDS,
        rng: Optional[np.random.Generator] = None,
    ) -> DetectionReport:
        """Reproduce Table 4 for one pool.

        The dataset's accelerated-transaction labels play the role of
        the service's public checker.
        """
        accelerated = self.dataset.accelerated_txids(service_name)
        sppe_by_txid = (
            None
            if scalar_mode()
            else per_transaction_sppe_arrays(self.arrays(), pool=pool)
        )
        return detection_sweep(
            self.dataset.blocks_of(pool),
            is_accelerated=lambda txid: txid in accelerated,
            pool=pool,
            thresholds=thresholds,
            rng=rng if rng is not None else np.random.default_rng(4),
            sppe_by_txid=sppe_by_txid,
        )

    def dark_fee_scores(
        self, pool: str, service_name: str = ""
    ) -> list[DetectorScore]:
        """Precision *and* recall against ground truth (extension)."""
        accelerated = self.dataset.accelerated_txids(service_name)
        sppe_by_txid = (
            None
            if scalar_mode()
            else per_transaction_sppe_arrays(self.arrays(), pool=pool)
        )
        return score_detector(
            self.dataset.blocks_of(pool), accelerated, sppe_by_txid=sppe_by_txid
        )

    # ------------------------------------------------------------------
    # §4.1 — congestion and delays
    # ------------------------------------------------------------------
    def commit_delays(
        self, include_censored: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """(fee-rates, delays-in-blocks) for observed transactions.

        With ``include_censored``, transactions the observer saw but
        that never committed within the measurement window contribute a
        right-censored delay (blocks remaining until the chain tip).
        Committed-only delays suffer survivor bias: the most-delayed
        low-fee transactions are exactly the ones still pending when
        the window closes.
        """
        block_times = self.dataset.block_times()
        tip = len(block_times)
        arrivals: list[float] = []
        heights: list[int] = []
        rates: list[float] = []
        for record in self.dataset.tx_records.values():
            if not record.observed:
                continue
            if record.commit_height is not None:
                arrivals.append(record.observer_arrival)
                heights.append(record.commit_height)
                rates.append(record.fee_rate)
            elif include_censored:
                arrivals.append(record.observer_arrival)
                heights.append(tip - 1)
                rates.append(record.fee_rate)
        if not arrivals:
            return np.empty(0), np.empty(0, dtype=np.int64)
        delays = commit_delays_in_blocks(arrivals, heights, block_times)
        return np.asarray(rates, dtype=float), delays

    def delay_summary(self) -> DelaySummary:
        """Headline commit-delay stats (Fig 4a text)."""
        _, delays = self.commit_delays()
        return DelaySummary.from_delays(delays)

    def delay_by_fee_band(
        self, include_censored: bool = False
    ) -> dict[str, np.ndarray]:
        """Delay distributions per fee band (Fig 5 / Fig 12)."""
        rates, delays = self.commit_delays(include_censored=include_censored)
        return delays_by_fee_band(rates, delays)

    def fee_rates_by_congestion_level(self) -> dict[str, np.ndarray]:
        """Fee-rates grouped by congestion at issuance (Fig 4c / Fig 11).

        An observer whose snapshot timeline is entirely missing (total
        downtime) yields empty groups rather than an error.
        """
        source = self.dataset.size_series or self.dataset.snapshots
        if len(source.times) == 0:
            return {label: np.empty(0) for label in CONGESTION_BINS}
        records = [
            r for r in self.dataset.tx_records.values() if r.observed
        ]
        arrivals = [r.observer_arrival for r in records]
        rates = [r.fee_rate for r in records]
        return fee_rates_by_congestion(arrivals, rates, source)

    def congested_fraction(self) -> float:
        """Share of snapshot ticks with a >1 MvB backlog (Fig 3b)."""
        if self.dataset.size_series is not None:
            return self.dataset.size_series.congested_fraction()
        return self.dataset.snapshots.congested_fraction()

    # ------------------------------------------------------------------
    # Degradation-tolerant facade
    # ------------------------------------------------------------------
    def _safe(
        self,
        label: str,
        compute: Callable[[], _T],
        fallback: _T,
        notes: list[str],
    ) -> _T:
        try:
            return compute()
        except Exception as exc:  # degradation tolerance: record, don't raise
            notes.append(f"{label}: skipped ({exc})")
            return fallback

    def audit(self, snapshot_count: int = 10) -> AuditReport:
        """Every audit section over this dataset, degradation-tolerant.

        Never raises on partial data: each section that cannot be
        computed is skipped with a note, and the attached
        :class:`DataQualityReport` quantifies how degraded the inputs
        were.
        """
        notes: list[str] = []
        report = AuditReport(quality=self.quality_report(), notes=notes)
        report.ppe = self._safe("ppe", self.ppe_summary, None, notes)
        report.delay = self._safe("delay", self.delay_summary, None, notes)
        report.violations = self._safe(
            "violations",
            lambda: self.violation_stats(count=snapshot_count),
            [],
            notes,
        )
        report.self_interest = self._safe(
            "self-interest", self.self_interest_table, [], notes
        )
        report.scam = self._safe("scam", self.scam_table, [], notes)
        report.congested_fraction = self._safe(
            "congestion", self.congested_fraction, float("nan"), notes
        )
        return report


# ----------------------------------------------------------------------
# Streaming (incremental) auditing
# ----------------------------------------------------------------------
class _StreamingDatasetView(Dataset):
    """A :class:`Dataset` whose chain-derived mappings come from folds.

    The batch :class:`Dataset` answers ``hash_rates``/``commit_heights``/
    ``cpfp_txids``/``c_block_miners``/``blocks_of`` with full scans of
    the chain or the record table.  This view delegates them to the
    accumulators a :class:`StreamingAuditor` maintains, so a query after
    block *h* touches only fold-time state — while every *other* Dataset
    method (labels, wallets, delays, summaries) keeps its inherited
    batch semantics over the same underlying objects.

    Equivalence with the batch answers over the folded prefix is the
    contract (see each accumulator's docstring); one deliberate
    exception is documented on :meth:`commit_heights`.
    """

    # The three accumulators are attached by StreamingAuditor right
    # after construction (they are plain attributes, not dataclass
    # fields, so __eq__/__repr__ never see them).
    _ppe_acc: PpeAccumulator
    _violation_acc: ViolationAccumulator
    _prio_acc: PrioritizationAccumulator

    def blocks_of(self, pool: str) -> list[Block]:
        return self._ppe_acc.pool_blocks(pool)

    def hash_rates(self) -> list[HashRateEstimate]:
        return estimate_hash_rates(self._prio_acc.labels)

    def hash_rate_of(self, pool: str) -> float:
        return self._prio_acc.share(pool)

    def commit_heights(self) -> dict[str, int]:
        """txid → height over *folded blocks* (not just recorded txs).

        Superset of the batch mapping when the chain holds transactions
        the observer never recorded; such transactions can never appear
        in a mempool snapshot, so every snapshot join is unaffected.
        """
        return dict(self._violation_acc.commit_heights)

    def cpfp_txids(self) -> frozenset[str]:
        return frozenset(self._violation_acc.cpfp_txids)

    def c_block_miners(self, txids: Iterable[str]) -> list[str]:
        return self._prio_acc.miners(self._violation_acc.heights_of(txids))


def stream_blocks(dataset: Dataset) -> Iterator[tuple[int, str, Block]]:
    """Yield (height, pool, block) in chain order — the replay feed.

    Blocks without an attribution fall back to the ``"unknown"`` label,
    mirroring what attribution produces for unmatched coinbases.
    """
    for block in dataset.chain:
        pool = dataset.block_pools.get(block.height, "unknown")
        yield block.height, pool, block


class StreamingAuditor(Auditor):
    """An :class:`Auditor` that folds one committed block at a time.

    Construction takes only the *observer context* — mempool snapshots
    and transaction records with their commit columns cleared — and an
    empty chain.  Each :meth:`fold_block` appends a block (validated for
    height/prev-hash continuity by :class:`Blockchain`), re-marks the
    committed records, and folds the three incremental accumulators.

    Equivalence contract (pinned by the streaming differential tests):
    after folding every block of a dataset in chain order, every query —
    including the full :meth:`Auditor.audit` — returns bit-identical
    results to a batch :class:`Auditor` over the original dataset.
    This holds in both scalar and vectorized dispatch modes because the
    accumulator-backed overrides reuse the exact batch functions over
    identical state, and the PR 3 oracle already pins scalar ==
    vectorized.
    """

    def __init__(
        self,
        name: str,
        snapshots,
        tx_records: dict[str, "TxRecord"],
        pool_wallets=None,
        size_series=None,
        metadata=None,
        cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    ) -> None:
        records = {
            txid: (
                replace(record, commit_height=None, commit_position=None)
                if record.commit_height is not None
                else record
            )
            for txid, record in tx_records.items()
        }
        view = _StreamingDatasetView(
            name=name,
            chain=Blockchain(),
            snapshots=snapshots,
            tx_records=records,
            block_pools={},
            pool_wallets=dict(pool_wallets or {}),
            size_series=size_series,
            metadata=dict(metadata or {}),
        )
        self._ppe_acc = PpeAccumulator(cpfp_filter)
        self._violation_acc = ViolationAccumulator()
        self._prio_acc = PrioritizationAccumulator()
        view._ppe_acc = self._ppe_acc
        view._violation_acc = self._violation_acc
        view._prio_acc = self._prio_acc
        super().__init__(view)

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> "StreamingAuditor":
        """Observer context of ``dataset`` with nothing folded yet.

        The dataset's chain is *not* copied: blocks are expected to
        arrive through :meth:`fold_block` (e.g. via
        :func:`stream_blocks`), which is exactly what the differential
        tests exploit.
        """
        return cls(
            name=dataset.name,
            snapshots=dataset.snapshots,
            tx_records=dataset.tx_records,
            pool_wallets=dataset.pool_wallets,
            size_series=dataset.size_series,
            metadata=dataset.metadata,
            cpfp_filter=cpfp_filter,
        )

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    @property
    def applied_height(self) -> int:
        """Height of the last folded block (-1 before the first)."""
        return self.dataset.chain.height

    @property
    def expected_height(self) -> int:
        """The only height :meth:`fold_block` will accept next."""
        return self.dataset.chain.height + 1

    def fold_block(self, block: Block, pool: str) -> None:
        """Fold one committed, attributed block into every accumulator.

        Appending validates chain linkage, so a gapped or reordered feed
        raises before any state is touched; afterwards the records of
        the block's transactions regain their commit columns exactly as
        batch curation set them (height + in-block position).
        """
        chain = self.dataset.chain
        chain.append(block)
        self.dataset.block_pools[block.height] = pool
        records = self.dataset.tx_records
        for position, tx in enumerate(block.transactions):
            record = records.get(tx.txid)
            if record is not None:
                records[tx.txid] = replace(
                    record,
                    commit_height=block.height,
                    commit_position=position,
                )
        self._ppe_acc.fold(block, pool)
        self._violation_acc.fold(block)
        self._prio_acc.fold(block.height, pool)
        # Chain-derived caches are stale the moment the tip moves.
        self._arrays.clear()
        self._quality = None

    # ------------------------------------------------------------------
    # Accumulator-backed query overrides
    # ------------------------------------------------------------------
    def ppe_distribution(
        self, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> list[BlockPpe]:
        if cpfp_filter is not self._ppe_acc.cpfp_filter:
            return super().ppe_distribution(cpfp_filter)
        return list(self._ppe_acc.results)

    def ppe_by_pool(self, pools: Sequence[str]) -> dict[str, list[BlockPpe]]:
        return {pool: list(self._ppe_acc.by_pool.get(pool, ())) for pool in pools}

    def snapshot_views(
        self,
        count: int = 30,
        rng: Optional[np.random.Generator] = None,
        exclude_cpfp: bool = False,
    ) -> list[SnapshotView]:
        rng = rng if rng is not None else np.random.default_rng(30)
        snapshots = self.dataset.snapshots.sample(count, rng)
        return [
            self._violation_acc.snapshot_view(snapshot, exclude_cpfp)
            for snapshot in snapshots
        ]

    def prioritization_test_for(
        self, target_pool: str, txids: Iterable[str], coverage: float = 1.0
    ) -> PrioritizationTestResult:
        return self._prio_acc.test_for(
            target_pool,
            self._violation_acc.heights_of(txids),
            coverage=coverage,
        )

    def sppe_for(self, target_pool: str, txids: Iterable[str]) -> SppeResult:
        return self._ppe_acc.sppe(target_pool, txids)

    def sppe_value(self, target_pool: str, txids: Iterable[str]) -> float:
        return self._ppe_acc.sppe(target_pool, txids).sppe

    def self_interest_table(
        self,
        owner_pools: Optional[Sequence[str]] = None,
        target_pools: Optional[Sequence[str]] = None,
        min_target_share: float = 0.035,
        use_inferred: bool = True,
    ) -> list[SelfInterestRow]:
        """Table 2 off accumulator state — no packed-array rebuild.

        Row-for-row identical to both batch variants: pool selection
        reads the accumulator-backed ``hash_rates``, each test uses the
        same (θ0, c-block miners) inputs, and the SPPE comes from the
        scalar oracle over the per-pool block lists (which the oracle
        pins equal to ``sppe_arrays``).
        """
        estimates = self.dataset.hash_rates()
        if owner_pools is None:
            owner_pools = [
                est.pool for est in estimates if est.pool != "unknown"
            ][:20]
        if target_pools is None:
            target_pools = [
                est.pool
                for est in estimates
                if est.share >= min_target_share and est.pool != "unknown"
            ]
        rows: list[SelfInterestRow] = []
        for owner in owner_pools:
            txids = (
                self.dataset.inferred_self_interest_txids_indexed(owner)
                if use_inferred
                else self.dataset.self_interest_txids(owner)
            )
            if not txids:
                continue
            heights = self._violation_acc.heights_of(txids)
            for target in target_pools:
                test = self._prio_acc.test_for(target, heights)
                if test.y == 0:
                    continue
                rows.append(
                    SelfInterestRow(
                        owner_pool=owner,
                        target_pool=target,
                        test=test,
                        sppe=self._ppe_acc.sppe(target, txids).sppe,
                        tx_count=len(txids),
                    )
                )
        return rows
