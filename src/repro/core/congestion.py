"""Congestion, commit delays, and fee-rate behaviour (§4.1).

These analyses join three measurement streams: per-transaction arrival
times at the observer, the chain's block discovery times, and the
observer's mempool-size snapshots.  From them we derive the paper's
§4.1 quantities: commit delays in blocks (Fig 4a, Fig 5, Fig 12),
fee-rate distributions (Fig 4b, Fig 10), and the fee-rate/congestion
coupling (Fig 4c, Fig 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..chain.constants import sat_per_vb_to_btc_per_kb
from ..mempool.snapshots import CONGESTION_BINS, SnapshotStore

#: Fee-rate band edges in sat/vB.  The paper's bands are <1e-4 BTC/KB
#: ("low"), 1e-4..1e-3 ("high"), and >1e-3 ("exorbitant"); 1e-4 BTC/KB
#: equals 10 sat/vB.
FEE_BAND_EDGES = (10.0, 100.0)
FEE_BAND_LABELS = ("low", "high", "exorbitant")


def fee_band(fee_rate_sat_vb: float) -> str:
    """Classify a fee-rate into the paper's three bands."""
    if fee_rate_sat_vb < FEE_BAND_EDGES[0]:
        return FEE_BAND_LABELS[0]
    if fee_rate_sat_vb <= FEE_BAND_EDGES[1]:
        return FEE_BAND_LABELS[1]
    return FEE_BAND_LABELS[2]


def commit_delays_in_blocks(
    arrival_times: Sequence[float],
    commit_heights: Sequence[int],
    block_times: Sequence[float],
) -> np.ndarray:
    """Delay of each transaction, measured in blocks.

    A transaction committed in the first block mined after it arrived
    waited 1 block; waiting k blocks means k−1 blocks passed it over.
    ``block_times[h]`` is the discovery time of height h.  Transactions
    observed only after their commit block (propagation races) clamp
    to 1.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    heights = np.asarray(commit_heights, dtype=np.int64)
    times = np.asarray(block_times, dtype=float)
    if arrivals.shape != heights.shape:
        raise ValueError("arrival_times and commit_heights must align")
    # Height of the first block strictly after each arrival.
    next_heights = np.searchsorted(times, arrivals, side="right")
    delays = heights - next_heights + 1
    return np.maximum(delays, 1)


@dataclass(frozen=True)
class DelaySummary:
    """Headline delay statistics quoted in §4.1.1."""

    tx_count: int
    next_block_fraction: float
    delayed_3plus_fraction: float
    delayed_10plus_fraction: float
    max_delay: int

    @classmethod
    def from_delays(cls, delays: np.ndarray) -> "DelaySummary":
        if delays.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"), 0)
        return cls(
            tx_count=int(delays.size),
            next_block_fraction=float(np.mean(delays <= 1)),
            delayed_3plus_fraction=float(np.mean(delays >= 3)),
            delayed_10plus_fraction=float(np.mean(delays >= 10)),
            max_delay=int(delays.max()),
        )


def delays_by_fee_band(
    fee_rates: Sequence[float], delays: np.ndarray
) -> dict[str, np.ndarray]:
    """Split commit delays by fee-rate band (Fig 5 / Fig 12)."""
    rates = np.asarray(fee_rates, dtype=float)
    if rates.shape != delays.shape:
        raise ValueError("fee_rates and delays must align")
    grouped: dict[str, np.ndarray] = {}
    for label in FEE_BAND_LABELS:
        mask = np.fromiter(
            (fee_band(rate) == label for rate in rates), dtype=bool, count=rates.size
        )
        grouped[label] = delays[mask]
    return grouped


def fee_rates_by_congestion(
    arrival_times: Sequence[float],
    fee_rates: Sequence[float],
    snapshots: SnapshotStore,
) -> dict[str, np.ndarray]:
    """Group fee-rates by the congestion level at issuance (Fig 4c/11).

    Each transaction is attributed to the congestion bin of the last
    snapshot at or before its arrival; transactions preceding the first
    snapshot are attributed to the first snapshot's bin.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    rates = np.asarray(fee_rates, dtype=float)
    if arrivals.shape != rates.shape:
        raise ValueError("arrival_times and fee_rates must align")
    times = np.asarray(snapshots.times, dtype=float)
    if times.size == 0:
        raise ValueError("snapshot store is empty")
    sizes = np.asarray(snapshots.sizes(), dtype=np.int64)
    indexes = np.clip(np.searchsorted(times, arrivals, side="right") - 1, 0, None)
    mb = 1_000_000
    edges = np.array([mb, 2 * mb, 4 * mb], dtype=np.int64)
    bin_codes = np.searchsorted(edges, sizes[indexes], side="left")
    grouped: dict[str, np.ndarray] = {}
    for code, label in enumerate(CONGESTION_BINS):
        grouped[label] = rates[bin_codes == code]
    return grouped


@dataclass(frozen=True)
class FeeRateSummary:
    """Distributional fee-rate facts quoted around Fig 4b."""

    tx_count: int
    below_minimum_fraction: float
    mid_band_fraction: float
    exorbitant_fraction: float
    median_btc_per_kb: float

    @classmethod
    def from_rates(cls, rates_sat_vb: Sequence[float]) -> "FeeRateSummary":
        rates = np.asarray(rates_sat_vb, dtype=float)
        if rates.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"))
        return cls(
            tx_count=int(rates.size),
            below_minimum_fraction=float(np.mean(rates < 1.0)),
            mid_band_fraction=float(
                np.mean((rates >= FEE_BAND_EDGES[0]) & (rates <= FEE_BAND_EDGES[1]))
            ),
            exorbitant_fraction=float(np.mean(rates > FEE_BAND_EDGES[1])),
            median_btc_per_kb=float(
                sat_per_vb_to_btc_per_kb(float(np.median(rates)))
            ),
        )


def stochastic_dominance_ok(
    better: np.ndarray, worse: np.ndarray, quantiles: Optional[Sequence[float]] = None
) -> bool:
    """Check first-order dominance: ``better`` ≤ ``worse`` at each quantile.

    Used by tests/benchmarks to assert the paper's qualitative claims
    ("fee-rates are strictly higher at higher congestion"; "higher fees
    ⇒ lower delays") without pinning fragile absolute numbers.
    """
    if better.size == 0 or worse.size == 0:
        return False
    probes = quantiles if quantiles is not None else (0.25, 0.5, 0.75)
    better_q = np.quantile(better, probes)
    worse_q = np.quantile(worse, probes)
    return bool(np.all(better_q <= worse_q))


def mempool_size_series(snapshots: SnapshotStore) -> tuple[np.ndarray, np.ndarray]:
    """(times, pending vsize) arrays — Fig 3c / Fig 9 series."""
    return (
        np.asarray(snapshots.times, dtype=float),
        np.asarray(snapshots.sizes(), dtype=np.int64),
    )


def congested_fraction_by(
    snapshots: SnapshotStore, threshold_vsize: int = 1_000_000
) -> float:
    """Fraction of snapshots with pending vsize above ``threshold_vsize``."""
    sizes = np.asarray(snapshots.sizes(), dtype=np.int64)
    if sizes.size == 0:
        return 0.0
    return float(np.mean(sizes > threshold_vsize))


def dataset_fee_rates_by_pool(
    commit_pool: Mapping[str, str], fee_rates: Mapping[str, float]
) -> dict[str, np.ndarray]:
    """Fee-rates of committed transactions grouped by committing pool.

    Powers Fig 10 (per-MPO fee-rate distributions, which the paper shows
    are near-identical across pools).
    """
    grouped: dict[str, list[float]] = {}
    for txid, pool in commit_pool.items():
        rate = fee_rates.get(txid)
        if rate is None:
            continue
        grouped.setdefault(pool, []).append(rate)
    return {pool: np.asarray(values, dtype=float) for pool, values in grouped.items()}
