"""Position prediction error (PPE) and its signed variant (SPPE).

PPE(B) — §4.2.2 — quantifies how far a block's observed ordering strays
from the fee-rate norm: the mean absolute difference between predicted
and observed percentile positions over the block's non-CPFP
transactions.  A block ordered exactly by fee-rate scores 0.

SPPE — §5.1.1 — keeps the sign: for a *chosen set* of transactions
committed by a miner, the mean of (predicted − observed) percentile
positions.  Large positive SPPE means the miner systematically lifted
those transactions toward the top of its blocks; large negative SPPE
means it buried them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..chain.block import Block
from .norms import CpfpFilter, PositionPrediction, predict_block_positions

# ----------------------------------------------------------------------
# Per-block prediction memo
# ----------------------------------------------------------------------
# Blocks are immutable, so their norm predictions are pure functions of
# (block, CPFP filter).  The per-pool Table 2 loop calls sppe() once per
# (owner, target) pair over the same chain; memoising here turns its
# repeated predict_block_positions calls into dictionary lookups.  The
# memo lives *on the block instance* (block_hash is not a safe key:
# txids do not commit to fee/vsize, so distinct blocks can share a
# hash), which also ties the memo's lifetime to the block's own.
_MEMO_ATTR = "_prediction_memo"
_TXIDS_KEY = "txids"


def _block_memo(block: Block) -> dict:
    memo = block.__dict__.get(_MEMO_ATTR)
    if memo is None:
        memo = {}
        object.__setattr__(block, _MEMO_ATTR, memo)
    return memo


def predictions_for(
    block: Block, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> tuple[PositionPrediction, ...]:
    """Memoised :func:`predict_block_positions` for one block instance."""
    memo = _block_memo(block)
    cached = memo.get(cpfp_filter)
    if cached is None:
        cached = tuple(predict_block_positions(block, cpfp_filter))
        memo[cpfp_filter] = cached
    return cached


def _block_txids(block: Block) -> frozenset[str]:
    """Memoised full txid set of a block (pre-filter)."""
    memo = _block_memo(block)
    cached = memo.get(_TXIDS_KEY)
    if cached is None:
        cached = frozenset(tx.txid for tx in block.transactions)
        memo[_TXIDS_KEY] = cached
    return cached


def clear_prediction_cache() -> None:
    """Compatibility hook for benchmark cells.

    Memos are stored on block instances, so they vanish with the blocks
    themselves (e.g. when the dataset memory cache is cleared); there is
    no process-global state left to drop.
    """


@dataclass(frozen=True)
class BlockPpe:
    """PPE of one block plus the context Fig 7 aggregates."""

    height: int
    block_hash: str
    tx_count: int
    ppe: float


def block_ppe(
    block: Block, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> Optional[BlockPpe]:
    """PPE of ``block``, or None when no transaction survives filtering.

    The paper computes Fig 7 over the 99.55% of blocks with at least one
    non-CPFP transaction; returning None lets callers apply the same
    exclusion explicitly.
    """
    predictions = predictions_for(block, cpfp_filter)
    if not predictions:
        return None
    errors = [prediction.error for prediction in predictions]
    return BlockPpe(
        height=block.height,
        block_hash=block.block_hash,
        tx_count=len(predictions),
        ppe=float(np.mean(errors)),
    )


def chain_ppe(
    blocks: Iterable[Block], cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> list[BlockPpe]:
    """PPE for every block that has at least one non-CPFP transaction."""
    results = []
    for block in blocks:
        result = block_ppe(block, cpfp_filter)
        if result is not None:
            results.append(result)
    return results


@dataclass(frozen=True)
class PpeSummary:
    """Distributional summary of PPE over a set of blocks (Fig 7a text)."""

    block_count: int
    mean: float
    std: float
    median: float
    percentile_80: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "PpeSummary":
        if not len(values):
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"))
        array = np.asarray(values, dtype=float)
        return cls(
            block_count=int(array.size),
            mean=float(array.mean()),
            std=float(array.std(ddof=0)),
            median=float(np.median(array)),
            percentile_80=float(np.percentile(array, 80)),
        )


def summarize_ppe(results: Sequence[BlockPpe]) -> PpeSummary:
    """Aggregate per-block PPE values into the Fig 7 headline numbers."""
    return PpeSummary.from_values([result.ppe for result in results])


@dataclass(frozen=True)
class SppeResult:
    """SPPE of a transaction set within one miner's blocks."""

    tx_count: int
    sppe: float
    per_tx: tuple[PositionPrediction, ...]

    @property
    def accelerated_fraction(self) -> float:
        """Share of the set observed above its predicted position.

        An empty set is *no evidence*, not "no acceleration": it
        returns ``nan``, matching :func:`sppe`'s degenerate result, so
        Table 2/4-style aggregations cannot mistake an unmatched
        transaction set for a well-behaved pool.
        """
        if not self.per_tx:
            return float("nan")
        lifted = sum(1 for p in self.per_tx if p.signed_error > 0)
        return lifted / len(self.per_tx)


def sppe(
    blocks: Iterable[Block],
    txids: Iterable[str],
    cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
) -> SppeResult:
    """SPPE of ``txids`` over the blocks that committed them.

    Only blocks containing at least one target transaction are scanned;
    targets that were filtered out as CPFP children contribute nothing
    (their position is legitimately off-norm).
    """
    target = set(txids)
    matched: list[PositionPrediction] = []
    for block in blocks:
        if not target.intersection(_block_txids(block)):
            continue
        for prediction in predictions_for(block, cpfp_filter):
            if prediction.txid in target:
                matched.append(prediction)
    if not matched:
        return SppeResult(tx_count=0, sppe=float("nan"), per_tx=())
    mean_signed = float(np.mean([p.signed_error for p in matched]))
    return SppeResult(tx_count=len(matched), sppe=mean_signed, per_tx=tuple(matched))


def per_transaction_sppe(
    blocks: Iterable[Block], cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
) -> dict[str, float]:
    """Signed prediction error of every committed transaction.

    This per-transaction view powers the dark-fee detector (§5.4.2):
    Table 4 thresholds on exactly this quantity.
    """
    errors: dict[str, float] = {}
    for block in blocks:
        for prediction in predictions_for(block, cpfp_filter):
            errors[prediction.txid] = prediction.signed_error
    return errors


class PpeAccumulator:
    """Incremental PPE/SPPE state: fold one committed block at a time.

    The batch path scans the whole chain per question (``chain_ppe``
    walks every block; ``blocks_of(pool)`` re-filters the chain per
    pool).  A long-running audit service cannot afford either, so this
    accumulator maintains, per fold:

    * the chain-order ``BlockPpe`` list (identical to
      ``chain_ppe(blocks_so_far)`` — same function, same order),
    * the same list partitioned by attributed pool (Fig 7b),
    * per-pool chain-order block lists, so an SPPE query over a pool
      touches only that pool's blocks and reuses the per-block
      prediction memos built at fold time.

    Equivalence with the batch functions is the load-bearing contract:
    ``tests/test_streaming_differential.py`` pins bit-identical results
    over full datasets.
    """

    def __init__(self, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN) -> None:
        self.cpfp_filter = cpfp_filter
        #: Chain-order per-block PPE — ``chain_ppe`` of the folded prefix.
        self.results: list[BlockPpe] = []
        #: The same results keyed by attributed pool.
        self.by_pool: dict[str, list[BlockPpe]] = {}
        self._pool_blocks: dict[str, list[Block]] = {}
        self.block_count = 0

    def fold(self, block: Block, pool: Optional[str] = None) -> Optional[BlockPpe]:
        """Fold one committed block; returns its BlockPpe (None if empty).

        Folding also warms the block's prediction memo, so later SPPE
        queries over the same block are dictionary lookups.
        """
        self.block_count += 1
        result = block_ppe(block, self.cpfp_filter)
        if result is not None:
            self.results.append(result)
            if pool is not None:
                self.by_pool.setdefault(pool, []).append(result)
        if pool is not None:
            self._pool_blocks.setdefault(pool, []).append(block)
        return result

    def pool_blocks(self, pool: str) -> list[Block]:
        """Chain-order blocks attributed to ``pool`` among folded blocks."""
        return list(self._pool_blocks.get(pool, ()))

    def summary(self) -> PpeSummary:
        """Fig 7a summary over everything folded so far."""
        return summarize_ppe(self.results)

    def pool_summary(self, pool: str) -> PpeSummary:
        return summarize_ppe(self.by_pool.get(pool, []))

    def sppe(self, pool: str, txids: Iterable[str]) -> SppeResult:
        """SPPE of ``txids`` within ``pool``'s folded blocks.

        Identical to ``sppe(dataset.blocks_of(pool), txids)`` on the
        folded prefix: the per-pool lists preserve chain order.
        """
        return sppe(self._pool_blocks.get(pool, ()), txids, self.cpfp_filter)

    def per_transaction_sppe(self, pool: str) -> dict[str, float]:
        """Per-transaction signed errors within ``pool``'s folded blocks."""
        return per_transaction_sppe(
            self._pool_blocks.get(pool, ()), self.cpfp_filter
        )
