"""Dark-fee (accelerated) transaction detection (§5.4.2).

An accelerated transaction pays its real fee off-chain, so on-chain it
looks cheap — yet the colluding pool commits it at the very top of a
block.  Its *signed* position prediction error is therefore extreme:
predicted near the bottom (large percentile), observed near the top
(small percentile).  The detector thresholds per-transaction SPPE and,
as in the paper, verifies candidates against the acceleration service's
public checker; Table 4 is the resulting precision sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..chain.block import Block
from .norms import CpfpFilter
from .ppe import per_transaction_sppe

#: Thresholds reported in Table 4, in percent.
TABLE4_THRESHOLDS = (100.0, 99.0, 90.0, 50.0, 1.0)


@dataclass(frozen=True)
class DetectionRow:
    """One row of Table 4: candidates above a threshold, and precision."""

    threshold: float
    candidate_count: int
    accelerated_count: int

    @property
    def precision(self) -> float:
        """Fraction of candidates confirmed accelerated ("% acc. txs")."""
        if self.candidate_count == 0:
            return float("nan")
        return self.accelerated_count / self.candidate_count


@dataclass(frozen=True)
class DetectionReport:
    """A full SPPE-threshold sweep plus the random-sample control."""

    pool: str
    rows: tuple[DetectionRow, ...]
    control_sample_size: int
    control_accelerated: int

    @property
    def control_rate(self) -> float:
        """Accelerated fraction in a random sample (the paper found 0)."""
        if self.control_sample_size == 0:
            return float("nan")
        return self.control_accelerated / self.control_sample_size


def candidate_txids(
    sppe_by_txid: dict[str, float], threshold: float
) -> list[str]:
    """Transactions whose signed error meets or exceeds ``threshold``."""
    return [txid for txid, error in sppe_by_txid.items() if error >= threshold]


def detection_sweep(
    blocks: Iterable[Block],
    is_accelerated: Callable[[str], bool],
    pool: str = "",
    thresholds: Sequence[float] = TABLE4_THRESHOLDS,
    control_sample_size: int = 1000,
    rng: Optional[np.random.Generator] = None,
    cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    sppe_by_txid: Optional[dict[str, float]] = None,
) -> DetectionReport:
    """Reproduce Table 4 for one pool's blocks.

    ``is_accelerated`` plays the role of BTC.com's public acceleration
    checker.  The control draws a uniform random sample of all committed
    transactions and reports how many were accelerated — the paper's
    sanity check that high SPPE, not chance, flags acceleration.

    ``sppe_by_txid`` lets callers supply the per-transaction signed
    errors precomputed (e.g. from packed arrays); it must be in block
    order, since the control sample indexes into its insertion order.
    """
    blocks = list(blocks)
    if sppe_by_txid is None:
        sppe_by_txid = per_transaction_sppe(blocks, cpfp_filter)
    rows = []
    for threshold in thresholds:
        candidates = candidate_txids(sppe_by_txid, threshold)
        confirmed = sum(1 for txid in candidates if is_accelerated(txid))
        rows.append(
            DetectionRow(
                threshold=threshold,
                candidate_count=len(candidates),
                accelerated_count=confirmed,
            )
        )
    all_txids = list(sppe_by_txid)
    control_hits = 0
    sample_size = min(control_sample_size, len(all_txids))
    if sample_size and rng is not None:
        sample = rng.choice(len(all_txids), size=sample_size, replace=False)
        control_hits = sum(
            1 for index in sample if is_accelerated(all_txids[int(index)])
        )
    return DetectionReport(
        pool=pool,
        rows=tuple(rows),
        control_sample_size=sample_size,
        control_accelerated=control_hits,
    )


@dataclass(frozen=True)
class DetectorScore:
    """Precision/recall of the SPPE detector against full ground truth.

    The paper could only measure precision (querying the checker per
    candidate); with simulated ground truth we can score recall too —
    an extension experiment.
    """

    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else float("nan")

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else float("nan")


def score_detector(
    blocks: Iterable[Block],
    accelerated_truth: frozenset[str],
    thresholds: Sequence[float] = TABLE4_THRESHOLDS,
    cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    sppe_by_txid: Optional[dict[str, float]] = None,
) -> list[DetectorScore]:
    """Precision *and recall* of the SPPE detector at each threshold."""
    blocks = list(blocks)
    if sppe_by_txid is None:
        sppe_by_txid = per_transaction_sppe(blocks, cpfp_filter)
    committed_truth = accelerated_truth & set(sppe_by_txid)
    scores = []
    for threshold in thresholds:
        flagged = set(candidate_txids(sppe_by_txid, threshold))
        tp = len(flagged & committed_truth)
        scores.append(
            DetectorScore(
                threshold=threshold,
                true_positives=tp,
                false_positives=len(flagged) - tp,
                false_negatives=len(committed_truth) - tp,
            )
        )
    return scores
