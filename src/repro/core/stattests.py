"""Statistical tests for differential transaction prioritization (§5.1).

Core idea: if pool *m* (hash share θ0) treats a transaction set *c* like
everyone else, then each block containing a c-transaction ("c-block")
is an m-block with probability θ0.  Observing x m-blocks among y
c-blocks, the acceleration test computes p = P(B ≥ x) and the
deceleration test p = P(B ≤ x) for B ~ Binomial(y, θ0); p below the
test size α (the paper uses 0.01, and reads p < 0.001 as strong
evidence) rejects neutrality.

Implementations are from scratch in log space (log-gamma binomial
coefficients with streaming log-sum-exp) so p-values stay accurate far
into the tails; scipy is used only in the cross-validation tests and in
Fisher's method (χ² survival function).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from scipy.stats import chi2

#: Test size used throughout the paper.
DEFAULT_ALPHA = 0.01

#: p-value the paper treats as strong evidence of misbehaviour.
STRONG_EVIDENCE_P = 0.001


def log_binom_coefficient(n: int, k: int) -> float:
    """log C(n, k) via log-gamma."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_binom_pmf(k: int, n: int, p: float) -> float:
    """log P(B = k) for B ~ Binomial(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if k < 0 or k > n:
        return float("-inf")
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    return (
        log_binom_coefficient(n, k)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def _log_sum_exp(values: Iterable[float]) -> float:
    values = [v for v in values if v != float("-inf")]
    if not values:
        return float("-inf")
    peak = max(values)
    return peak + math.log(sum(math.exp(v - peak) for v in values))


def _direct_upper(x: int, n: int, p: float) -> float:
    """P(B ≥ x) by direct log-space summation of k = x..n."""
    log_terms = [log_binom_pmf(k, n, p) for k in range(x, n + 1)]
    return min(1.0, math.exp(_log_sum_exp(log_terms)))


def _direct_lower(x: int, n: int, p: float) -> float:
    """P(B ≤ x) by direct log-space summation of k = 0..x."""
    log_terms = [log_binom_pmf(k, n, p) for k in range(0, x + 1)]
    return min(1.0, math.exp(_log_sum_exp(log_terms)))


def binom_tail_upper(x: int, n: int, p: float) -> float:
    """P(B ≥ x) — the acceleration-test p-value (exact).

    The *minority-mass* tail (relative to the mean np) is always summed
    directly; the other side is obtained by complementing the directly
    summed opposite tail.  Complementing a tail whose mass is ~1 would
    lose the answer to floating-point cancellation — exactly the regime
    Table 2 lives in (x far above np, p-values below 1e-100).

    Degenerate rates short-circuit: at p = 0 all mass sits at B = 0 and
    at p = 1 all mass sits at B = n, so the tails are exactly 0 or 1
    without routing a point mass through log-space summation.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if x <= 0:
        return 1.0
    if x > n:
        return 0.0
    if p == 0.0:
        return 0.0  # x >= 1 but B = 0 surely
    if p == 1.0:
        return 1.0  # x <= n and B = n surely
    if x > n * p:
        return _direct_upper(x, n, p)
    return max(0.0, 1.0 - _direct_lower(x - 1, n, p))


def binom_tail_lower(x: int, n: int, p: float) -> float:
    """P(B ≤ x) — the deceleration-test p-value (exact).

    Degenerate rates short-circuit exactly as in
    :func:`binom_tail_upper`.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if x < 0:
        return 0.0
    if x >= n:
        return 1.0
    if p == 0.0:
        return 1.0  # x >= 0 and B = 0 surely
    if p == 1.0:
        return 0.0  # x < n but B = n surely
    if x < n * p:
        return _direct_lower(x, n, p)
    return max(0.0, 1.0 - _direct_upper(x + 1, n, p))


def _standard_normal_cdf(z: float) -> float:
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def normal_tail_upper(x: int, n: int, p: float) -> float:
    """Normal approximation of P(B ≥ x) with continuity correction.

    §5.1.3 suggests this for large y; note the paper's displayed formula
    lacks the survival complement — we implement the statistically
    correct version 1 − Φ((x − ½ − np)/σ).
    """
    if n == 0:
        return 1.0
    sigma = math.sqrt(n * p * (1.0 - p))
    if sigma == 0.0:
        return binom_tail_upper(x, n, p)
    z = (x - 0.5 - n * p) / sigma
    return 1.0 - _standard_normal_cdf(z)


def normal_tail_lower(x: int, n: int, p: float) -> float:
    """Normal approximation of P(B ≤ x) with continuity correction."""
    if n == 0:
        return 1.0
    sigma = math.sqrt(n * p * (1.0 - p))
    if sigma == 0.0:
        return binom_tail_lower(x, n, p)
    z = (x + 0.5 - n * p) / sigma
    return _standard_normal_cdf(z)


def fishers_method(p_values: Sequence[float]) -> float:
    """Combine independent p-values (Fisher 1948), for windowed tests.

    §5.1.3 proposes splitting long time windows into shorter ones with
    near-constant hash rates and combining per-window p-values this way.
    """
    if not p_values:
        raise ValueError("need at least one p-value")
    clipped = [min(max(p, 1e-300), 1.0) for p in p_values]
    statistic = -2.0 * sum(math.log(p) for p in clipped)
    return float(chi2.sf(statistic, df=2 * len(clipped)))


@dataclass(frozen=True)
class PrioritizationTestResult:
    """One row of Table 2 / Table 3.

    ``coverage`` records the fraction of committed c-candidates the
    degraded observer actually measured (1.0 on clean data).  Under
    random measurement thinning the observed c-blocks are an unbiased
    subsample of the true ones, so the exact binomial tails evaluated
    at the *observed* (x, y) remain valid p-values — the loss shows up
    as a smaller effective sample size y, i.e. reduced power, not bias.
    The field preserves that context for reporting.
    """

    pool: str
    theta0: float
    x: int
    y: int
    p_accelerate: float
    p_decelerate: float
    coverage: float = 1.0

    def accelerates(self, alpha: float = STRONG_EVIDENCE_P) -> bool:
        """True when acceleration is significant at level ``alpha``."""
        return self.p_accelerate < alpha

    def decelerates(self, alpha: float = STRONG_EVIDENCE_P) -> bool:
        """True when deceleration is significant at level ``alpha``."""
        return self.p_decelerate < alpha

    @property
    def observed_share(self) -> float:
        """Observed fraction of c-blocks mined by the pool."""
        return self.x / self.y if self.y else float("nan")


def prioritization_test(
    pool: str,
    theta0: float,
    c_block_miners: Sequence[str],
    use_normal_approximation: bool = False,
    coverage: float = 1.0,
) -> PrioritizationTestResult:
    """Run both directional tests for ``pool`` over labelled c-blocks.

    ``c_block_miners`` is the miner label of every block containing at
    least one c-transaction (duplicates meaningless: each *block* counts
    once; deduplicate before calling if needed).

    ``coverage`` is the measured fraction of committed c-candidates the
    observer saw; pass it when testing over a degraded dataset so the
    result records its own effective-sample-size context.  The p-values
    are already evaluated at the observed (x, y), which under random
    thinning stay exact — see :class:`PrioritizationTestResult`.
    """
    if not 0.0 < theta0 < 1.0:
        raise ValueError(f"theta0 must be in (0,1), got {theta0}")
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0,1], got {coverage}")
    y = len(c_block_miners)
    x = sum(1 for miner in c_block_miners if miner == pool)
    if use_normal_approximation:
        p_up = normal_tail_upper(x, y, theta0)
        p_down = normal_tail_lower(x, y, theta0)
    else:
        p_up = binom_tail_upper(x, y, theta0)
        p_down = binom_tail_lower(x, y, theta0)
    return PrioritizationTestResult(
        pool=pool,
        theta0=theta0,
        x=x,
        y=y,
        p_accelerate=p_up,
        p_decelerate=p_down,
        coverage=coverage,
    )


def windowed_prioritization_test(
    pool: str,
    windows: Sequence[tuple[float, Sequence[str]]],
    direction: str = "accelerate",
) -> float:
    """Combine per-window tests via Fisher's method (§5.1.3 extension).

    ``windows`` maps each window to (θ0 within the window, c-block miner
    labels within the window).  Windows with no c-blocks are skipped.
    Returns the combined p-value for the requested direction.
    """
    if direction not in ("accelerate", "decelerate"):
        raise ValueError("direction must be 'accelerate' or 'decelerate'")
    p_values = []
    for theta0, miners in windows:
        if not miners:
            continue
        result = prioritization_test(pool, theta0, miners)
        p_values.append(
            result.p_accelerate if direction == "accelerate" else result.p_decelerate
        )
    if not p_values:
        raise ValueError("no window contained c-blocks")
    if len(p_values) == 1:
        return p_values[0]
    return fishers_method(p_values)


class PrioritizationAccumulator:
    """Incremental hash-share and c-block state for the binomial tests.

    The batch path recomputes θ0 from a full ``block_pools`` scan and
    relabels c-blocks from a full record scan per query.  Folding one
    attributed block at a time maintains the same quantities:

    * ``labels`` — pool label per folded block in chain order, exactly
      the sequence ``[block_pools[h] for h in sorted(block_pools)]``
      the batch path feeds to ``estimate_hash_rates``;
    * per-pool block counts, so θ0 = count/total uses the identical
      division the batch ``HashRateEstimate`` construction performs.

    ``test_for`` then runs :func:`prioritization_test` over miner labels
    resolved from commit heights — the same sorted-heights walk as the
    batch ``Dataset.c_block_miners`` — giving bit-identical (θ0, x, y)
    inputs and therefore bit-identical p-values.
    """

    def __init__(self) -> None:
        #: Pool label of each folded block, in fold (= chain) order.
        self.labels: list[str] = []
        self._by_height: dict[int, str] = {}
        self._counts: dict[str, int] = {}

    @property
    def block_count(self) -> int:
        return len(self.labels)

    def fold(self, height: int, pool: str) -> None:
        """Fold one attributed block."""
        self.labels.append(pool)
        self._by_height[height] = pool
        self._counts[pool] = self._counts.get(pool, 0) + 1

    def share(self, pool: str) -> float:
        """θ0 of ``pool`` over the folded prefix (0.0 if absent).

        Identical arithmetic to the batch estimate: blocks/total in one
        division.
        """
        count = self._counts.get(pool)
        if not count:
            return 0.0
        return count / len(self.labels)

    def miners(self, heights: Iterable[int]) -> list[str]:
        """Miner labels of the given c-block heights, sorted by height."""
        return [
            self._by_height[h]
            for h in sorted(set(heights))
            if h in self._by_height
        ]

    def test_for(
        self,
        pool: str,
        c_block_heights: Iterable[int],
        coverage: float = 1.0,
    ) -> PrioritizationTestResult:
        """Both directional tests for ``pool`` at the current fold.

        Degenerate θ0 (pool absent, or sole miner) yields the same
        evidence-free x = y = 0, p = 1.0 row the batch Auditor reports.
        """
        theta0 = self.share(pool)
        if not 0.0 < theta0 < 1.0:
            return PrioritizationTestResult(
                pool=pool,
                theta0=theta0,
                x=0,
                y=0,
                p_accelerate=1.0,
                p_decelerate=1.0,
                coverage=coverage,
            )
        return prioritization_test(
            pool, theta0, self.miners(c_block_heights), coverage=coverage
        )


def c_blocks_for(
    block_miners: Mapping[int, str],
    commit_heights: Iterable[Optional[int]],
) -> list[str]:
    """Miner labels of blocks containing at least one target transaction.

    ``block_miners`` maps height → pool; ``commit_heights`` are the
    commit heights of the c-transactions (None entries, i.e. never
    committed, are skipped).  Each block counts once regardless of how
    many c-transactions it holds, per the definition of a c-block.
    """
    heights = {h for h in commit_heights if h is not None}
    return [block_miners[h] for h in sorted(heights) if h in block_miners]
