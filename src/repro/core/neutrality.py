"""Chain-neutrality metrics and third-party norm verification (§6.1).

Two of the paper's closing questions get working answers here:

* *"What are the desired prioritization norms?"* —
  :func:`evaluate_norm` plays a candidate ordering policy over a
  recorded workload and measures what users and miners each get out of
  it: delay quantiles per fee band, a starvation measure, delay
  inequality (Gini), and miner revenue relative to the fee-rate
  optimum.

* *"How can a third-party observer verify that a miner adheres to a
  declared norm?"* — :class:`NormVerifier` replays a miner's blocks
  against the declared policy applied to a reconstructed pending set
  and scores the agreement, a practical instance of the statistical
  verification the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..chain.block import Block
from ..chain.constants import MAX_BLOCK_VSIZE
from ..mempool.mempool import MempoolEntry
from .congestion import FEE_BAND_LABELS, fee_band


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini inequality index of a non-negative sample (0 = equal)."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return float("nan")
    if np.any(array < 0):
        raise ValueError("gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, array.size + 1)
    return float((2.0 * (ranks * array).sum()) / (array.size * total) - (array.size + 1) / array.size)


@dataclass(frozen=True)
class NormEvaluation:
    """What one candidate norm delivers, measured over a replay."""

    norm: str
    blocks: int
    committed: int
    pending_at_end: int
    mean_delay: float
    p99_delay: float
    max_delay: int
    starved_fraction: float
    delay_gini: float
    delay_by_band: dict[str, float]
    revenue: int
    revenue_vs_feerate_optimum: float


class NormReplayer:
    """Replay a recorded arrival stream under a candidate ordering norm.

    The replay holds mining times fixed (same block schedule) and swaps
    only the ordering policy, so differences in outcomes are caused by
    the norm alone.
    """

    def __init__(
        self,
        arrivals: Sequence[tuple[float, "object"]],
        block_times: Sequence[float],
        max_block_vsize: int = MAX_BLOCK_VSIZE,
        coinbase_vsize: int = 200,
    ) -> None:
        self._arrivals = sorted(arrivals, key=lambda pair: pair[0])
        self._block_times = list(block_times)
        self._max_vsize = max_block_vsize
        self._coinbase_vsize = coinbase_vsize

    def replay(self, policy, starvation_blocks: int = 50) -> dict:
        """Run the policy over the stream; return raw outcome data."""
        pending: dict[str, MempoolEntry] = {}
        commit_delay: dict[str, int] = {}
        commit_band: dict[str, str] = {}
        arrival_height: dict[str, int] = {}
        revenue = 0
        index = 0
        for height, block_time in enumerate(self._block_times):
            while index < len(self._arrivals) and self._arrivals[index][0] <= block_time:
                time, tx = self._arrivals[index]
                pending[tx.txid] = MempoolEntry(tx=tx, arrival_time=time)
                arrival_height[tx.txid] = height
                index += 1
            template = policy.build(
                list(pending.values()),
                max_vsize=self._max_vsize,
                reserved_vsize=self._coinbase_vsize,
            )
            revenue += template.total_fee
            for tx in template.transactions:
                commit_delay[tx.txid] = height - arrival_height[tx.txid] + 1
                commit_band[tx.txid] = fee_band(tx.fee_rate)
                del pending[tx.txid]
        starved = sum(
            1
            for txid, entry in pending.items()
            if len(self._block_times) - arrival_height[txid] >= starvation_blocks
        )
        return {
            "delays": commit_delay,
            "bands": commit_band,
            "pending": pending,
            "starved": starved,
            "revenue": revenue,
        }


def evaluate_norm(
    name: str,
    policy,
    replayer: NormReplayer,
    feerate_revenue: Optional[int] = None,
    starvation_blocks: int = 50,
) -> NormEvaluation:
    """Measure a candidate norm's user- and miner-facing outcomes."""
    outcome = replayer.replay(policy, starvation_blocks=starvation_blocks)
    delays = np.asarray(list(outcome["delays"].values()), dtype=float)
    bands = outcome["bands"]
    by_band: dict[str, float] = {}
    for label in FEE_BAND_LABELS:
        band_delays = [
            outcome["delays"][txid] for txid, b in bands.items() if b == label
        ]
        by_band[label] = float(np.median(band_delays)) if band_delays else float("nan")
    total_seen = len(outcome["delays"]) + len(outcome["pending"])
    starved_fraction = outcome["starved"] / total_seen if total_seen else 0.0
    return NormEvaluation(
        norm=name,
        blocks=len(replayer._block_times),
        committed=len(outcome["delays"]),
        pending_at_end=len(outcome["pending"]),
        mean_delay=float(delays.mean()) if delays.size else float("nan"),
        p99_delay=float(np.percentile(delays, 99)) if delays.size else float("nan"),
        max_delay=int(delays.max()) if delays.size else 0,
        starved_fraction=starved_fraction,
        delay_gini=gini_coefficient(delays) if delays.size else float("nan"),
        delay_by_band=by_band,
        revenue=outcome["revenue"],
        revenue_vs_feerate_optimum=(
            outcome["revenue"] / feerate_revenue if feerate_revenue else float("nan")
        ),
    )


# ----------------------------------------------------------------------
# Third-party norm verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VerificationResult:
    """How well a miner's observed blocks match a declared norm."""

    pool: str
    norm: str
    blocks_checked: int
    #: Mean Jaccard similarity between observed and recomputed block
    #: contents (selection agreement).
    selection_agreement: float
    #: Mean normalised Kendall-tau-style agreement of the common
    #: transactions' relative order (1 = identical order).
    ordering_agreement: float

    def conforms(self, threshold: float = 0.8) -> bool:
        """Verdict at a chosen agreement threshold."""
        return (
            self.selection_agreement >= threshold
            and self.ordering_agreement >= threshold
        )


def _order_agreement(observed: Sequence[str], recomputed: Sequence[str]) -> float:
    """1 − normalised inversion count between two orderings."""
    common = [txid for txid in observed if txid in set(recomputed)]
    if len(common) < 2:
        return 1.0
    position = {txid: i for i, txid in enumerate(recomputed)}
    ranks = [position[txid] for txid in common]
    inversions = sum(
        1
        for i in range(len(ranks))
        for j in range(i + 1, len(ranks))
        if ranks[i] > ranks[j]
    )
    max_inversions = len(ranks) * (len(ranks) - 1) // 2
    return 1.0 - inversions / max_inversions


class NormVerifier:
    """Replay a miner's blocks against a declared ordering norm.

    For each audited block, the verifier reconstructs the pending set
    the miner plausibly saw (every transaction committed in this block
    or later that had already been broadcast), applies the declared
    policy, and compares the result with what the miner actually
    committed.  Observers cannot know the miner's exact mempool, so the
    scores are fuzzy by construction — which is precisely why they are
    *agreement* scores rather than binary verdicts.
    """

    def __init__(
        self,
        broadcast_times: Mapping[str, float],
        max_block_vsize: int = MAX_BLOCK_VSIZE,
    ) -> None:
        self._broadcast = dict(broadcast_times)
        self._max_vsize = max_block_vsize

    def verify(
        self,
        pool: str,
        norm_name: str,
        policy,
        blocks: Sequence[Block],
        future_blocks: Sequence[Block],
        sample: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> VerificationResult:
        """Score ``pool``'s blocks against ``policy``.

        ``future_blocks`` supplies the transactions still pending at
        each audited block (those committed later); ``sample`` limits
        how many blocks are replayed.
        """
        audited = list(blocks)
        if sample is not None and len(audited) > sample:
            rng = rng if rng is not None else np.random.default_rng(61)
            picks = rng.choice(len(audited), size=sample, replace=False)
            audited = [audited[int(i)] for i in sorted(picks)]

        later_pool: list[tuple[float, Block]] = [
            (b.timestamp, b) for b in future_blocks
        ]
        selection_scores = []
        ordering_scores = []
        for block in audited:
            pending = []
            for tx in block.transactions:
                arrival = self._broadcast.get(tx.txid, block.timestamp)
                pending.append(MempoolEntry(tx=tx, arrival_time=arrival))
            # Add transactions committed in later blocks but already
            # broadcast — the contention the miner chose against.
            for timestamp, later in later_pool:
                if timestamp <= block.timestamp:
                    continue
                for tx in later.transactions:
                    arrival = self._broadcast.get(tx.txid)
                    if arrival is not None and arrival <= block.timestamp:
                        pending.append(MempoolEntry(tx=tx, arrival_time=arrival))
            template = policy.build(
                pending, max_vsize=self._max_vsize, reserved_vsize=200
            )
            recomputed = template.txids()
            observed = [tx.txid for tx in block.transactions]
            union = set(observed) | set(recomputed)
            if union:
                jaccard = len(set(observed) & set(recomputed)) / len(union)
                selection_scores.append(jaccard)
            ordering_scores.append(_order_agreement(observed, recomputed))
        return VerificationResult(
            pool=pool,
            norm=norm_name,
            blocks_checked=len(audited),
            selection_agreement=(
                float(np.mean(selection_scores)) if selection_scores else float("nan")
            ),
            ordering_agreement=(
                float(np.mean(ordering_scores)) if ordering_scores else float("nan")
            ),
        )
