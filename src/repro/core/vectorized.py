"""NumPy batch implementations of the audit metrics.

This module is the *fast path* of the two-implementation architecture:
the scalar functions in :mod:`.norms`, :mod:`.ppe`, :mod:`.violations`
and :mod:`.stattests` are the **reference oracle** — small, literal
transcriptions of the paper's definitions — while everything here
recomputes the same quantities over packed per-chain arrays built once
by :class:`ChainArrays`.

The contract, enforced by the differential harness in
``tests/oracle.py``:

* ranks, per-block PPE, SPPE and violation counts are computed with the
  same IEEE operations in the same order as the oracle and match it
  **bit for bit**;
* binomial tail p-values share the oracle's log-gamma terms (one cached
  ``math.lgamma`` factorial table) and differ only in log-sum-exp
  accumulation order — documented tolerance 1e-9 *relative*.

Set ``REPRO_AUDIT_SCALAR=1`` to make every switched analysis path fall
back to the oracle (the escape hatch used when debugging a suspected
vectorization bug).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .. import obs
from ..chain.block import Block
from .norms import CpfpFilter, filter_block_transactions
from .ppe import BlockPpe
from .violations import SnapshotView, ViolationStats

#: Environment variable that routes switched analyses back to the oracle.
SCALAR_ENV = "REPRO_AUDIT_SCALAR"


def scalar_mode() -> bool:
    """True when the ``REPRO_AUDIT_SCALAR=1`` escape hatch is set."""
    return os.environ.get(SCALAR_ENV, "") == "1"


# ----------------------------------------------------------------------
# ChainArrays: the packed per-chain adapter
# ----------------------------------------------------------------------
#: Owner id used for blocks without a pool attribution.
UNATTRIBUTED = -1

#: Process-cumulative count of object-graph packs (the slow path).
#: Exported as the ``vectorized.chain_arrays.fallbacks`` gauge so a
#: regression that silently drops the mmap path shows up in bench
#: obs deltas, not just in wall time.
_FALLBACK_PACKS = 0


def _note_pack(via_mmap: bool) -> None:
    """Count one ChainArrays pack on the mmap or the fallback path."""
    global _FALLBACK_PACKS
    if via_mmap:
        obs.counter("vectorized.chain_arrays.mmap")
    else:
        _FALLBACK_PACKS += 1
        obs.counter("vectorized.chain_arrays.fallback")
        obs.gauge("vectorized.chain_arrays.fallbacks", _FALLBACK_PACKS)


@dataclass
class ChainArrays:
    """One chain packed into parallel arrays, ranks precomputed.

    Blocks appear in chain order; the per-transaction arrays hold every
    transaction that survives the CPFP filter, in (block, observed
    position) order — exactly the order the scalar oracle walks.  Empty
    (post-filter) blocks keep a zero-length segment so block indexes
    stay aligned with the chain.
    """

    cpfp_filter: CpfpFilter
    # -- per block (length B, chain order) --
    heights: np.ndarray
    block_hashes: tuple[str, ...]
    owner_ids: np.ndarray
    owner_names: tuple[str, ...]
    starts: np.ndarray  # (B + 1,) packed segment offsets
    counts: np.ndarray  # (B,) post-filter transaction counts
    # -- per packed transaction (length N) --
    txids: tuple[str, ...]
    block_index: np.ndarray
    fee_rates: np.ndarray
    vsizes: np.ndarray
    observed_rank: np.ndarray
    predicted_rank: np.ndarray
    signed_error: np.ndarray
    abs_error: np.ndarray
    tx_index: dict[str, int] = field(repr=False)
    _owner_of: dict[str, int] = field(repr=False, default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable[Block],
        block_pools: Optional[Mapping[int, str]] = None,
        cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    ) -> "ChainArrays":
        """Pack ``blocks`` (one pass; CPFP filtering happens here)."""
        block_pools = block_pools or {}
        heights: list[int] = []
        hashes: list[str] = []
        owner_labels: list[Optional[str]] = []
        counts: list[int] = []
        txids: list[str] = []
        fee_rates: list[float] = []
        vsizes: list[int] = []
        for block in blocks:
            heights.append(block.height)
            hashes.append(block.block_hash)
            owner_labels.append(block_pools.get(block.height))
            kept = filter_block_transactions(block, cpfp_filter)
            counts.append(len(kept))
            for tx in kept:
                txids.append(tx.txid)
                fee_rates.append(tx.fee_rate)
                vsizes.append(tx.vsize)

        names = sorted({label for label in owner_labels if label is not None})
        name_to_id = {name: index for index, name in enumerate(names)}
        owner_ids = np.asarray(
            [
                name_to_id[label] if label is not None else UNATTRIBUTED
                for label in owner_labels
            ],
            dtype=np.int64,
        )
        counts_arr = np.asarray(counts, dtype=np.int64)
        starts = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts_arr, out=starts[1:])
        rates = np.asarray(fee_rates, dtype=float)
        block_index = np.repeat(
            np.arange(len(counts), dtype=np.int64), counts_arr
        )
        observed, predicted = _block_ranks(rates, block_index, starts, counts_arr)
        signed = predicted - observed
        return cls(
            cpfp_filter=cpfp_filter,
            heights=np.asarray(heights, dtype=np.int64),
            block_hashes=tuple(hashes),
            owner_ids=owner_ids,
            owner_names=tuple(names),
            starts=starts,
            counts=counts_arr,
            txids=tuple(txids),
            block_index=block_index,
            fee_rates=rates,
            vsizes=np.asarray(vsizes, dtype=np.int64),
            observed_rank=observed,
            predicted_rank=predicted,
            signed_error=signed,
            abs_error=np.abs(signed),
            tx_index={txid: index for index, txid in enumerate(txids)},
            _owner_of=name_to_id,
        )

    @classmethod
    def from_columnar(
        cls,
        store,
        block_pools: Optional[Mapping[int, str]] = None,
        cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    ) -> "ChainArrays":
        """Pack straight from a memory-mapped :class:`ColumnStore`.

        No object graph is walked: fee/vsize/CPFP columns come off disk
        and the CPFP filter is a boolean mask over the precomputed
        child/parent flags.  Bit-identical to :meth:`from_blocks` on the
        same chain — the fee-rates are the same IEEE quotients (both
        sides divide exactly-represented int64 fees by vsizes) and the
        segmentation/rank code is shared.
        """
        block_pools = block_pools or {}
        heights = np.asarray(store["block_height"], dtype=np.int64)
        tx_start = np.asarray(store["block_tx_start"], dtype=np.int64)
        block_count = len(heights)
        child = np.asarray(store["ctx_cpfp_child"], dtype=bool)
        if cpfp_filter is CpfpFilter.NONE:
            keep = np.ones(len(child), dtype=bool)
        elif cpfp_filter is CpfpFilter.CHILDREN:
            keep = ~child
        else:
            parent = np.asarray(store["ctx_cpfp_parent"], dtype=bool)
            keep = ~(child | parent)
        full_index = np.repeat(
            np.arange(block_count, dtype=np.int64), np.diff(tx_start)
        )
        block_index = full_index[keep]
        counts_arr = np.bincount(block_index, minlength=block_count).astype(
            np.int64
        )
        starts = np.zeros(block_count + 1, dtype=np.int64)
        np.cumsum(counts_arr, out=starts[1:])
        fees = np.asarray(store["ctx_fee"], dtype=np.int64)[keep]
        vsizes = np.asarray(store["ctx_vsize"], dtype=np.int64)[keep]
        rates = fees.astype(float) / vsizes.astype(float)
        txids = tuple(store["ctx_txid"][keep].tolist())
        owner_labels = [block_pools.get(int(h)) for h in heights]
        names = sorted({label for label in owner_labels if label is not None})
        name_to_id = {name: index for index, name in enumerate(names)}
        owner_ids = np.asarray(
            [
                name_to_id[label] if label is not None else UNATTRIBUTED
                for label in owner_labels
            ],
            dtype=np.int64,
        )
        observed, predicted = _block_ranks(rates, block_index, starts, counts_arr)
        signed = predicted - observed
        return cls(
            cpfp_filter=cpfp_filter,
            heights=heights,
            block_hashes=tuple(store["block_hash"].tolist()),
            owner_ids=owner_ids,
            owner_names=tuple(names),
            starts=starts,
            counts=counts_arr,
            txids=txids,
            block_index=block_index,
            fee_rates=rates,
            vsizes=vsizes,
            observed_rank=observed,
            predicted_rank=predicted,
            signed_error=signed,
            abs_error=np.abs(signed),
            tx_index={txid: index for index, txid in enumerate(txids)},
            _owner_of=name_to_id,
        )

    @classmethod
    def from_dataset(
        cls, dataset, cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN
    ) -> "ChainArrays":
        """Pack a :class:`~repro.datasets.dataset.Dataset`'s chain.

        Datasets loaded from the columnar store carry an open
        ``ColumnStore`` on ``dataset.columnar``; those pack zero-copy
        via :meth:`from_columnar` after a cheap identity check (name,
        counts, tip hash) so a mutated or derived dataset never reuses
        a stale sidecar.  Everything else — and any store that fails to
        map (torn file, vanished path in a worker) — falls back to the
        object-graph walk, counted in ``vectorized.chain_arrays.*`` so
        the bench grids surface regressions.
        """
        store = getattr(dataset, "columnar", None)
        if store is not None:
            try:
                if store.matches(dataset):
                    arrays = cls.from_columnar(
                        store, dataset.block_pools, cpfp_filter
                    )
                    _note_pack(via_mmap=True)
                    return arrays
            except (ValueError, OSError, KeyError):
                pass
        _note_pack(via_mmap=False)
        return cls.from_blocks(
            dataset.chain, dataset.block_pools, cpfp_filter
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        return len(self.counts)

    @property
    def tx_count(self) -> int:
        return len(self.txids)

    def owner_id(self, pool: str) -> int:
        """Integer owner id of ``pool`` (UNATTRIBUTED when unknown)."""
        return self._owner_of.get(pool, UNATTRIBUTED)

    def match_indices(self, txids: Iterable[str]) -> np.ndarray:
        """Packed indices of ``txids`` that survive the filter, ascending.

        Ascending packed order is (block, observed position) order —
        the order the scalar oracle appends matches in.
        """
        index = self.tx_index
        matched = [index[txid] for txid in txids if txid in index]
        matched.sort()
        return np.asarray(matched, dtype=np.int64)

    def owner_mask(self, indices: np.ndarray, pool: str) -> np.ndarray:
        """Boolean mask over ``indices`` of transactions in ``pool`` blocks."""
        if pool not in self._owner_of:
            return np.zeros(len(indices), dtype=bool)
        return self.owner_ids[self.block_index[indices]] == self._owner_of[pool]

    def block_mask(self, pool: str) -> np.ndarray:
        """Boolean per-block mask selecting ``pool``'s blocks."""
        if pool not in self._owner_of:
            return np.zeros(self.block_count, dtype=bool)
        return self.owner_ids == self._owner_of[pool]


def _block_ranks(
    fee_rates: np.ndarray,
    block_index: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Observed and norm-predicted percentile ranks, whole chain at once.

    Reproduces :func:`repro.core.norms.percentile_ranks` and
    :func:`repro.core.norms.predicted_order` bit for bit: ranks are
    ``(100.0 * position) / (count - 1)`` (0.0 for singleton blocks) and
    the predicted order is a stable sort by descending fee-rate with
    observed position as the tie-break.
    """
    total = len(fee_rates)
    positions = np.arange(total, dtype=np.int64) - starts[block_index]
    denominators = counts[block_index] - 1
    safe = np.maximum(denominators, 1)
    observed = np.where(
        denominators > 0, (100.0 * positions) / safe, 0.0
    )
    # lexsort uses the last key as primary: blocks stay contiguous, the
    # norm sorts by descending fee-rate, observed position breaks ties.
    order = np.lexsort((positions, -fee_rates, block_index))
    predicted_positions = np.arange(total, dtype=np.int64) - starts[
        block_index[order]
    ]
    predicted = np.empty(total, dtype=float)
    predicted[order] = np.where(
        denominators[order] > 0,
        (100.0 * predicted_positions) / safe[order],
        0.0,
    )
    return observed, predicted


# ----------------------------------------------------------------------
# PPE / SPPE over packed arrays
# ----------------------------------------------------------------------
def chain_ppe_arrays(
    arrays: ChainArrays, block_mask: Optional[np.ndarray] = None
) -> list[BlockPpe]:
    """Per-block PPE, skipping blocks with no surviving transaction.

    Matches :func:`repro.core.ppe.chain_ppe` bit for bit: each block's
    PPE is ``np.mean`` over the same error values in the same order.
    """
    results: list[BlockPpe] = []
    starts = arrays.starts
    counts = arrays.counts
    errors = arrays.abs_error
    for index in range(arrays.block_count):
        count = int(counts[index])
        if count == 0:
            continue
        if block_mask is not None and not block_mask[index]:
            continue
        start = int(starts[index])
        results.append(
            BlockPpe(
                height=int(arrays.heights[index]),
                block_hash=arrays.block_hashes[index],
                tx_count=count,
                ppe=float(np.mean(errors[start : start + count])),
            )
        )
    return results


@dataclass(frozen=True)
class VectorSppe:
    """SPPE of a transaction set, computed on packed arrays.

    Mirrors :class:`repro.core.ppe.SppeResult` in the fields the table
    loops consume; the per-transaction prediction records are not
    materialised (that is the point of the fast path) — callers needing
    them use the scalar oracle.
    """

    tx_count: int
    sppe: float
    accelerated_fraction: float


def sppe_arrays(
    arrays: ChainArrays,
    txids: Iterable[str],
    pool: Optional[str] = None,
    matched: Optional[np.ndarray] = None,
) -> VectorSppe:
    """SPPE of ``txids`` (optionally restricted to ``pool``'s blocks).

    ``matched`` short-circuits the txid lookup when the caller already
    holds :meth:`ChainArrays.match_indices` output for the same set —
    the Table 2 loop reuses one match across every target pool.
    """
    if matched is None:
        matched = arrays.match_indices(txids)
    if pool is not None and len(matched):
        matched = matched[arrays.owner_mask(matched, pool)]
    if not len(matched):
        return VectorSppe(
            tx_count=0, sppe=float("nan"), accelerated_fraction=float("nan")
        )
    values = arrays.signed_error[matched]
    lifted = int(np.count_nonzero(values > 0))
    return VectorSppe(
        tx_count=int(len(values)),
        sppe=float(np.mean(values)),
        accelerated_fraction=lifted / len(values),
    )


def per_transaction_sppe_arrays(
    arrays: ChainArrays, pool: Optional[str] = None
) -> dict[str, float]:
    """Signed error of every packed transaction (Table 4 detector input).

    Insertion order matches the scalar oracle's block-by-block walk, so
    downstream random sampling over ``list(result)`` draws identically.
    """
    if pool is None:
        indices: Sequence[int] = range(arrays.tx_count)
    else:
        owner = arrays.owner_id(pool)
        keep = arrays.owner_ids[arrays.block_index] == owner
        indices = np.nonzero(keep)[0]
    txids = arrays.txids
    signed = arrays.signed_error
    return {txids[int(i)]: float(signed[int(i)]) for i in indices}


# ----------------------------------------------------------------------
# Snapshot violation counting
# ----------------------------------------------------------------------
def count_violations_multi(
    arrival_times: Sequence[float],
    fee_rates: Sequence[float],
    commit_heights: Sequence[int],
    epsilons: Sequence[float],
    block_size: int = 512,
) -> list[tuple[int, int]]:
    """(eligible, violating) pair counts for every ε in one sweep.

    The ε-independent comparisons (fee-rate dominance, later commit) are
    evaluated once per row block and reused across the ε grid; counts
    are integers, so the result equals the oracle's exactly.
    """
    times = np.asarray(arrival_times, dtype=float)
    rates = np.asarray(fee_rates, dtype=float)
    heights = np.asarray(commit_heights, dtype=np.int64)
    count = times.size
    if not (rates.size == count and heights.size == count):
        raise ValueError("input arrays must have equal length")
    eligible = [0] * len(epsilons)
    violating = [0] * len(epsilons)
    for start in range(0, count, block_size):
        stop = min(start + block_size, count)
        t_i = times[start:stop, None]
        richer = rates[start:stop, None] > rates[None, :]
        richer_and_later = richer & (
            heights[start:stop, None] > heights[None, :]
        )
        for index, epsilon in enumerate(epsilons):
            earlier = t_i + epsilon < times[None, :]
            eligible[index] += int((earlier & richer).sum())
            violating[index] += int((earlier & richer_and_later).sum())
    return list(zip(eligible, violating))


def analyze_snapshot_multi(
    view: SnapshotView, epsilons: Sequence[float]
) -> list[ViolationStats]:
    """Violation stats of one joined snapshot for every ε at once."""
    count = view.tx_count
    total_pairs = count * (count - 1) // 2
    counted = count_violations_multi(
        view.arrival_times, view.fee_rates, view.commit_heights, epsilons
    )
    return [
        ViolationStats(
            snapshot_time=view.time,
            tx_count=count,
            total_pairs=total_pairs,
            eligible_pairs=eligible,
            violating_pairs=violating,
            epsilon=epsilon,
        )
        for epsilon, (eligible, violating) in zip(epsilons, counted)
    ]


def analyze_snapshots_multi(
    views: Sequence[SnapshotView], epsilons: Sequence[float]
) -> dict[float, list[ViolationStats]]:
    """Fig 6 batch: every (snapshot, ε) cell with one mask pass each."""
    per_view = [analyze_snapshot_multi(view, epsilons) for view in views]
    return {
        epsilon: [stats[index] for stats in per_view]
        for index, epsilon in enumerate(epsilons)
    }


# ----------------------------------------------------------------------
# Binomial tails, batched
# ----------------------------------------------------------------------
#: Cached log-factorial table: _LOG_FACTORIALS[k] == math.lgamma(k + 1).
#: Built with math.lgamma so every term is the same double the scalar
#: oracle computes.
_LOG_FACTORIALS = np.zeros(1, dtype=float)


def _log_factorials(n: int) -> np.ndarray:
    """The table up to ``n`` inclusive (grown geometrically, cached)."""
    global _LOG_FACTORIALS
    if n >= len(_LOG_FACTORIALS):
        size = max(n + 1, 2 * len(_LOG_FACTORIALS))
        table = np.empty(size, dtype=float)
        table[: len(_LOG_FACTORIALS)] = _LOG_FACTORIALS
        for k in range(len(_LOG_FACTORIALS), size):
            table[k] = math.lgamma(k + 1)
        _LOG_FACTORIALS = table
    return _LOG_FACTORIALS


def _log_pmf_range(k_lo: int, k_hi: int, n: int, p: float) -> np.ndarray:
    """log P(B = k) for k in [k_lo, k_hi] with B ~ Binomial(n, p in (0,1))."""
    table = _log_factorials(n)
    k = np.arange(k_lo, k_hi + 1, dtype=np.int64)
    return (
        table[n]
        - table[k]
        - table[n - k]
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def _sum_exp(log_terms: np.ndarray) -> float:
    """exp(log-sum-exp), the peak-anchored form the oracle uses."""
    if not len(log_terms):
        return 0.0
    peak = float(log_terms.max())
    if peak == float("-inf"):
        return 0.0
    return float(math.exp(peak + math.log(float(np.sum(np.exp(log_terms - peak))))))


def binom_tail_upper_vec(x: int, n: int, p: float) -> float:
    """Vectorized P(B ≥ x); same branch logic as the scalar oracle."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if x <= 0:
        return 1.0
    if x > n:
        return 0.0
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    if x > n * p:
        return min(1.0, _sum_exp(_log_pmf_range(x, n, n, p)))
    return max(0.0, 1.0 - min(1.0, _sum_exp(_log_pmf_range(0, x - 1, n, p))))


def binom_tail_lower_vec(x: int, n: int, p: float) -> float:
    """Vectorized P(B ≤ x); same branch logic as the scalar oracle."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    if x < 0:
        return 0.0
    if x >= n:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    if x < n * p:
        return min(1.0, _sum_exp(_log_pmf_range(0, x, n, p)))
    return max(0.0, 1.0 - min(1.0, _sum_exp(_log_pmf_range(x + 1, n, n, p))))


def binom_tail_upper_batch(
    xs: Sequence[int], n: int, p: float
) -> np.ndarray:
    """P(B ≥ x) for many x under one Binomial(n, p).

    The ext_power Monte-Carlo evaluates hundreds of draws against one
    null; deduplicating x values makes each distinct tail a single
    numpy reduction.
    """
    xs = np.asarray(xs, dtype=np.int64)
    unique, inverse = np.unique(xs, return_inverse=True)
    tails = np.asarray(
        [binom_tail_upper_vec(int(x), n, p) for x in unique], dtype=float
    )
    return tails[inverse]


def binom_tail_lower_batch(
    xs: Sequence[int], n: int, p: float
) -> np.ndarray:
    """P(B ≤ x) for many x under one Binomial(n, p)."""
    xs = np.asarray(xs, dtype=np.int64)
    unique, inverse = np.unique(xs, return_inverse=True)
    tails = np.asarray(
        [binom_tail_lower_vec(int(x), n, p) for x in unique], dtype=float
    )
    return tails[inverse]


def windowed_prioritization_test_vec(
    pool: str,
    windows: Sequence[tuple[float, Sequence[str]]],
    direction: str = "accelerate",
) -> float:
    """Vectorized §5.1.3 windowed test (Fisher-combined per-window tails)."""
    from .stattests import fishers_method

    if direction not in ("accelerate", "decelerate"):
        raise ValueError("direction must be 'accelerate' or 'decelerate'")
    tail = (
        binom_tail_upper_vec if direction == "accelerate" else binom_tail_lower_vec
    )
    p_values = []
    for theta0, miners in windows:
        if not miners:
            continue
        if not 0.0 < theta0 < 1.0:
            raise ValueError(f"theta0 must be in (0,1), got {theta0}")
        y = len(miners)
        x = sum(1 for miner in miners if miner == pool)
        p_values.append(tail(x, y, theta0))
    if not p_values:
        raise ValueError("no window contained c-blocks")
    if len(p_values) == 1:
        return p_values[0]
    return fishers_method(p_values)
