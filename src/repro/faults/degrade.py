"""Apply observer-side faults to an already-curated dataset.

Observer-side faults — relay loss towards the measurement node,
downtime windows, partitions — only affect what the observer *records*,
never what the chain *commits*.  They therefore commute with curation:
degrading a lossless dataset after the fact yields the same artifact as
re-running the engine with the same faults injected (asserted in
``tests/test_faults_pipeline.py``), because both sides consult the same
:class:`~repro.faults.schedule.FaultSchedule` channels over the same
canonical transaction order.

This is the workhorse of the power-under-faults sweep: one expensive
simulation per seed, then cheap re-degradation per grid cell, with the
loss masks nested across rates so the detection-power curve degrades
monotonically by construction.

Chain-side faults (pool loss, stale blocks) change the committed chain
and therefore cannot be applied post hoc; inject them through the
engine (``SimulationEngine(..., faults=...)``) instead.

One approximation: the per-tick :class:`SizeSeries` subtracts a lost
transaction's vsize over ``[arrival, commit-block discovery)``, while
the engine's reconstruction removes it a sub-second block-relay delay
*after* discovery.  At the 15-second tick cadence the difference is at
most one tick per lost transaction; the snapshot *contents* and record
tables match the engine exactly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.records import TxRecord
from ..mempool.snapshots import (
    MempoolSnapshot,
    SizeSeries,
    SnapshotStore,
    SnapshotTx,
)
from .schedule import FaultSchedule, OutageWindow


def _window_at(
    windows: tuple[OutageWindow, ...], time: float
) -> Optional[OutageWindow]:
    for window in windows:
        if window.contains(time):
            return window
    return None


def _degrade_records(
    dataset: Dataset,
    lost: frozenset,
    down: tuple[OutageWindow, ...],
    partitions: tuple[OutageWindow, ...],
    block_times: np.ndarray,
) -> dict[str, TxRecord]:
    """Censor or defer each record's observer arrival per the faults."""
    out: dict[str, TxRecord] = {}
    for txid, record in dataset.tx_records.items():
        arrival = record.observer_arrival
        if arrival is not None:
            if txid in lost:
                arrival = None
            elif _window_at(down, arrival) is not None:
                arrival = None
            else:
                window = _window_at(partitions, arrival)
                if window is not None:
                    commit_time = (
                        float(block_times[record.commit_height])
                        if record.commit_height is not None
                        and record.commit_height < len(block_times)
                        else None
                    )
                    if commit_time is not None and commit_time <= window.end:
                        # Committed before the partition healed: the
                        # observer never saw it pending at all.
                        arrival = None
                    else:
                        arrival = window.end
        if arrival != record.observer_arrival:
            record = replace(record, observer_arrival=arrival)
        out[txid] = record
    return out


def _degrade_snapshots(
    dataset: Dataset,
    records: dict[str, TxRecord],
    down: tuple[OutageWindow, ...],
) -> SnapshotStore:
    """Drop snapshots taken during downtime; censor lost/deferred txs."""
    kept: list[MempoolSnapshot] = []
    for snapshot in dataset.snapshots:
        if _window_at(down, snapshot.time) is not None:
            continue
        txs: list[SnapshotTx] = []
        changed = False
        for tx in snapshot.txs:
            record = records.get(tx.txid)
            if record is None:
                txs.append(tx)
                continue
            arrival = record.observer_arrival
            if arrival is None or arrival > snapshot.time:
                changed = True
                continue
            if arrival != tx.arrival_time:
                changed = True
                tx = SnapshotTx(
                    txid=tx.txid,
                    arrival_time=arrival,
                    fee=tx.fee,
                    vsize=tx.vsize,
                )
            txs.append(tx)
        kept.append(
            MempoolSnapshot(time=snapshot.time, txs=tuple(txs))
            if changed
            else snapshot
        )
    return SnapshotStore(kept)


def _degrade_size_series(
    dataset: Dataset,
    records: dict[str, TxRecord],
    down: tuple[OutageWindow, ...],
    block_times: np.ndarray,
) -> Optional[SizeSeries]:
    """Recompute the per-tick series minus censored/deferred residency."""
    series = dataset.size_series
    if series is None:
        return None
    times = np.asarray(series.times, dtype=float)
    sizes = np.asarray(series.sizes(), dtype=np.int64)
    counts_list = series.tx_counts()
    counts = (
        np.asarray(counts_list, dtype=np.int64) if counts_list is not None else None
    )
    if times.size:
        size_delta = np.zeros(times.size + 1, dtype=np.int64)
        count_delta = np.zeros(times.size + 1, dtype=np.int64)
        horizon = float(times[-1]) + 1.0
        for txid, record in records.items():
            original = dataset.tx_records[txid].observer_arrival
            arrival = record.observer_arrival
            if original is None or arrival == original:
                continue
            if record.commit_height is not None and record.commit_height < len(
                block_times
            ):
                removal = float(block_times[record.commit_height])
            else:
                removal = horizon
            # Subtract the original residency [original, removal) ...
            lo = int(np.searchsorted(times, original, side="left"))
            hi = int(np.searchsorted(times, removal, side="left"))
            if lo < hi:
                size_delta[lo] -= record.vsize
                size_delta[hi] += record.vsize
                count_delta[lo] -= 1
                count_delta[hi] += 1
            # ... and add back the deferred residency, if any.
            if arrival is not None and arrival < removal:
                lo = int(np.searchsorted(times, arrival, side="left"))
                hi = int(np.searchsorted(times, removal, side="left"))
                if lo < hi:
                    size_delta[lo] += record.vsize
                    size_delta[hi] -= record.vsize
                    count_delta[lo] += 1
                    count_delta[hi] -= 1
        sizes = np.maximum(sizes + np.cumsum(size_delta[:-1]), 0)
        if counts is not None:
            counts = np.maximum(counts + np.cumsum(count_delta[:-1]), 0)
    if down:
        keep = np.ones(times.size, dtype=bool)
        for window in down:
            keep &= ~((times >= window.start) & (times < window.end))
        times = times[keep]
        sizes = sizes[keep]
        if counts is not None:
            counts = counts[keep]
    return SizeSeries(
        times=times.tolist(),
        vsizes=sizes.tolist(),
        tx_counts=counts.tolist() if counts is not None else None,
    )


def degrade_dataset(
    dataset: Dataset,
    schedule: FaultSchedule,
    observer: Optional[str] = None,
) -> Dataset:
    """A copy of ``dataset`` as a faulty observer would have curated it.

    ``observer`` names the fault channels to apply; it defaults to the
    dataset's recorded observer name so that engine-injected and
    post-hoc degradation select identical lost sets.
    """
    if schedule.pool_loss_rate or schedule.stale_block_rate or schedule.stale_block_indexes:
        raise ValueError(
            "chain-side faults (pool loss, stale blocks) cannot be applied "
            "post hoc; run the engine with faults=... instead"
        )
    name = observer or str(dataset.metadata.get("observer", dataset.name))
    if schedule.is_null:
        return dataset
    pairs = [
        (record.broadcast_time, txid)
        for txid, record in dataset.tx_records.items()
    ]
    lost = schedule.observer_lost_txids(name, pairs)
    down = schedule.downtime_for(name)
    partitions = schedule.partitions_for(name)
    block_times = dataset.block_times()

    records = _degrade_records(dataset, lost, down, partitions, block_times)
    snapshots = _degrade_snapshots(dataset, records, down)
    size_series = _degrade_size_series(dataset, records, down, block_times)

    metadata = dict(dataset.metadata)
    metadata["faults"] = schedule.describe()
    metadata["degraded"] = True
    return Dataset(
        name=dataset.name,
        chain=dataset.chain,
        snapshots=snapshots,
        tx_records=records,
        block_pools=dataset.block_pools,
        pool_wallets=dataset.pool_wallets,
        size_series=size_series,
        metadata=metadata,
    )
