"""Data-quality measurement: how degraded is a dataset, really?

The paper's Table 1 quantifies its own measurement imperfection (each
vantage node missed transactions the other saw).  This module does the
same for our datasets: :func:`assess_quality` measures coverage, gap
structure and orphan counts from the artifact itself — whether the
degradation came from injected faults or a genuinely lossy run — and
returns a :class:`DataQualityReport` the audit layer attaches to its
results instead of raising on partial data.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.dataset import Dataset

#: A tick gap larger than this multiple of the nominal interval counts
#: as a genuine recording gap rather than timer jitter.
GAP_TOLERANCE = 1.5


@dataclass(frozen=True)
class DataQualityReport:
    """Measured coverage and gap statistics of one dataset."""

    #: Transactions issued by the workload (committed or not).
    tx_issued: int
    #: Transactions the observer recorded an arrival for.
    tx_observed: int
    #: Transactions committed on-chain.
    tx_committed: int
    #: Committed transactions the observer also saw — the joinable core.
    committed_observed: int
    #: ``committed_observed / tx_committed`` — the mempool coverage the
    #: binomial test's effective-sample-size correction consumes.
    mempool_coverage: float
    #: Fraction of issued transactions the observer never saw.
    censored_fraction: float
    #: Full snapshots present in the store.
    snapshot_count: int
    #: Recording gaps in the size-series/snapshot timeline.
    snapshot_gap_count: int
    #: Ticks the nominal cadence implies but the timeline lacks.
    missing_tick_count: int
    #: Total time covered by the detected gaps, in seconds.
    downtime_seconds: float
    #: Blocks assembled but never committed (stale/reorged).
    orphaned_block_count: int

    @property
    def degraded(self) -> bool:
        """True when any measurement imperfection is present."""
        return (
            self.mempool_coverage < 0.999
            or self.censored_fraction > 0.001
            or self.snapshot_gap_count > 0
            or self.orphaned_block_count > 0
        )

    def summary(self) -> dict:
        """All fields plus the degraded verdict, as a plain dict."""
        out = asdict(self)
        out["degraded"] = self.degraded
        return out


def detect_gaps(
    times: Sequence[float], interval: float = 0.0
) -> tuple[int, int, float]:
    """(gap count, missing ticks, gap seconds) of a tick timeline.

    ``interval`` is the nominal cadence; when 0 it is inferred as the
    median successive difference, so a regularly sampled series with a
    few holes reports exactly those holes.
    """
    if len(times) < 2:
        return 0, 0, 0.0
    diffs = [b - a for a, b in zip(times, times[1:])]
    if interval <= 0.0:
        ordered = sorted(diffs)
        interval = ordered[len(ordered) // 2]
    if interval <= 0.0:
        return 0, 0, 0.0
    gaps = 0
    missing = 0
    seconds = 0.0
    for diff in diffs:
        if diff > GAP_TOLERANCE * interval:
            gaps += 1
            missing += int(round(diff / interval)) - 1
            seconds += diff - interval
    return gaps, missing, seconds


def assess_quality(dataset: "Dataset") -> DataQualityReport:
    """Measure a dataset's quality from the artifact alone."""
    records = list(dataset.tx_records.values())
    issued = len(records)
    observed = sum(1 for r in records if r.observed)
    committed = sum(1 for r in records if r.committed)
    committed_observed = sum(1 for r in records if r.committed and r.observed)
    coverage = committed_observed / committed if committed else 1.0
    censored = 1.0 - observed / issued if issued else 0.0

    if dataset.size_series is not None and len(dataset.size_series) > 1:
        timeline = dataset.size_series.times
    else:
        timeline = dataset.snapshots.times
    gaps, missing, seconds = detect_gaps(timeline)

    orphaned = int(dataset.metadata.get("orphaned_blocks", 0))
    return DataQualityReport(
        tx_issued=issued,
        tx_observed=observed,
        tx_committed=committed,
        committed_observed=committed_observed,
        mempool_coverage=coverage,
        censored_fraction=censored,
        snapshot_count=len(dataset.snapshots),
        snapshot_gap_count=gaps,
        missing_tick_count=missing,
        downtime_seconds=seconds,
        orphaned_block_count=orphaned,
    )
