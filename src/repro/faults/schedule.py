"""The fault schedule: a deterministic, seedable description of loss.

A :class:`FaultSchedule` says *what goes wrong* during a measurement
campaign, without touching the simulation's own randomness:

* **tx-relay loss** — each transaction independently fails to reach a
  node (observer or pool) with a configured probability;
* **observer downtime** — windows during which a node records nothing
  (arrivals censored, 15-second snapshots dropped);
* **partitions/eclipse** — windows during which a node is cut off; it
  catches up when the partition heals, so arrivals shift to the window
  end instead of vanishing;
* **stale blocks** — discoveries that lose the propagation race: the
  block is assembled but never joins the chain, and its transactions
  return to the mempool;
* **per-hop drop** — gossip-level message loss on the evented path.

Every fault decision draws from a generator seeded by
``derive_seed(fault_seed, channel)`` — the same derivation the
simulation uses for its own streams, but rooted at the *fault* seed.
Fault draws therefore never perturb simulation streams, which is what
makes a zero-rate schedule leave every artifact byte-identical to a
run without faults (asserted in ``tests/test_seed_robustness.py``).

Loss masks are drawn as one uniform variate per (channel, transaction)
and thresholded against the rate, so the lost set at a higher rate is a
superset of the lost set at a lower rate under the same seed.  Sweeps
over loss rates (the ``power-under-faults`` experiment) are monotone by
construction, not by luck.

The per-transaction mask is indexed over the *canonical plan order* —
``sorted`` by ``(broadcast_time, txid)`` — which both simulation
substrates and the post-hoc dataset degrader share, so the same
schedule selects the same lost transactions everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Optional, Tuple

import numpy as np

from ..simulation.rng import derive_seed


@dataclass(frozen=True)
class OutageWindow:
    """A half-open time window ``[start, end)`` during which a named
    node is unavailable (downtime) or unreachable (partition)."""

    node: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"window end must be after start, got [{self.start}, {self.end})"
            )
        if self.start < 0:
            raise ValueError("window start must be non-negative")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class NodeCrash:
    """A crash/restart: the node's mempool is wiped at ``time``.

    The node keeps running afterwards (pair with an
    :class:`OutageWindow` ending at ``time`` to model a crash that also
    took the node offline while it restarted).
    """

    node: str
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be non-negative")


def _validate_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong in one campaign, deterministically."""

    #: Root seed of the fault RNG streams (independent of scenario seed).
    seed: int = 0
    #: Probability each transaction never reaches an observer node.
    tx_loss_rate: float = 0.0
    #: Probability each transaction never reaches a mining pool.
    pool_loss_rate: float = 0.0
    #: Per-hop gossip drop probability (evented substrate only).
    per_hop_loss_rate: float = 0.0
    #: Probability each block discovery goes stale (loses the race).
    stale_block_rate: float = 0.0
    #: Explicit schedule indexes forced stale (in addition to the rate).
    stale_block_indexes: Tuple[int, ...] = ()
    #: Observer/node downtime windows: nothing is recorded inside them.
    downtime: Tuple[OutageWindow, ...] = ()
    #: Partition/eclipse windows: traffic is deferred to the window end.
    partitions: Tuple[OutageWindow, ...] = ()
    #: Crash/restart events (mempool wipes) on the evented substrate.
    crashes: Tuple[NodeCrash, ...] = ()

    def __post_init__(self) -> None:
        _validate_rate("tx_loss_rate", self.tx_loss_rate)
        _validate_rate("pool_loss_rate", self.pool_loss_rate)
        _validate_rate("per_hop_loss_rate", self.per_hop_loss_rate)
        _validate_rate("stale_block_rate", self.stale_block_rate)
        if any(index < 0 for index in self.stale_block_indexes):
            raise ValueError("stale_block_indexes must be non-negative")

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when this schedule injects nothing at all."""
        return (
            self.tx_loss_rate == 0.0
            and self.pool_loss_rate == 0.0
            and self.per_hop_loss_rate == 0.0
            and self.stale_block_rate == 0.0
            and not self.stale_block_indexes
            and not self.downtime
            and not self.partitions
            and not self.crashes
        )

    def describe(self) -> dict:
        """Non-default fields as a JSON-able dict (dataset metadata)."""
        out: dict = {"seed": self.seed}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "seed" or value == spec.default:
                continue
            if spec.name in ("downtime", "partitions"):
                out[spec.name] = [[w.node, w.start, w.end] for w in value]
            elif spec.name == "crashes":
                out[spec.name] = [[c.node, c.time] for c in value]
            elif spec.name == "stale_block_indexes":
                out[spec.name] = list(value)
            else:
                out[spec.name] = value
        return out

    # ------------------------------------------------------------------
    # RNG channels
    # ------------------------------------------------------------------
    def channel_rng(self, channel: str) -> np.random.Generator:
        """A fresh generator for one named fault channel."""
        return np.random.default_rng(derive_seed(self.seed, f"faults/{channel}"))

    def loss_mask(self, channel: str, count: int, rate: float) -> np.ndarray:
        """Boolean lost-mask of length ``count`` for one channel.

        One uniform draw per slot, thresholded against ``rate`` — masks
        at increasing rates are nested, and a zero rate returns all
        False without drawing at all.
        """
        if rate <= 0.0 or count == 0:
            return np.zeros(count, dtype=bool)
        return self.channel_rng(channel).random(count) < rate

    # ------------------------------------------------------------------
    # Transaction loss
    # ------------------------------------------------------------------
    @staticmethod
    def canonical_order(pairs: Iterable[Tuple[float, str]]) -> list:
        """Sort (broadcast_time, txid) pairs into canonical plan order."""
        return sorted(pairs)

    def lost_txids(
        self,
        channel: str,
        pairs: Iterable[Tuple[float, str]],
        rate: float,
    ) -> frozenset:
        """Txids lost on ``channel`` at ``rate`` over a plan.

        ``pairs`` are ``(broadcast_time, txid)`` tuples for every
        planned transaction; they are canonically sorted internally so
        callers need not pre-sort.
        """
        ordered = self.canonical_order(pairs)
        mask = self.loss_mask(channel, len(ordered), rate)
        if not mask.any():
            return frozenset()
        return frozenset(
            txid for (_, txid), lost in zip(ordered, mask) if lost
        )

    def observer_lost_txids(
        self, observer: str, pairs: Iterable[Tuple[float, str]]
    ) -> frozenset:
        """Transactions that never reach the named observer."""
        return self.lost_txids(f"tx-loss/{observer}", pairs, self.tx_loss_rate)

    def pool_lost_txids(
        self, pool: str, pairs: Iterable[Tuple[float, str]]
    ) -> frozenset:
        """Transactions that never reach the named pool."""
        return self.lost_txids(f"pool-loss/{pool}", pairs, self.pool_loss_rate)

    # ------------------------------------------------------------------
    # Stale blocks
    # ------------------------------------------------------------------
    def stale_mask(self, count: int) -> np.ndarray:
        """Which of ``count`` scheduled discoveries go stale."""
        mask = self.loss_mask("stale-blocks", count, self.stale_block_rate)
        if self.stale_block_indexes:
            mask = mask.copy()
            for index in self.stale_block_indexes:
                if index < count:
                    mask[index] = True
        return mask

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def downtime_for(self, node: str) -> Tuple[OutageWindow, ...]:
        return tuple(w for w in self.downtime if w.node == node)

    def partitions_for(self, node: str) -> Tuple[OutageWindow, ...]:
        return tuple(w for w in self.partitions if w.node == node)

    def crash_times_for(self, node: str) -> Tuple[float, ...]:
        return tuple(sorted(c.time for c in self.crashes if c.node == node))

    def is_down(self, node: str, time: float) -> bool:
        return any(w.contains(time) for w in self.downtime if w.node == node)

    def in_partition(self, node: str, time: float) -> bool:
        return any(w.contains(time) for w in self.partitions if w.node == node)

    def partition_at(self, node: str, time: float) -> Optional[OutageWindow]:
        for window in self.partitions:
            if window.node == node and window.contains(time):
                return window
        return None


def spread_downtime(
    node: str,
    duration: float,
    fraction: float,
    windows: int = 3,
) -> Tuple[OutageWindow, ...]:
    """``windows`` evenly spread outages totalling ``fraction`` of
    ``duration`` — the downtime axis of the power-under-faults sweep."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"downtime fraction must be in [0, 1), got {fraction}")
    if windows < 1:
        raise ValueError("need at least one window")
    if fraction == 0.0:
        return ()
    length = duration * fraction / windows
    out = []
    for i in range(windows):
        center = duration * (2 * i + 1) / (2 * windows)
        start = max(center - length / 2.0, 0.0)
        out.append(OutageWindow(node=node, start=start, end=start + length))
    return tuple(out)
