"""Checkpoint/resume for long simulation runs.

Multi-week campaigns (full-scale dataset C, decade-scale history) are
long enough that a crash mid-run used to mean starting over.  This
module provides the two halves of crash tolerance:

* **atomic checkpoint files** — gzip-JSON payloads written to
  ``<path>.tmp`` and moved into place with :func:`os.replace`, so a
  crash mid-write never leaves a truncated checkpoint behind;
* **deterministic resume** — the engine and history generators persist
  their RNG stream states (:meth:`numpy.random.BitGenerator.state` is a
  plain dict) alongside loop state, so a resumed run replays the exact
  draws an uninterrupted run would have made.  The identity is asserted
  in ``tests/test_checkpoint.py``.

The consumers live in :mod:`repro.simulation.engine` (per-block
checkpoints) and :mod:`repro.simulation.history` (per-era-block
checkpoints); both accept a :class:`CheckpointConfig`.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used (corrupt/mismatched)."""


class SimulationInterrupted(RuntimeError):
    """Raised by the test-only abort hook after a checkpoint is written.

    Simulates a mid-flight kill: the run stops *after* persisting a
    checkpoint, exactly like a crash between checkpoint boundaries
    loses only the blocks since the last write.
    """


@dataclass
class CheckpointConfig:
    """Where and how often to checkpoint a run."""

    path: Union[str, Path]
    #: Checkpoint every N processed blocks.
    every_blocks: int = 25
    #: Additional RNG registries whose state rides along (e.g. the
    #: policy-jitter streams a scenario wires at construction time).
    extra_streams: Tuple = ()
    #: Test hook: abort (raise SimulationInterrupted) after this many
    #: blocks processed in the current session, checkpointing first.
    abort_after_blocks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every_blocks < 1:
            raise ValueError("every_blocks must be >= 1")
        if self.abort_after_blocks is not None and self.abort_after_blocks < 1:
            raise ValueError("abort_after_blocks must be >= 1 when set")
        self.path = Path(self.path)


def write_checkpoint(
    path: Union[str, Path], payload: dict, fsync: bool = False
) -> Path:
    """Atomically persist ``payload`` as gzip-JSON at ``path``.

    With ``fsync`` the payload is forced to disk before the rename and
    the directory entry after it — the durability contract the audit
    service's journal compaction relies on.  Simulation checkpoints
    keep the cheaper default: they only guard against a crash of the
    *process*, not of the machine.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_checkpoint(path: Union[str, Path]) -> Optional[dict]:
    """Read a checkpoint, or None when no file exists.

    A present-but-unreadable checkpoint raises :class:`CheckpointError`
    rather than silently restarting — losing a week of simulation to a
    quietly ignored corrupt file is the worse failure mode.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (EOFError, OSError, ValueError, UnicodeDecodeError, zlib.error) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    return payload
