"""Deterministic fault injection for the measurement pipeline.

The paper's audit ran on *imperfect* data: its two vantage nodes missed
transactions each other saw (Table 1), snapshot series have gaps, and
the chain occasionally discards stale blocks.  This package reproduces
those degradations deterministically so experiments can ask how much
measurement loss the PPE/violation/binomial analyses absorb before
ground-truth misbehaviour becomes undetectable.

Layout:

* :mod:`~repro.faults.schedule` — :class:`FaultSchedule`, the seedable
  description of what goes wrong (relay loss, observer downtime,
  partitions, stale blocks) with RNG streams isolated from the
  simulation's own (:mod:`repro.simulation.rng` derivation), so a
  zero-rate schedule leaves every artifact byte-identical;
* :mod:`~repro.faults.degrade` — apply observer-side faults to an
  already-curated :class:`~repro.datasets.dataset.Dataset`;
* :mod:`~repro.faults.quality` — :class:`DataQualityReport`, measured
  coverage/gap/orphan statistics of a (possibly degraded) dataset;
* :mod:`~repro.faults.checkpoint` — atomic checkpoint/resume for long
  engine and history runs.
"""

from .checkpoint import (
    CheckpointConfig,
    CheckpointError,
    SimulationInterrupted,
    load_checkpoint,
    write_checkpoint,
)
from .degrade import degrade_dataset
from .quality import DataQualityReport, assess_quality, detect_gaps
from .schedule import (
    FaultSchedule,
    NodeCrash,
    OutageWindow,
    spread_downtime,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointError",
    "SimulationInterrupted",
    "load_checkpoint",
    "write_checkpoint",
    "degrade_dataset",
    "DataQualityReport",
    "assess_quality",
    "detect_gaps",
    "FaultSchedule",
    "NodeCrash",
    "OutageWindow",
    "spread_downtime",
]
