"""Adversary zoo: labelled ordering-attack policies and pool strategies.

The misbehaviour layer in :mod:`repro.mining.policies` knows four
hand-rolled perturbations (self-interest boosts, collusion, dark-fee,
censorship).  This module grows it into a *zoo* of richer adversaries,
each expressed in the same :class:`~repro.mining.policies.OrderingPolicy`
algebra so the paper's detectors see only blocks, never intent — and
experiments keep labelled ground truth for free:

* :class:`SandwichPolicy` — MEV-style insertion: the pool's own
  transactions are committed immediately around victim transactions
  matched by a predicate (front-run + back-run).
* :class:`FifoPolicy` — first-come-first-served: selection *and*
  in-block order follow arrival time, not fee-rate.  Per-sender FIFO is
  implied: one sender's transactions can never commit out of submission
  order.
* :class:`BucketedPriorityPolicy` — fee-rates quantised into coarse
  buckets; FIFO inside a bucket.  A deliberately opaque "priority
  class" scheme that only loosely tracks the fee-rate norm.
* :class:`CallAuctionPolicy` — a uniform-price call auction: the
  highest bids that fit are selected, but everyone pays the clearing
  price, so the block is *committed in arrival order* — selection
  honours fees, ordering does not.
* :class:`CensorForRentPolicy` — censorship-for-rent: matching
  transactions are excluded until they pay at least a ransom fee-rate.
* :class:`SelfishMiningAttack` — a *pool-level* strategy (block
  withholding) hooked into the engine's mining race rather than the
  template builder; see :meth:`SelfishMiningAttack.stale_overlay`.

Every template policy here is input-order-insensitive (all sorts use
total orders with txid tiebreaks) and is deliberately *not* known to
the fast path's policy compiler — scenarios that install one exercise
the compiled-policy-program fallback, and the byte-identity contract
(tests/test_engine_oracle.py) holds regardless.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..chain.constants import MAX_BLOCK_VSIZE
from ..chain.transaction import Transaction
from ..mempool.feerate import fee_rate_rank
from ..mempool.mempool import MempoolEntry
from .gbt import BlockTemplate, _check_budget, repair_topological_order
from .policies import EntryPredicate, FeeRatePolicy, OrderingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def _fee_key(entry: MempoolEntry) -> tuple:
    """The norm's exact total order: rate rank, then arrival, then txid."""
    return (-fee_rate_rank(entry.tx.fee, entry.vsize), entry.arrival_time, entry.txid)


def _arrival_key(entry: MempoolEntry) -> tuple:
    return (entry.arrival_time, entry.txid)


def _fill(
    ranked: Sequence[MempoolEntry], budget: int
) -> tuple[list[Transaction], int, int]:
    """Skip-and-continue selection in the given order: (txs, fee, vsize)."""
    chosen: list[Transaction] = []
    fee = 0
    used = 0
    for entry in ranked:
        if used + entry.vsize > budget:
            continue
        chosen.append(entry.tx)
        fee += entry.tx.fee
        used += entry.vsize
    return chosen, fee, used


def _finish(txs: list[Transaction], fee: int, used: int) -> BlockTemplate:
    """Repair topology and seal a template (totals are order-invariant)."""
    return BlockTemplate(
        tuple(repair_topological_order(txs)), total_fee=fee, total_vsize=used
    )


@dataclass
class FifoPolicy:
    """First-come-first-served: arrival order decides selection and order.

    The oldest transactions that fit are committed, in arrival order —
    fee-rates are ignored entirely.  This is the strongest possible
    per-sender FIFO guarantee (a sender's later transaction can never
    overtake an earlier one) and the bluntest violation of the fee-rate
    norm: PPE shoots up because in-block position is uncorrelated with
    fee-rate, and the violation tests fire because low-fee ancestors of
    the queue overtake high-fee newcomers.
    """

    label: str = "fifo"

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = _check_budget(max_vsize, reserved_vsize)
        ranked = sorted(entries, key=_arrival_key)
        return _finish(*_fill(ranked, budget))


def fee_rate_bucket(fee: int, vsize: int, width: float) -> int:
    """The coarse priority class a (fee, vsize) pair falls into."""
    if width <= 0:
        raise ValueError(f"bucket width must be positive, got {width}")
    return int((fee / vsize) // width)


@dataclass
class BucketedPriorityPolicy:
    """Coarse fee-rate buckets, FIFO within a bucket.

    ``width`` is the bucket granularity in sat/vB: with width 16, a
    3 sat/vB and a 15 sat/vB transaction are the same priority class
    and commit in arrival order.  The scheme still *roughly* tracks the
    norm (higher buckets first) — which is exactly what makes it an
    interesting detection target: PPE grows with the width, smoothly.
    """

    width: float = 16.0
    label: str = "bucketed"

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = _check_budget(max_vsize, reserved_vsize)
        ranked = sorted(
            entries,
            key=lambda e: (
                -fee_rate_bucket(e.tx.fee, e.vsize, self.width),
                e.arrival_time,
                e.txid,
            ),
        )
        return _finish(*_fill(ranked, budget))


@dataclass
class CallAuctionPolicy:
    """Uniform-price call auction: bids select, arrival orders.

    Each block is one auction round: the highest fee-rate bids that fit
    win (selection is exactly the greedy norm), but since every winner
    pays the same clearing price there is no reason to order the block
    by bid — winners are committed in arrival order.  Selection-based
    tests (prioritization binomials, violation counts over inclusion)
    stay clean; the in-block ordering tests (PPE) light up.
    """

    label: str = "call-auction"

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = _check_budget(max_vsize, reserved_vsize)
        winners = sorted(entries, key=_fee_key)
        chosen, fee, used = _fill(winners, budget)
        in_block = {tx.txid for tx in chosen}
        ordered = [
            e.tx
            for e in sorted(entries, key=_arrival_key)
            if e.txid in in_block
        ]
        return _finish(ordered, fee, used)


@dataclass
class SandwichPolicy:
    """MEV-style insertion: own transactions wrap victim transactions.

    For every pending entry matched by ``victim`` (ranked by the fee
    norm), up to two entries matched by ``attacker`` are placed
    immediately before and after it at the top of the block — the
    front-run / back-run sandwich.  ``intensity`` is the fraction of
    matched victims actually sandwiched (top of the rank order first),
    the experiment grid's knob.  Unmatched capacity falls through to
    ``base`` exactly like
    :class:`~repro.mining.policies.PrioritizeSetPolicy`.

    The attacker transactions deliberately underpay (the pool commits
    its own transactions for free), so the §5.1 acceleration binomial
    is the natural detector: attacker transactions land in the pool's
    own blocks far more often than its hash share explains.
    """

    base: OrderingPolicy
    victim: EntryPredicate
    attacker: EntryPredicate
    label: str = "sandwich"
    intensity: float = 1.0

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = _check_budget(max_vsize, reserved_vsize)
        attackers = sorted((e for e in entries if self.attacker(e)), key=_fee_key)
        victims = sorted(
            (e for e in entries if self.victim(e) and not self.attacker(e)),
            key=_fee_key,
        )
        if self.intensity < 1.0:
            quota = int(np.ceil(self.intensity * len(victims)))
            victims = victims[:quota]

        head: list[Transaction] = []
        head_ids: set[str] = set()
        fee = 0
        used = 0
        slot = 0
        for victim in victims:
            front = attackers[slot] if slot < len(attackers) else None
            back = attackers[slot + 1] if slot + 1 < len(attackers) else None
            triple = [e for e in (front, victim, back) if e is not None]
            size = sum(e.vsize for e in triple)
            if used + size > budget:
                continue
            for entry in triple:
                head.append(entry.tx)
                head_ids.add(entry.txid)
                fee += entry.tx.fee
                used += entry.vsize
            slot += sum(1 for e in (front, back) if e is not None)

        rest = [e for e in entries if e.txid not in head_ids]
        tail = self.base.build(rest, max_vsize, reserved_vsize + used)
        return _finish(
            head + list(tail.transactions),
            fee + tail.total_fee,
            used + tail.total_vsize,
        )


@dataclass
class CensorForRentPolicy:
    """Censor matching transactions until they pay the ransom fee-rate.

    A matched entry whose fee-rate is below ``ransom_rate`` (sat/vB) is
    never committed; matched entries at or above the ransom pass
    through to ``base`` like anyone else.  This is §6.1's censorship
    discussion with an extortion pricing model attached — and a true
    positive for the deceleration binomial over the sub-ransom set.
    """

    base: OrderingPolicy
    banned: EntryPredicate
    ransom_rate: float = 30.0
    label: str = "censor-for-rent"

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        allowed = [
            e
            for e in entries
            if not (self.banned(e) and e.fee_rate < self.ransom_rate)
        ]
        return self.base.build(allowed, max_vsize, reserved_vsize)


# ----------------------------------------------------------------------
# MEV campaign bookkeeping
# ----------------------------------------------------------------------


@dataclass
class MevCampaign:
    """Live txid registry wiring the workload to a sandwich policy.

    The workload generator registers victim and attacker transactions
    as it mints them; the attacking pool's :class:`SandwichPolicy`
    reads the sets through the same live-callable pattern the
    acceleration service order book uses
    (:class:`~repro.mining.policies.TxidSetPredicate`).
    """

    name: str = "mev"
    victim_txids: set[str] = field(default_factory=set)
    attacker_txids: set[str] = field(default_factory=set)

    def victims(self) -> frozenset[str]:
        return frozenset(self.victim_txids)

    def attackers(self) -> frozenset[str]:
        return frozenset(self.attacker_txids)

    def register_victim(self, txid: str) -> None:
        self.victim_txids.add(txid)

    def register_attacker(self, txid: str) -> None:
        self.attacker_txids.add(txid)


# ----------------------------------------------------------------------
# Selfish mining (pool-level, not a template policy)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelfishMiningAttack:
    """Block withholding à la Eyal–Sirer, as a mining-race transformation.

    The attack does not touch template ordering — it decides which
    *discoveries* survive the propagation race.  The engine computes a
    stale-block overlay from the (time, winner) schedule before
    dispatching to either substrate, so scalar and fast runs consume
    the identical mask and the byte-identity contract is untouched.

    Simplified state machine over the discovery sequence:

    * the selfish pool withholds each of its discoveries
      (with probability ``engagement`` — the intensity knob; a pool
      mixing honest and selfish behaviour engages per-block);
    * when an honest pool finds a block while the selfish pool holds a
      lead of one, the race resolves immediately: with probability
      ``gamma`` the honest block is orphaned, otherwise the withheld
      selfish block is;
    * at a lead of two or more, the selfish pool publishes its private
      chain and the honest block is orphaned outright.

    All randomness comes from the attack's own ``seed`` — never from
    the engine's streams — so installing the attack perturbs no other
    draw in the simulation.
    """

    pool: str
    gamma: float = 0.5
    engagement: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0,1], got {self.gamma}")
        if not 0.0 <= self.engagement <= 1.0:
            raise ValueError(
                f"engagement must be in [0,1], got {self.engagement}"
            )

    def describe(self) -> dict[str, object]:
        """Stable metadata stamped onto curated datasets."""
        return {
            "kind": "selfish-mining",
            "pool": self.pool,
            "gamma": self.gamma,
            "engagement": self.engagement,
            "seed": self.seed,
        }

    def stale_overlay(
        self,
        schedule: Sequence[tuple[float, int]],
        pool_names: Sequence[str],
    ) -> Optional[np.ndarray]:
        """Boolean mask of schedule entries orphaned by the attack.

        Returns None when the attacked pool is not in the lineup or the
        attack never engages — indistinguishable, byte for byte, from
        no attack at all.
        """
        if self.pool not in pool_names or self.engagement <= 0.0:
            return None
        selfish = list(pool_names).index(self.pool)
        rng = np.random.default_rng(self.seed)
        mask = np.zeros(len(schedule), dtype=bool)
        withheld: list[int] = []
        for index, (_time, winner) in enumerate(schedule):
            if winner == selfish:
                if rng.random() < self.engagement:
                    withheld.append(index)
                continue
            if not withheld:
                continue
            if len(withheld) == 1:
                # Lead-one race, resolved immediately: gamma is the
                # share of the honest network that mines on the
                # selfish branch.
                if rng.random() < self.gamma:
                    mask[index] = True
                else:
                    mask[withheld[0]] = True
            else:
                # Lead >= 2: the private chain is published whole and
                # the honest block loses outright.
                mask[index] = True
            withheld = []
        if not mask.any():
            return None
        return mask


#: Adversary template policies by their registry key (the experiment
#: grid and the docs both index this).
ZOO_POLICIES = {
    "fifo": FifoPolicy,
    "bucketed": BucketedPriorityPolicy,
    "call-auction": CallAuctionPolicy,
    "sandwich": SandwichPolicy,
    "censor-for-rent": CensorForRentPolicy,
}


def honest_reference_policy() -> OrderingPolicy:
    """The policy the zoo deviates from (for docs and tests)."""
    return FeeRatePolicy(package_selection=True)
