"""Mining pools: hash power, wallets, policy, and block assembly.

A pool bundles everything the audit later tries to infer from the
outside: its share of hash power (θ0 in the statistical tests), the
reward wallets it rotates through (Fig 8a), the ordering policy it runs
(honest or misbehaving), and an optional acceleration service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..chain.address import AddressFactory
from ..chain.attribution import PoolDirectory
from ..chain.block import Block, build_block
from ..chain.constants import MAX_BLOCK_VSIZE, block_subsidy
from ..chain.transaction import coinbase_value, make_coinbase
from ..mempool.mempool import MempoolEntry
from .acceleration import AccelerationService
from .policies import FeeRatePolicy, OrderingPolicy


@dataclass
class MiningPool:
    """One mining pool operator.

    Parameters
    ----------
    name, marker:
        Public identity; ``marker`` is embedded in coinbases and drives
        attribution.
    hash_share:
        Fraction of total network hash rate (the winning probability in
        each mining race, and the tests' θ0).
    reward_address_count:
        How many distinct payout wallets the pool rotates through.
        SlushPool used 56 and Poolin 23 in dataset C (Fig 8a).
    policy:
        Block-ordering policy; defaults to the honest fee-rate norm.
    acceleration_service:
        If set, transactions in the service's order book are boosted by
        the pool's policy (wired up by the scenario builder).
    coinbase_vsize:
        Reserved vsize for the coinbase when filling templates.
    """

    name: str
    marker: str
    hash_share: float
    reward_address_count: int = 1
    policy: OrderingPolicy = field(default_factory=FeeRatePolicy)
    acceleration_service: Optional[AccelerationService] = None
    coinbase_vsize: int = 200
    max_block_vsize: int = MAX_BLOCK_VSIZE
    #: Unregistered pools stay out of the attribution directory, so
    #: their blocks show up as "unknown" (about 1.3% in dataset C).
    registered: bool = True
    reward_addresses: list[str] = field(default_factory=list)
    _next_address: int = field(default=0, repr=False)
    blocks_mined: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.hash_share <= 1.0:
            raise ValueError(f"hash_share must be in [0,1], got {self.hash_share}")
        if self.reward_address_count < 1:
            raise ValueError("reward_address_count must be >= 1")
        if not self.reward_addresses:
            factory = AddressFactory(namespace=f"pool/{self.name}/reward")
            self.reward_addresses = factory.batch(self.reward_address_count)

    @property
    def wallet_addresses(self) -> frozenset[str]:
        """All addresses known to belong to this pool."""
        return frozenset(self.reward_addresses)

    def next_reward_address(self) -> str:
        """Rotate through payout wallets round-robin."""
        address = self.reward_addresses[self._next_address % len(self.reward_addresses)]
        self._next_address += 1
        return address

    # ------------------------------------------------------------------
    # Block assembly
    # ------------------------------------------------------------------
    def assemble_block(
        self,
        height: int,
        prev_hash: str,
        timestamp: float,
        entries: Sequence[MempoolEntry],
    ) -> Block:
        """Build and 'mine' a block from this pool's pending view."""
        template = self.policy.build(
            entries, max_vsize=self.max_block_vsize, reserved_vsize=self.coinbase_vsize
        )
        return self.assemble_from_template(height, prev_hash, timestamp, template)

    def assemble_from_template(
        self,
        height: int,
        prev_hash: str,
        timestamp: float,
        template,
    ) -> Block:
        """'Mine' a block from an already-built template.

        Split out of :meth:`assemble_block` so the vectorized engine can
        build the template through its compiled policy programs while
        sharing the coinbase/reward-rotation side effects byte for byte
        (the reward-address cursor and ``blocks_mined`` advance here, in
        both paths).
        """
        subsidy = block_subsidy(height)
        coinbase = make_coinbase(
            reward_address=self.next_reward_address(),
            value=coinbase_value(subsidy, template.total_fee),
            marker=self.marker,
            height=height,
            vsize=self.coinbase_vsize,
        )
        self.blocks_mined += 1
        return build_block(
            height=height,
            prev_hash=prev_hash,
            timestamp=timestamp,
            coinbase=coinbase,
            transactions=template.transactions,
        )


def normalize_hash_shares(pools: Sequence[MiningPool]) -> list[float]:
    """Pools' hash shares rescaled to sum to exactly 1."""
    total = sum(pool.hash_share for pool in pools)
    if total <= 0:
        raise ValueError("total hash share must be positive")
    return [pool.hash_share / total for pool in pools]


def make_directory(pools: Iterable[MiningPool]) -> PoolDirectory:
    """Build an attribution directory covering ``pools``."""
    directory = PoolDirectory()
    for pool in pools:
        if not pool.registered:
            continue
        directory.register_pool(
            pool.name, marker=pool.marker, addresses=pool.reward_addresses
        )
    return directory


#: Hash-rate profiles measured by the paper (Fig 2), used by scenarios.
#: Values are (pool name, share of blocks in the dataset).
DATASET_A_POOLS: tuple[tuple[str, float], ...] = (
    ("BTC.com", 0.1718),
    ("AntPool", 0.1279),
    ("F2Pool", 0.1129),
    ("Poolin", 0.1103),
    ("SlushPool", 0.0894),
    ("ViaBTC", 0.0700),
    ("BTC.TOP", 0.0600),
    ("Huobi", 0.0500),
    ("1THash & 58Coin", 0.0450),
    ("Bitfury", 0.0400),
    ("OKEx", 0.0350),
    ("Binance Pool", 0.0300),
)

DATASET_B_POOLS: tuple[tuple[str, float], ...] = (
    ("BTC.com", 0.1967),
    ("AntPool", 0.1277),
    ("F2Pool", 0.1157),
    ("SlushPool", 0.0969),
    ("Poolin", 0.0958),
    ("ViaBTC", 0.0700),
    ("BTC.TOP", 0.0600),
    ("Huobi", 0.0500),
    ("1THash & 58Coin", 0.0450),
    ("Bitfury", 0.0400),
    ("OKEx", 0.0350),
    ("Binance Pool", 0.0300),
)

DATASET_C_POOLS: tuple[tuple[str, float], ...] = (
    ("F2Pool", 0.1753),
    ("Poolin", 0.1480),
    ("BTC.com", 0.1199),
    ("AntPool", 0.1096),
    ("Huobi", 0.0750),
    ("ViaBTC", 0.0676),
    ("1THash & 58Coin", 0.0611),
    ("OKEx", 0.0590),
    ("Binance Pool", 0.0560),
    ("SlushPool", 0.0375),
    ("BTC.TOP", 0.0300),
    ("Lubian.com", 0.0250),
    ("BitFury", 0.0180),
    ("NovaBlock", 0.0120),
    ("SpiderPool", 0.0100),
    ("Bitcoin.com", 0.0080),
    ("TigerPool", 0.0070),
    ("KanoPool", 0.0050),
    ("Sigmapool", 0.0040),
    ("MiningCity", 0.0030),
)

#: Reward-wallet counts for Fig 8a's distribution (paper calls out
#: SlushPool at 56 and Poolin at 23; others are plausible magnitudes).
REWARD_WALLET_COUNTS: dict[str, int] = {
    "SlushPool": 56,
    "Poolin": 23,
    "F2Pool": 12,
    "BTC.com": 9,
    "AntPool": 8,
    "Huobi": 7,
    "ViaBTC": 6,
    "1THash & 58Coin": 5,
    "OKEx": 5,
    "Binance Pool": 4,
}


def make_pools(
    profile: Sequence[tuple[str, float]],
    reward_wallet_counts: Optional[dict[str, int]] = None,
) -> list[MiningPool]:
    """Instantiate honest pools from a (name, share) profile.

    Shares are used as-is (they need not sum to one — the mining race
    renormalises); markers follow the "/Name/" convention.
    """
    counts = reward_wallet_counts or REWARD_WALLET_COUNTS
    pools = []
    for name, share in profile:
        pools.append(
            MiningPool(
                name=name,
                marker=f"/{name}/",
                hash_share=share,
                reward_address_count=counts.get(name, 2),
            )
        )
    return pools
