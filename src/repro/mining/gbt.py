"""GetBlockTemplate: how miners fill and order a block.

Two template builders live here:

* :func:`greedy_feerate_template` — the *norm* codified by the paper
  (§2.1): rank pending transactions purely by fee-per-vbyte, fill the
  block top-down.  This is also the predictor behind PPE/SPPE.
* :func:`ancestor_package_template` — what Bitcoin Core actually ships
  since 0.12: select by *ancestor-package* fee-rate so a high-fee child
  can pull its cheap parent in (CPFP).  The daylight between the two
  builders is exactly the CPFP noise the paper filters out of its
  violation analyses.

Both builders respect the block vsize budget and topological validity
(no child before its in-block parent).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from .. import obs
from ..chain.constants import MAX_BLOCK_VSIZE
from ..chain.transaction import Transaction
from ..mempool.feerate import fee_rate_rank
from ..mempool.mempool import MempoolEntry


class TemplateBudgetError(ValueError):
    """The reserved vsize exceeds the block's vsize budget.

    A builder handed ``reserved_vsize > max_vsize`` would otherwise fill
    against a *negative* budget — every candidate "doesn't fit", the
    template comes out silently empty, and the misconfiguration hides
    behind a plausible-looking block.  Both builders raise instead.
    """


def _check_budget(max_vsize: int, reserved_vsize: int) -> int:
    if reserved_vsize > max_vsize:
        raise TemplateBudgetError(
            f"reserved_vsize {reserved_vsize} exceeds max_vsize {max_vsize}"
        )
    return max_vsize - reserved_vsize


@dataclass(frozen=True)
class BlockTemplate:
    """An ordered transaction list plus its aggregate fee and size."""

    transactions: tuple[Transaction, ...]
    total_fee: int
    total_vsize: int

    def __len__(self) -> int:
        return len(self.transactions)

    def txids(self) -> list[str]:
        return [tx.txid for tx in self.transactions]


def _fee_rate_key(entry: MempoolEntry) -> tuple[int, float, str]:
    """Descending fee-rate; ties by arrival then txid (deterministic).

    The rate component is the *exact* integer rank, not the float
    quotient: two distinct rationals that collide in float64 would
    otherwise fall through to the tie-break keys and order differently
    than cross-multiplication says they should.
    """
    return (
        -fee_rate_rank(entry.tx.fee, entry.vsize),
        entry.arrival_time,
        entry.txid,
    )


def greedy_feerate_template(
    entries: Sequence[MempoolEntry],
    max_vsize: int = MAX_BLOCK_VSIZE,
    reserved_vsize: int = 0,
) -> BlockTemplate:
    """Fill a block greedily by individual fee-rate (norms I and II).

    Transactions that do not fit are skipped and the scan continues, as
    the real assembler does; dependencies are ignored — this is the
    idealised norm, not a validity-checked template.

    ``reserved_vsize`` accounts for the coinbase.
    """
    with obs.span("gbt.greedy_template"):
        budget = _check_budget(max_vsize, reserved_vsize)
        chosen: list[Transaction] = []
        used = 0
        fee = 0
        for entry in sorted(entries, key=_fee_rate_key):
            if used + entry.vsize > budget:
                continue
            chosen.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee
        obs.counter("gbt.templates.greedy")
        obs.counter("gbt.txs.selected", len(chosen))
        return BlockTemplate(tuple(chosen), total_fee=fee, total_vsize=used)


def ancestor_package_template(
    entries: Sequence[MempoolEntry],
    max_vsize: int = MAX_BLOCK_VSIZE,
    reserved_vsize: int = 0,
) -> BlockTemplate:
    """Bitcoin Core-style ancestor-package selection.

    Repeatedly pick the pending transaction whose package (itself plus
    all unconfirmed ancestors not yet selected) has the highest
    fee-rate, then emit the package in topological order.  Package
    scores are recomputed lazily: a popped candidate whose ancestor set
    changed since scoring is re-scored and pushed back, the standard
    "lazy update" trick that keeps the loop near O(n log n).
    """
    with obs.span("gbt.ancestor_template"):
        template = _ancestor_package_template(entries, max_vsize, reserved_vsize)
    obs.counter("gbt.templates.ancestor")
    obs.counter("gbt.txs.selected", len(template.transactions))
    return template


def _ancestor_package_template(
    entries: Sequence[MempoolEntry],
    max_vsize: int,
    reserved_vsize: int,
) -> BlockTemplate:
    budget = _check_budget(max_vsize, reserved_vsize)
    by_txid = {entry.txid: entry for entry in entries}

    # Precompute, once, the in-set parent links and full ancestor sets.
    # Real mempool graphs are shallow (mostly 0-1 in-set parents), so a
    # memoised post-order walk is effectively linear.
    parents: dict[str, tuple[str, ...]] = {}
    for entry in entries:
        parents[entry.txid] = tuple(
            p for p in entry.tx.parent_txids if p in by_txid
        )
    ancestors: dict[str, frozenset[str]] = {}

    def ancestors_of(txid: str) -> frozenset[str]:
        cached = ancestors.get(txid)
        if cached is not None:
            return cached
        stack = [txid]
        while stack:
            current = stack[-1]
            missing = [p for p in parents[current] if p not in ancestors]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            if current in ancestors:
                continue
            acc: set[str] = set()
            for parent in parents[current]:
                acc.add(parent)
                acc.update(ancestors[parent])
            ancestors[current] = frozenset(acc)
        return ancestors[txid]

    selected: set[str] = set()
    ordered: list[Transaction] = []
    used = 0
    fee = 0

    def package_of(txid: str) -> tuple[list[str], int, int]:
        """Unselected package members (topological), fee, vsize."""
        members = [a for a in ancestors_of(txid) if a not in selected]
        members.append(txid)
        members.sort(key=lambda t: (len(ancestors_of(t)), t))
        pkg_fee = sum(by_txid[t].tx.fee for t in members)
        pkg_vsize = sum(by_txid[t].vsize for t in members)
        return members, pkg_fee, pkg_vsize

    # Heap keys use the exact integer rank (see repro.mempool.feerate):
    # float package rates can collide for distinct rationals, making pop
    # order — and hence the block — depend on tie-break keys.
    heap: list[tuple[int, float, str]] = []
    for entry in entries:
        anc = ancestors_of(entry.txid)
        if anc:
            pkg_fee = entry.tx.fee + sum(by_txid[a].tx.fee for a in anc)
            pkg_vsize = entry.vsize + sum(by_txid[a].vsize for a in anc)
        else:
            pkg_fee = entry.tx.fee
            pkg_vsize = entry.vsize
        heapq.heappush(
            heap,
            (-fee_rate_rank(pkg_fee, pkg_vsize), entry.arrival_time, entry.txid),
        )

    while heap:
        neg_rank, arrival, txid = heapq.heappop(heap)
        if txid in selected:
            continue
        if not ancestors_of(txid):
            # Singleton package: the scored rate is always current.
            entry = by_txid[txid]
            if used + entry.vsize > budget:
                continue
            selected.add(txid)
            ordered.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee
            continue
        members, pkg_fee, pkg_vsize = package_of(txid)
        current_key = -fee_rate_rank(pkg_fee, pkg_vsize)
        if current_key != neg_rank:
            # Stale score (an ancestor got selected via another package);
            # re-queue at the fresh, higher rate.
            obs.counter("gbt.packages.rescored")
            heapq.heappush(heap, (current_key, arrival, txid))
            continue
        if used + pkg_vsize > budget:
            continue
        for member in members:
            selected.add(member)
            ordered.append(by_txid[member].tx)
        used += pkg_vsize
        fee += pkg_fee

    return BlockTemplate(tuple(ordered), total_fee=fee, total_vsize=used)


def repair_topological_order(
    transactions: Sequence[Transaction],
) -> list[Transaction]:
    """Minimally reorder so no child precedes an in-list parent.

    Walks the list once, deferring any transaction whose in-list parent
    has not been emitted yet; deferred transactions are emitted as soon
    as their last parent appears.  The relative order of unconstrained
    transactions is preserved, so policies that perturb ordering (e.g.
    :class:`~repro.mining.policies.NoisyPolicy`) can stay block-valid.
    """
    in_list = {tx.txid for tx in transactions}
    emitted: set[str] = set()
    waiting: dict[str, list[Transaction]] = {}
    ordered: list[Transaction] = []

    def emit(tx: Transaction) -> None:
        ordered.append(tx)
        emitted.add(tx.txid)
        for blocked in waiting.pop(tx.txid, []):
            missing = [
                p
                for p in blocked.parent_txids
                if p in in_list and p not in emitted
            ]
            if not missing:
                emit(blocked)
            else:
                waiting.setdefault(missing[0], []).append(blocked)

    for tx in transactions:
        missing = [p for p in tx.parent_txids if p in in_list and p not in emitted]
        if missing:
            waiting.setdefault(missing[0], []).append(tx)
        else:
            emit(tx)
    if len(ordered) != len(transactions):
        raise ValueError("dependency cycle among block transactions")
    return ordered


def is_topologically_valid(transactions: Sequence[Transaction]) -> bool:
    """True when no transaction precedes an in-list parent it spends."""
    seen: set[str] = set()
    in_list = {tx.txid for tx in transactions}
    for tx in transactions:
        for parent in tx.parent_txids:
            if parent in in_list and parent not in seen:
                return False
        seen.add(tx.txid)
    return True


def template_revenue(template: BlockTemplate, subsidy: int) -> int:
    """Miner revenue for committing this template."""
    return subsidy + template.total_fee


def compare_templates(
    left: BlockTemplate, right: BlockTemplate
) -> Optional[BlockTemplate]:
    """Return the higher-fee template (None on an exact tie)."""
    if left.total_fee > right.total_fee:
        return left
    if right.total_fee > left.total_fee:
        return right
    return None
