"""Ordering policies: the norm, its predecessor, and misbehaviours.

A policy turns a set of pending mempool entries into the ordered
transaction list of a block template.  The honest baseline is the
fee-rate norm (optionally with Bitcoin Core's ancestor-package
selection).  Misbehaviours are *wrappers* that perturb a base policy:

* :class:`PrioritizeSetPolicy` — put a chosen transaction set at the top
  of the block regardless of fee (self-interest, collusion, dark-fee
  acceleration all reduce to this with different chosen sets).
* :class:`CensorPolicy` — refuse to commit matching transactions.
* :class:`PriorityPolicy` — the pre-April-2016 coin-age-priority
  ordering, used to regenerate Fig 1's era contrast.

The composition is deliberate: the paper's detectors never see the
policy, only its output blocks, so expressing misbehaviour as policy
algebra gives experiments labelled ground truth for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from ..chain.constants import MAX_BLOCK_VSIZE
from ..chain.transaction import Transaction
from ..mempool.feerate import fee_rate_rank
from ..mempool.mempool import MempoolEntry
from .gbt import (
    BlockTemplate,
    _check_budget,
    ancestor_package_template,
    greedy_feerate_template,
    repair_topological_order,
)


class OrderingPolicy(Protocol):
    """Strategy interface: order pending entries into a template."""

    def build(
        self, entries: Sequence[MempoolEntry], max_vsize: int, reserved_vsize: int
    ) -> BlockTemplate:
        """Produce an ordered, size-capped template."""
        ...


@dataclass(frozen=True)
class FeeRatePolicy:
    """The post-2016 norm: rank by fee-per-vbyte.

    With ``package_selection`` enabled (the default, matching deployed
    Bitcoin Core) the selection honours CPFP packages; disabled, it is
    the idealised greedy norm the paper's predictor assumes.
    """

    package_selection: bool = True

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        if self.package_selection:
            return ancestor_package_template(entries, max_vsize, reserved_vsize)
        return greedy_feerate_template(entries, max_vsize, reserved_vsize)


def pseudo_coin_age(txid: str) -> float:
    """Deterministic stand-in for the age of a transaction's inputs.

    Real coin-age priority needs the UTXO ages, which synthetic inputs do
    not carry; hashing the txid into [0, 1) preserves the essential
    property for Fig 1 — priority ordering is uncorrelated with fee-rate
    ordering — while staying reproducible.
    """
    digest = hashlib.sha256(txid.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class PriorityPolicy:
    """Pre-April-2016 ordering: coin-age priority, not fee-rate.

    Bitcoin Core before 0.12 ordered part of the block by
    ``sum(input_value * input_age) / size``.  We model priority as
    output value times a pseudo-age, normalised by vsize.
    """

    def priority(self, tx: Transaction) -> float:
        return tx.output_value * pseudo_coin_age(tx.txid) / tx.vsize

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = max_vsize - reserved_vsize
        ranked = sorted(
            entries, key=lambda e: (-self.priority(e.tx), e.arrival_time, e.txid)
        )
        chosen: list[Transaction] = []
        used = 0
        fee = 0
        for entry in ranked:
            if used + entry.vsize > budget:
                continue
            chosen.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee
        return BlockTemplate(tuple(chosen), total_fee=fee, total_vsize=used)


#: Predicate choosing which pending entries a wrapper singles out.
EntryPredicate = Callable[[MempoolEntry], bool]


@dataclass
class PrioritizeSetPolicy:
    """Commit matching transactions first, then fall back to ``base``.

    The boosted set is placed at the very top of the block (internally
    ordered by fee-rate), mirroring how accelerated transactions appear
    "in the first few positions within the block" (§5.4.2).  The
    remaining capacity is filled by the base policy over the non-boosted
    entries.

    ``min_age`` makes the boost a *rescue*: only transactions pending
    for at least that long qualify.  Collusive acceleration works this
    way in practice — a partner pool lifts transactions that have been
    stuck, it does not front-run the owner on fresh ones.  (The current
    time is approximated by the newest arrival in the pending set,
    which is accurate whenever traffic is continuous.)
    """

    base: OrderingPolicy
    boost: EntryPredicate
    label: str = "prioritize-set"
    min_age: float = 0.0

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        if self.min_age > 0.0 and entries:
            now = max(e.arrival_time for e in entries)

            def eligible(entry: MempoolEntry) -> bool:
                return (
                    now - entry.arrival_time >= self.min_age
                    and self.boost(entry)
                )

        else:
            eligible = self.boost
        boosted = [e for e in entries if eligible(e)]
        rest = [e for e in entries if not eligible(e)]
        # Exact rate ranking (see repro.mempool.feerate): float rates
        # can collide for distinct rationals and scramble the head.
        boosted.sort(
            key=lambda e: (
                -fee_rate_rank(e.tx.fee, e.vsize),
                e.arrival_time,
                e.txid,
            )
        )

        budget = _check_budget(max_vsize, reserved_vsize)
        head: list[Transaction] = []
        used = 0
        fee = 0
        for entry in boosted:
            if used + entry.vsize > budget:
                continue
            head.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee

        tail_template = self.base.build(rest, max_vsize, reserved_vsize + used)
        transactions = tuple(head) + tail_template.transactions
        return BlockTemplate(
            transactions,
            total_fee=fee + tail_template.total_fee,
            total_vsize=used + tail_template.total_vsize,
        )


@dataclass
class CensorPolicy:
    """Exclude matching transactions entirely (discussed in §6.1).

    The paper found no evidence of deceleration/censorship in the wild;
    this policy exists so the deceleration test has a true positive to
    detect in ablation experiments.
    """

    base: OrderingPolicy
    banned: EntryPredicate
    label: str = "censor"

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        allowed = [e for e in entries if not self.banned(e)]
        return self.base.build(allowed, max_vsize, reserved_vsize)


@dataclass
class MinFeeRatePolicy:
    """Apply a fee-rate floor before delegating (norm III at the miner).

    A floor of zero reproduces F2Pool/ViaBTC occasionally committing
    zero-fee transactions (§4.2.3).
    """

    base: OrderingPolicy
    floor: float = 1.0

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        eligible = [e for e in entries if e.fee_rate >= self.floor]
        return self.base.build(eligible, max_vsize, reserved_vsize)


@dataclass
class NoisyPolicy:
    """Fee-rate ordering with bounded random rank perturbation.

    Models slop between a pool's mempool view and ours (orphaned
    templates, RBF races, stale templates).  Each entry's sort key is its
    fee-rate rank plus uniform noise of amplitude ``jitter`` ranks; this
    produces small non-zero PPE for honest pools, matching Fig 7's
    2-4% error band rather than an implausible exact zero.
    """

    base_jitter_source: "JitterSource"
    base: OrderingPolicy = field(default_factory=FeeRatePolicy)
    jitter: float = 2.0

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        template = self.base.build(entries, max_vsize, reserved_vsize)
        txs = perturb_template_order(
            list(template.transactions), self.base_jitter_source.rng, self.jitter
        )
        return BlockTemplate(
            tuple(txs),
            total_fee=template.total_fee,
            total_vsize=template.total_vsize,
        )


def perturb_template_order(
    txs: list[Transaction], rng: "object", jitter: float
) -> list[Transaction]:
    """Apply :class:`NoisyPolicy`'s rank perturbation to a built template.

    Factored out so the vectorized engine path can replay *exactly* the
    same RNG consumption and reordering as the scalar policy stack: the
    uniform draw happens only for templates longer than two entries and
    positive jitter, and the stable argsort plus topological repair are
    shared code, not re-implementations.
    """
    if len(txs) > 2 and jitter > 0:
        keys = rng.uniform(-jitter, jitter, size=len(txs)) + np.arange(len(txs))
        txs = [txs[i] for i in np.argsort(keys, kind="stable")]
        txs = repair_topological_order(txs)
    return txs


@dataclass
class JitterSource:
    """Holds the RNG a :class:`NoisyPolicy` perturbs with.

    Kept separate so frozen policies can share one mutable stream and
    scenarios can seed it deterministically.
    """

    rng: "object"


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
# Predicates are *introspectable* callables rather than anonymous
# closures: the vectorized engine's policy compiler pattern-matches on
# their type and fields to turn a policy stack into array programs, and
# falls back to calling them entry-by-entry when it cannot.


@dataclass(frozen=True)
class TxidSetPredicate:
    """Matches entries whose txid is in a (live) set.

    ``txids`` is a callable so the set can grow during the simulation —
    e.g. an acceleration service's order book.
    """

    txids: Callable[[], frozenset[str]]

    def __call__(self, entry: MempoolEntry) -> bool:
        return entry.txid in self.txids()


@dataclass(frozen=True)
class AddressPredicate:
    """Matches entries that pay to (or from) ``addresses``.

    ``resolver`` optionally maps a transaction to its input-side
    addresses (requires chain context); outputs are checked directly.
    """

    addresses: frozenset[str]
    resolver: Optional[Callable[[Transaction], frozenset[str]]] = None

    def __call__(self, entry: MempoolEntry) -> bool:
        if entry.tx.touches_address(self.addresses):
            return True
        if self.resolver is not None and self.resolver(entry.tx) & self.addresses:
            return True
        return False


@dataclass(frozen=True)
class AnyOfPredicate:
    """Disjunction of predicates (e.g. own wallets OR the order book)."""

    predicates: tuple[EntryPredicate, ...]

    def __call__(self, entry: MempoolEntry) -> bool:
        return any(predicate(entry) for predicate in self.predicates)


def txid_set_predicate(txids: Callable[[], frozenset[str]]) -> EntryPredicate:
    """Predicate matching entries whose txid is in a (live) set."""
    return TxidSetPredicate(txids)


def address_predicate(
    addresses: frozenset[str],
    resolver: Optional[Callable[[Transaction], frozenset[str]]] = None,
) -> EntryPredicate:
    """Predicate matching entries that pay to (or from) ``addresses``."""
    return AddressPredicate(addresses, resolver)
