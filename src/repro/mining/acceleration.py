"""Transaction-acceleration ("dark fee") services.

Several large pools sell off-chain acceleration: a user pays the pool
directly (on its website) and the pool commits the transaction with top
priority.  The fee is *opaque* — invisible on-chain and to other miners.
This module models the service end to end:

* a price model calibrated to the paper's Fig 14 measurements of
  BTC.com's service (median quote ≈117x the public fee, mean ≈566x),
* an order book recording accepted accelerations (the ground truth the
  detection experiments score against),
* the public per-txid lookup the paper used to validate its detector
  (BTC.com lets anyone ask whether a txid was accelerated).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Calibration targets lifted from the paper's Appendix G.
PAPER_MEDIAN_MULTIPLE = 116.64
PAPER_MEAN_MULTIPLE = 566.3


def _calibrated_sigma(median: float, mean: float) -> float:
    """Log-normal sigma so that mean/median matches the paper's ratio."""
    if median <= 0 or mean <= median:
        raise ValueError("need mean > median > 0 for a log-normal fit")
    return float(np.sqrt(2.0 * np.log(mean / median)))


@dataclass(frozen=True)
class AccelerationQuote:
    """A price quote for accelerating one transaction."""

    txid: str
    public_fee: int
    acceleration_fee: int

    @property
    def multiple(self) -> float:
        """Quoted dark fee as a multiple of the public fee."""
        if self.public_fee <= 0:
            return float("inf")
        return self.acceleration_fee / self.public_fee


class AccelerationPricer:
    """Quote dark fees as a log-normal multiple of the public fee.

    Quotes are deterministic per txid (hash-seeded), so repeated queries
    return the same price — as a real service's quote endpoint does
    within a congestion regime.
    """

    def __init__(
        self,
        median_multiple: float = PAPER_MEDIAN_MULTIPLE,
        mean_multiple: float = PAPER_MEAN_MULTIPLE,
        min_fee: int = 1000,
    ) -> None:
        self.median_multiple = median_multiple
        self.sigma = _calibrated_sigma(median_multiple, mean_multiple)
        self.min_fee = min_fee

    def multiple_for(self, txid: str) -> float:
        """Deterministic log-normal multiple for ``txid``."""
        digest = hashlib.sha256(f"accel-price/{txid}".encode("ascii")).digest()
        seed = int.from_bytes(digest[:8], "big")
        rng = np.random.default_rng(seed)
        return float(rng.lognormal(mean=np.log(self.median_multiple), sigma=self.sigma))

    def quote(self, txid: str, public_fee: int) -> AccelerationQuote:
        """Price accelerating ``txid`` given its publicly offered fee."""
        base = max(public_fee, self.min_fee)
        acceleration_fee = int(round(base * self.multiple_for(txid)))
        return AccelerationQuote(
            txid=txid, public_fee=public_fee, acceleration_fee=acceleration_fee
        )


@dataclass(frozen=True)
class AccelerationOrder:
    """An accepted acceleration: the dark payment the chain never sees."""

    txid: str
    fee_paid: int
    accepted_at: float
    public_fee: int


@dataclass
class AccelerationService:
    """A pool's (or pool consortium's) acceleration order book.

    ``operators`` names the pools honouring orders placed here; sharing
    one service between pools models acceleration consortia.  Revenue is
    retained even when a *different* miner commits the transaction —
    the asymmetry §5.4.1 highlights.
    """

    name: str
    pricer: AccelerationPricer = field(default_factory=AccelerationPricer)
    operators: tuple[str, ...] = ()
    _orders: dict[str, AccelerationOrder] = field(default_factory=dict, repr=False)
    _txid_cache: Optional[frozenset[str]] = field(default=None, repr=False)

    def quote(self, txid: str, public_fee: int) -> AccelerationQuote:
        """Public price check (does not place an order)."""
        return self.pricer.quote(txid, public_fee)

    def accelerate(
        self, txid: str, public_fee: int, now: float, offered_fee: Optional[int] = None
    ) -> AccelerationOrder:
        """Accept payment and enqueue ``txid`` for priority commitment.

        ``offered_fee`` below the quote is rejected, as real services
        simply do not process underpaid requests.
        """
        quote = self.quote(txid, public_fee)
        paid = quote.acceleration_fee if offered_fee is None else offered_fee
        if paid < quote.acceleration_fee:
            raise ValueError(
                f"offered {paid} sat below quoted {quote.acceleration_fee} sat"
            )
        order = AccelerationOrder(
            txid=txid, fee_paid=paid, accepted_at=now, public_fee=public_fee
        )
        self._orders[txid] = order
        self._txid_cache = None
        return order

    def is_accelerated(self, txid: str) -> bool:
        """The public checker the paper queried for Table 4."""
        return txid in self._orders

    def accelerated_txids(self) -> frozenset[str]:
        """Current order book as a set (consumed by pool policies).

        Cached between mutations — pool policies query this once per
        pending entry while assembling templates.
        """
        if self._txid_cache is None:
            self._txid_cache = frozenset(self._orders)
        return self._txid_cache

    def orders(self) -> list[AccelerationOrder]:
        return list(self._orders.values())

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def export_orders(self) -> list[list]:
        """The order book as JSON-ready rows (insertion-ordered)."""
        return [
            [order.txid, order.fee_paid, order.accepted_at, order.public_fee]
            for order in self._orders.values()
        ]

    def restore_orders(self, rows: list) -> None:
        """Replace the order book with previously exported rows."""
        self._orders = {
            txid: AccelerationOrder(
                txid=txid,
                fee_paid=int(fee_paid),
                accepted_at=float(accepted_at),
                public_fee=int(public_fee),
            )
            for txid, fee_paid, accepted_at, public_fee in rows
        }
        self._txid_cache = None

    @property
    def revenue(self) -> int:
        """Total dark fees collected, in satoshi."""
        return sum(order.fee_paid for order in self._orders.values())
