"""Candidate chain-neutrality norms (§6.1's open questions, implemented).

The paper closes by asking what transaction-prioritization norms
*should* look like: should waiting time count, so no transaction starves
indefinitely?  Should transferred value matter?  Can ordering be made
source-blind, like network neutrality for ISPs?  This module implements
concrete candidate policies so those questions become measurable:

* :class:`AgedFeeRatePolicy` — fee-rate plus a waiting-time credit, the
  classic cure for starvation;
* :class:`ValueDensityPolicy` — ranks by transferred value per vbyte,
  the alternative §6.1 explicitly floats (and warns about);
* :class:`FairShareRoundRobinPolicy` — deficit-round-robin across fee
  bands, guaranteeing every band a share of block space;
* :class:`RandomLotteryPolicy` — fee-blind uniform selection, the
  neutrality extreme.

The companion metrics live in :mod:`repro.core.neutrality`; the
``ext_norms`` experiment compares the policies on delay fairness,
starvation and miner revenue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..chain.constants import MAX_BLOCK_VSIZE
from ..chain.transaction import Transaction
from ..mempool.mempool import MempoolEntry
from .gbt import BlockTemplate


def _fill_in_order(
    ranked: Sequence[MempoolEntry], budget: int
) -> BlockTemplate:
    """Fill a template following a precomputed ranking."""
    chosen: list[Transaction] = []
    used = 0
    fee = 0
    for entry in ranked:
        if used + entry.vsize > budget:
            continue
        chosen.append(entry.tx)
        used += entry.vsize
        fee += entry.tx.fee
    return BlockTemplate(tuple(chosen), total_fee=fee, total_vsize=used)


@dataclass(frozen=True)
class AgedFeeRatePolicy:
    """Fee-rate plus a waiting-time credit.

    Effective score = fee_rate + ``aging_rate`` sat/vB per hour waited.
    With aging_rate > 0 every transaction eventually outranks fresh
    traffic, bounding worst-case delay — the anti-starvation norm §6.1
    asks about.  The current time is approximated by the newest arrival
    in the pending set.
    """

    aging_rate_sat_vb_per_hour: float = 20.0

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        if not entries:
            return BlockTemplate((), 0, 0)
        now = max(entry.arrival_time for entry in entries)

        def score(entry: MempoolEntry) -> float:
            waited_hours = (now - entry.arrival_time) / 3600.0
            return entry.fee_rate + self.aging_rate_sat_vb_per_hour * waited_hours

        ranked = sorted(
            entries, key=lambda e: (-score(e), e.arrival_time, e.txid)
        )
        return _fill_in_order(ranked, max_vsize - reserved_vsize)


@dataclass(frozen=True)
class ValueDensityPolicy:
    """Rank by transferred value per vbyte.

    §6.1 notes fee-rate ordering "favors larger value over smaller
    value transactions" only indirectly; this policy makes value the
    explicit criterion, so experiments can show what it does to small
    payments (it starves them — which is the point of measuring).
    """

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        ranked = sorted(
            entries,
            key=lambda e: (-e.tx.output_value / e.vsize, e.arrival_time, e.txid),
        )
        return _fill_in_order(ranked, max_vsize - reserved_vsize)


@dataclass
class FairShareRoundRobinPolicy:
    """Deficit round-robin over fee bands.

    Block space is split between fee bands in ``weights`` proportion;
    within a band, the oldest transaction goes first.  High-fee traffic
    still gets the largest share (keeping most of the revenue), but the
    low band can no longer be starved outright.
    """

    #: (upper fee-rate bound in sat/vB, share of block space).
    bands: tuple[tuple[float, float], ...] = (
        (10.0, 0.15),
        (100.0, 0.35),
        (float("inf"), 0.50),
    )

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        budget = max_vsize - reserved_vsize
        queues: list[list[MempoolEntry]] = [[] for _ in self.bands]
        for entry in entries:
            for index, (bound, _) in enumerate(self.bands):
                if entry.fee_rate <= bound:
                    queues[index].append(entry)
                    break
        for queue in queues:
            queue.sort(key=lambda e: (e.arrival_time, e.txid))

        chosen: list[Transaction] = []
        used = 0
        fee = 0
        # First pass: honour each band's guaranteed share.
        leftovers: list[MempoolEntry] = []
        for (bound, share), queue in zip(self.bands, queues):
            band_budget = int(budget * share)
            band_used = 0
            for entry in queue:
                if band_used + entry.vsize > band_budget or used + entry.vsize > budget:
                    leftovers.append(entry)
                    continue
                chosen.append(entry.tx)
                band_used += entry.vsize
                used += entry.vsize
                fee += entry.tx.fee
        # Second pass: redistribute unused space by fee-rate.
        leftovers.sort(key=lambda e: (-e.fee_rate, e.arrival_time, e.txid))
        for entry in leftovers:
            if used + entry.vsize > budget:
                continue
            chosen.append(entry.tx)
            used += entry.vsize
            fee += entry.tx.fee
        return BlockTemplate(tuple(chosen), total_fee=fee, total_vsize=used)


@dataclass
class RandomLotteryPolicy:
    """Fee-blind uniform random selection — the neutrality extreme.

    Every pending transaction has the same inclusion chance regardless
    of fee; the benchmark shows what that perfect "fairness" costs in
    miner revenue and in incentive compatibility.
    """

    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def build(
        self,
        entries: Sequence[MempoolEntry],
        max_vsize: int = MAX_BLOCK_VSIZE,
        reserved_vsize: int = 0,
    ) -> BlockTemplate:
        order = list(entries)
        self.rng.shuffle(order)  # type: ignore[arg-type]
        return _fill_in_order(order, max_vsize - reserved_vsize)


#: The candidate norms by name, for experiments and the CLI.
CANDIDATE_NORMS: dict[str, object] = {
    "fee-rate": None,  # filled lazily to avoid a circular import
    "aged-fee-rate": AgedFeeRatePolicy(),
    "value-density": ValueDensityPolicy(),
    "fair-share": FairShareRoundRobinPolicy(),
    "lottery": RandomLotteryPolicy(),
}


def candidate_norms() -> dict[str, object]:
    """All candidate ordering norms, including the incumbent."""
    from .policies import FeeRatePolicy

    norms = dict(CANDIDATE_NORMS)
    norms["fee-rate"] = FeeRatePolicy(package_selection=False)
    return norms
