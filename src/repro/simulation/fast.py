"""repro.simulation.fast — the engine's vectorized production hot path.

The scalar loop in :mod:`repro.simulation.engine` admits one planned
transaction at a time into python dicts and rebuilds every block
template from freshly materialised :class:`MempoolEntry` lists.  That
is the *oracle*: small, obviously faithful to the model, and kept
runnable via ``REPRO_AUDIT_SCALAR=1``.  This module is the fast path
the engine dispatches to by default, and its contract is strict:

**byte-identical datasets.**  Not "statistically equivalent" — the
serialized output of a scenario run must not change by a single byte
when the fast path is on (``tests/test_engine_oracle.py`` enforces
this on the reference datasets, including fault-degraded and
misbehaving-policy cells).  Three properties make that tractable:

* *Identical RNG consumption.*  The production loop draws from exactly
  two sources — one empty-block uniform per discovery, and one jitter
  vector per noisy template longer than two entries — and both draws
  are made by shared code (``mining_rng`` here,
  :func:`~repro.mining.policies.perturb_template_order` for jitter),
  so stream positions line up draw for draw.
* *Exact ordering keys.*  All ranking goes through
  :func:`repro.mempool.feerate.fee_rate_rank`.  Vectorized sorts use
  the float64 fee-rate first — float order is a *coarsening* of exact
  rational order, never an inversion — and then re-sorts equal-float
  runs with the integer ranks, so candidate order matches the scalar
  comparison exactly even for rationals that collide in float64.
* *Batching only where order provably cannot matter.*  Admission is
  batched per inter-block epoch, but only for transactions that spend
  uncontested outpoints and request no acceleration: those can neither
  conflict with the chain, displace an incumbent, nor be rejected, so
  admitting them with one slice assignment is order-equivalent to the
  scalar per-transaction walk.  Everything else ("special"
  transactions) runs through a verbatim port of the scalar admission
  logic, interleaved at its exact plan position.

Layout: one :class:`PlanArrays` per run packs fees/vsizes/fee-rates
into NumPy arrays with a CSR encoding of in-plan parent links; pending
and committed state are boolean flag arrays; per-block eligibility is
a vector compare plus a ``reduceat`` parent-closure fixpoint; and each
pool's policy stack is compiled (:func:`compile_policy`) into array
programs that pattern-match the introspectable policy/predicate
dataclasses.  Policies that do not compile fall back to materialising
entries and calling the scalar ``policy.build`` — still byte-identical
because the candidate order is the same.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .. import obs
from ..chain.blockchain import Blockchain
from ..mempool.feerate import fee_rate_rank
from ..mempool.mempool import MempoolEntry
from ..mining.gbt import BlockTemplate, _check_budget
from ..mining.policies import (
    AddressPredicate,
    AnyOfPredicate,
    CensorPolicy,
    FeeRatePolicy,
    MinFeeRatePolicy,
    NoisyPolicy,
    PrioritizeSetPolicy,
    TxidSetPredicate,
    perturb_template_order,
)
from ..obs.invariants import InvariantViolation
from .workload import PlannedTx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SimulationEngine

_EMPTY = np.empty(0, dtype=np.int64)


class PlanArrays:
    """Columnar view of a (time-sorted) workload plan.

    Built once per run; everything the per-block loop touches often is
    either a NumPy array indexed by plan position or a plain python
    list (python lists beat NumPy scalar indexing inside the remaining
    python loops).
    """

    def __init__(self, plan: Sequence[PlannedTx]) -> None:
        self.plan = list(plan)
        count = len(self.plan)
        self.count = count
        self.txs = [p.tx for p in self.plan]
        self.txids = [tx.txid for tx in self.txs]
        self.txid_index = {txid: i for i, txid in enumerate(self.txids)}
        self.fees = [tx.fee for tx in self.txs]
        self.vsizes = [tx.vsize for tx in self.txs]
        self.fees_arr = np.asarray(self.fees, dtype=np.int64)
        self.vsizes_arr = np.asarray(self.vsizes, dtype=np.int64)
        # Float64 fee-rates: the same IEEE division the scalar
        # ``entry.fee_rate`` performs, used for coarse sorting and the
        # MinFeeRatePolicy floor compare.
        self.rates = self.fees_arr / self.vsizes_arr
        # Exact integer ranks (python ints), for tie refinement and the
        # ancestor-package heap keys; negations are precomputed because
        # bigint negation allocates and the merged-stream loop indexes
        # these per block.
        self.ranks = [fee_rate_rank(f, v) for f, v in zip(self.fees, self.vsizes)]
        self.neg_ranks = [-r for r in self.ranks]
        # Integer stand-in for the txid tie-break: the rank of the txid
        # in lexicographic order sorts identically to the string
        # (NumPy unicode comparison is code-point order, same as str).
        order = np.argsort(np.array(self.txids))
        txid_order = np.empty(count, dtype=np.int64)
        txid_order[order] = np.arange(count, dtype=np.int64)
        self.txid_order = txid_order
        # Plan indices in txid order; a stable sort of any key applied
        # over this base yields (key, txid) lexicographic order with a
        # single sort pass instead of a two-key lexsort.
        self.txid_sorted = order

        # CSR encoding of in-plan parent links (children only), plus
        # txid-keyed children for eviction cascades (mirrors the scalar
        # engine's ``plan_children``), built in one pass.
        child_idx: list[int] = []
        parent_flat: list[int] = []
        offsets = [0]
        parents_of: dict[int, tuple[int, ...]] = {}
        plan_children: dict[str, list[str]] = {}
        tidx = self.txid_index
        txids = self.txids
        for i, tx in enumerate(self.txs):
            ps = [tidx[p] for p in tx.parent_txids if p in tidx]
            if ps:
                child_idx.append(i)
                parent_flat.extend(ps)
                offsets.append(len(parent_flat))
                parents_of[i] = tuple(ps)
                txid = txids[i]
                for p in ps:
                    plan_children.setdefault(txids[p], []).append(txid)
        self.child_idx = np.asarray(child_idx, dtype=np.int64)
        self.parent_flat = np.asarray(parent_flat, dtype=np.int64)
        self.parent_offsets = np.asarray(offsets, dtype=np.int64)
        self.parents_of = parents_of
        self.plan_children = plan_children

        # Contested outpoints: spent by two or more plan transactions.
        # Only these can produce chain conflicts or RBF displacement,
        # so only their spenders need the scalar admission walk.
        # Specials (contested spenders + accelerated txs) fall out of
        # the same pass: when a second spender of a prevout shows up,
        # it and the recorded first spender are both marked.
        first_spender: dict[object, int] = {}
        contested: set = set()
        special = np.zeros(count, dtype=bool)
        for i, planned in enumerate(self.plan):
            if planned.accelerate_via is not None:
                special[i] = True
            for txin in planned.tx.inputs:
                prevout = txin.prevout
                j = first_spender.setdefault(prevout, i)
                if j != i:
                    contested.add(prevout)
                    special[i] = True
                    special[j] = True
        self.contested = contested
        self.is_special = special
        self.special_indices = np.flatnonzero(special).tolist()
        # address → plan rows whose outputs pay it, restricted to the
        # addresses predicates actually ask about (indexing every
        # output would cost as much as the scans it replaces).
        self._address_rows: dict[str, list[int]] = {}
        self._address_scanned: set = set()

    def address_rows(self, addresses) -> dict[str, list[int]]:
        """Rows paying each of ``addresses``; scans once per new set.

        ``produce_fast`` primes this with the union of every compiled
        address predicate so all of them share a single output pass.
        """
        rows = self._address_rows
        missing = set(addresses) - self._address_scanned
        if missing:
            for i, tx in enumerate(self.txs):
                for txout in tx.outputs:
                    if txout.address in missing:
                        rows.setdefault(txout.address, []).append(i)
            self._address_scanned |= missing
        return rows



# ----------------------------------------------------------------------
# Exact candidate ordering
# ----------------------------------------------------------------------
def _exact_order(
    pa: PlanArrays, tie: np.ndarray, cand: np.ndarray
) -> np.ndarray:
    """``cand`` sorted by the scalar key (-rank, arrival, txid), exactly.

    ``tie`` is the pool's static tie-rank: the rank of each plan index
    under (arrival, txid) lexicographic order.  Arrivals are fixed per
    pool for the whole run, so the scalar two-component tie-break
    collapses to one integer comparison.

    A float64 lexsort does the bulk of the work; because float division
    is monotone, distinct rationals can *merge* into one float but can
    never swap, so only equal-float runs need the exact integer ranks —
    and only runs containing two different (fee, vsize) pairs at that
    (component-wise identical pairs are the same rational a fortiori).
    """
    if cand.size <= 1:
        return cand
    rates = pa.rates[cand]
    order = np.lexsort((tie[cand], -rates))
    out = cand[order]
    srates = rates[order]
    same = srates[1:] == srates[:-1]
    if not same.any():
        return out
    f = pa.fees_arr[out]
    v = pa.vsizes_arr[out]
    suspect = same & ((f[1:] != f[:-1]) | (v[1:] != v[:-1]))
    pos = np.flatnonzero(suspect)
    if pos.size == 0:
        return out
    run_start = np.flatnonzero(np.concatenate(([True], ~same)))
    ranks = pa.ranks
    n = out.size
    done: set[int] = set()
    for p in pos.tolist():
        start = int(run_start[np.searchsorted(run_start, p, side="right") - 1])
        if start in done:
            continue
        done.add(start)
        end = start + 1
        while end < n and same[end - 1]:
            end += 1
        group = out[start:end].tolist()
        group.sort(key=lambda g: (-ranks[g], tie[g]))
        out[start:end] = group
    return out


def _greedy_fill(
    pa: PlanArrays, order: np.ndarray, budget: int
) -> tuple[list[int], int, int]:
    """Greedy skip-and-continue fill over pre-sorted candidates.

    The prefix that fits contiguously is taken with one cumsum +
    searchsorted; the tail falls back to the scalar walk with a
    suffix-min early exit (once nothing remaining can fit, every
    further scalar iteration is a skip, so stopping is
    output-equivalent).
    """
    chosen: list[int] = []
    used = 0
    fee = 0
    if order.size == 0:
        return chosen, fee, used
    vs = pa.vsizes_arr[order]
    cum = np.cumsum(vs)
    k = int(np.searchsorted(cum, budget, side="right"))
    if k:
        chosen.extend(order[:k].tolist())
        used = int(cum[k - 1])
        fee = int(pa.fees_arr[order[:k]].sum())
    if k < order.size:
        tail = order[k:].tolist()
        sufmin = np.minimum.accumulate(vs[k:][::-1])[::-1].tolist()
        vlist = pa.vsizes
        flist = pa.fees
        for t, i in enumerate(tail):
            if budget - used < sufmin[t]:
                break
            v = vlist[i]
            if used + v <= budget:
                chosen.append(i)
                used += v
                fee += flist[i]
    return chosen, fee, used


def _ancestor_fill(
    pa: PlanArrays,
    tie: np.ndarray,
    cand: np.ndarray,
    order: np.ndarray,
    budget: int,
) -> tuple[list[int], int, int]:
    """Ancestor-package selection replicating the scalar heap exactly.

    The scalar builder pushes every entry keyed by package rank and
    lazily rescores stale pops.  Since keys are unique (txid is the
    final component), pop order is a pure function of the stored keys —
    so singletons, whose keys never change, can stream from the
    pre-sorted ``order`` while only complex packages (one or more
    in-layer ancestors) live in a real heap.  The merged consumption
    reproduces the scalar pop sequence decision for decision.
    """
    count = pa.count
    in_layer = np.zeros(count, dtype=bool)
    in_layer[cand] = True

    child_idx = pa.child_idx
    if child_idx.size:
        # Restrict every edge-sized pass to candidate children first:
        # mid-simulation most of the plan is committed or not yet
        # broadcast, so eligible rows are a small slice of the global
        # parent table.
        rows = np.flatnonzero(in_layer[child_idx])
    else:
        rows = _EMPTY
    if rows.size:
        starts = pa.parent_offsets[rows]
        lens = pa.parent_offsets[rows + 1] - starts
        cum = np.cumsum(lens)
        # Ragged gather of the candidate rows' edges out of the CSR.
        pos = np.repeat(starts - cum + lens, lens) + np.arange(int(cum[-1]))
        sub_parents = pa.parent_flat[pos]
        sub_off = cum - lens
        pmask = in_layer[sub_parents]
        has_parent = np.logical_or.reduceat(pmask, sub_off)
    else:
        has_parent = np.zeros(0, dtype=bool)

    if not has_parent.any():
        # No packages in this layer: ancestor selection degenerates to
        # the greedy fill (identical pop order and skip semantics).
        return _greedy_fill(pa, order, budget)

    complex_plan = child_idx[rows[has_parent]]
    complex_mask = np.zeros(count, dtype=bool)
    complex_mask[complex_plan] = True
    layer_b = in_layer.view(np.uint8).tobytes()

    # Initial package sums, vectorized over in-layer parents.  For
    # *shallow* packages (no in-layer parent is itself complex) the
    # ancestor set is exactly the in-layer parent set, which is also
    # duplicate-free; deep chains take the memoised python walk.
    edge_keep = np.repeat(has_parent, lens)
    c_parents = sub_parents[edge_keep]
    c_pm = pmask[edge_keep]
    c_lens = lens[has_parent]
    c_off = np.cumsum(c_lens) - c_lens
    deep_adj = c_pm & complex_mask[c_parents]
    deep_rows = np.logical_or.reduceat(deep_adj, c_off)
    pkg_f_arr = pa.fees_arr[complex_plan] + np.add.reduceat(
        np.where(c_pm, pa.fees_arr[c_parents], 0), c_off
    )
    pkg_v_arr = pa.vsizes_arr[complex_plan] + np.add.reduceat(
        np.where(c_pm, pa.vsizes_arr[c_parents], 0), c_off
    )

    anc_cache: dict[int, frozenset[int]] = {}
    parents_of = pa.parents_of

    def ancestors_walk(i: int) -> frozenset[int]:
        """Full in-layer ancestor closure (deep chains only)."""
        cached = anc_cache.get(i)
        if cached is not None:
            return cached
        stack = [i]
        while stack:
            cur = stack[-1]
            ps = [p for p in parents_of.get(cur, ()) if layer_b[p]]
            missing = [p for p in ps if p not in anc_cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            if cur in anc_cache:
                continue
            acc: set[int] = set()
            for p in ps:
                acc.add(p)
                acc.update(anc_cache[p])
            anc_cache[cur] = frozenset(acc)
        return anc_cache[i]

    fees = pa.fees
    vsizes = pa.vsizes
    txids = pa.txids

    deep_set: set[int] = set()
    deep_pos = np.flatnonzero(deep_rows)
    for k in deep_pos.tolist():
        i = int(complex_plan[k])
        deep_set.add(i)
        a = ancestors_walk(i)
        pkg_f_arr[k] = fees[i] + sum(fees[t] for t in a)
        pkg_v_arr[k] = vsizes[i] + sum(vsizes[t] for t in a)

    # The complex entries stream from a pre-sorted list instead of all
    # being materialised into the heap: exact big-int keys are computed
    # lazily as entries reach the comparison window, so packages the
    # budget never reaches cost one float lexsort slot and nothing
    # more.  The same float-coarsening argument as `_exact_order`
    # applies; equal-float runs are refined with exact package ranks.
    neg_pkg_rates = -(pkg_f_arr / pkg_v_arr)
    c_tie = tie[complex_plan]
    corder = np.lexsort((c_tie, neg_pkg_rates))
    srates = neg_pkg_rates[corder]
    same = srates[1:] == srates[:-1]
    if same.any():
        f_s = pkg_f_arr[corder]
        v_s = pkg_v_arr[corder]
        suspect = same & ((f_s[1:] != f_s[:-1]) | (v_s[1:] != v_s[:-1]))
        pos = np.flatnonzero(suspect)
        if pos.size:
            run_start = np.flatnonzero(np.concatenate(([True], ~same)))
            n_c = corder.size
            done: set[int] = set()
            for p in pos.tolist():
                start = int(run_start[np.searchsorted(run_start, p, side="right") - 1])
                if start in done:
                    continue
                done.add(start)
                end = start + 1
                while end < n_c and same[end - 1]:
                    end += 1
                seg = corder[start:end].tolist()
                seg.sort(
                    key=lambda k: (
                        -fee_rate_rank(int(pkg_f_arr[k]), int(pkg_v_arr[k])),
                        c_tie[k],
                    )
                )
                corder[start:end] = seg
    cstream = complex_plan[corder].tolist()
    cstream_f = pkg_f_arr[corder].tolist()
    cstream_v = pkg_v_arr[corder].tolist()
    cstream_t = c_tie[corder].tolist()
    cstream_r = neg_pkg_rates[corder].tolist()
    n_complex = len(cstream)
    min_complex_own = int(pa.vsizes_arr[complex_plan].min())

    singles_arr = order[~complex_mask[order]]
    singles_list = singles_arr.tolist()
    n_singles = len(singles_list)
    if n_singles:
        svs = pa.vsizes_arr[singles_arr]
        sufmin_singles = np.minimum.accumulate(svs[::-1])[::-1].tolist()
    else:
        sufmin_singles = []
    neg_ranks = pa.neg_ranks
    # Coarse float keys for the singles stream: bisecting on these is
    # cheap, and the monotone-coarsening argument bounds the error to
    # the equal-float run at the boundary, which is refined exactly.
    fneg = (-pa.rates[singles_arr]).tolist()
    stie = tie[singles_arr].tolist()

    sel_b = bytearray(count)
    sel_np = np.frombuffer(sel_b, dtype=np.uint8)
    chosen: list[int] = []
    used = 0
    fee = 0
    sp = 0
    cp = 0
    # Exact neg rank of the current stream head, computed lazily.
    chead_rank: Optional[int] = None
    # Rescored entries go to a real heap; everything else streams.
    # Keys are (exact neg rank, tie rank, plan index, float neg rate);
    # tie ranks are unique, so the trailing components never compare.
    heap: list[tuple[int, int, int, float]] = []

    def package_members(i: int) -> list[int]:
        """Unselected in-layer ancestors of ``i`` (excluding ``i``)."""
        if i in deep_set:
            return [t for t in ancestors_walk(i) if not sel_b[t]]
        return [p for p in parents_of[i] if layer_b[p] and not sel_b[p]]

    def anc_len(t: int) -> int:
        if not complex_mask[t]:
            return 0
        if t in deep_set:
            return len(ancestors_walk(t))
        count_in = 0
        for p in parents_of[t]:
            if layer_b[p]:
                count_in += 1
        return count_in

    while True:
        # Effective complex head: min of the rescore heap and the
        # stream (skipping stream entries selected as members of other
        # packages, as the scalar pop loop does).  The head's exact
        # big-int rank is computed only when a float comparison cannot
        # settle the order: most stream heads never need one.
        while cp < n_complex and sel_b[cstream[cp]]:
            cp += 1
            chead_rank = None
        has_stream = cp < n_complex
        if heap:
            if has_stream:
                if chead_rank is None:
                    chead_rank = -fee_rate_rank(cstream_f[cp], cstream_v[cp])
                # 4-tuple vs 2-tuple: tie ranks are unique, so the
                # comparison always resolves by the first two slots.
                from_heap = heap[0] < (chead_rank, cstream_t[cp])
            else:
                from_heap = True
        else:
            from_heap = False
        if from_heap:
            ctop_rank, ctop_tie, _, ctop_f = heap[0]
        elif has_stream:
            ctop_f = cstream_r[cp]
            ctop_tie = cstream_t[cp]
            ctop_rank = chead_rank  # possibly None (lazy)
        else:
            ctop_f = None
        if sp < n_singles:
            # All singles strictly outranking every stored complex key
            # pop before any complex entry in the scalar sequence
            # (stored keys only change when a complex entry pops).
            # The float bisect lands inside the boundary's equal-float
            # run; only that run needs the exact big-int ranks.
            if ctop_f is not None:
                cut = bisect_left(fneg, ctop_f, sp)
                if cut < n_singles and fneg[cut] == ctop_f:
                    if ctop_rank is None:
                        chead_rank = ctop_rank = -fee_rate_rank(
                            cstream_f[cp], cstream_v[cp]
                        )
                    while (
                        cut < n_singles
                        and fneg[cut] == ctop_f
                        and neg_ranks[singles_list[cut]] < ctop_rank
                    ):
                        cut += 1
            else:
                cut = n_singles
            if 0 < cut - sp <= 32:
                # Short runs between complex pops: plain python beats
                # the fixed overhead of the array path.
                for i_s in singles_list[sp:cut]:
                    if sel_b[i_s]:
                        continue
                    v = vsizes[i_s]
                    if used + v <= budget:
                        sel_b[i_s] = 1
                        chosen.append(i_s)
                        used += v
                        fee += fees[i_s]
                sp = cut
                continue
            if cut > sp:
                group = singles_arr[sp:cut]
                unsel = group[sel_np[group] == 0]
                if unsel.size:
                    rem = budget - used
                    tot = int(pa.vsizes_arr[unsel].sum())
                    if tot <= rem:
                        sel_np[unsel] = 1
                        chosen.extend(unsel.tolist())
                        used += tot
                        fee += int(pa.fees_arr[unsel].sum())
                    else:
                        # Block-filling regime: scalar walk with skips.
                        for i_s in unsel.tolist():
                            v = vsizes[i_s]
                            if used + v <= budget:
                                sel_b[i_s] = 1
                                chosen.append(i_s)
                                used += v
                                fee += fees[i_s]
                sp = cut
                continue
            i_s = singles_list[sp]
            if sel_b[i_s]:
                sp += 1
                continue
            if ctop_f is not None and fneg[sp] == ctop_f:
                # Equal-float boundary: refine exactly, settling equal
                # exact ranks by the tie rank (floats strictly above
                # ctop_f mean the single pops later — no exact needed).
                if ctop_rank is None:
                    chead_rank = ctop_rank = -fee_rate_rank(
                        cstream_f[cp], cstream_v[cp]
                    )
                if (neg_ranks[i_s], stie[sp]) < (ctop_rank, ctop_tie):
                    sp += 1
                    v = vsizes[i_s]
                    if used + v <= budget:
                        sel_b[i_s] = 1
                        chosen.append(i_s)
                        used += v
                        fee += fees[i_s]
                    continue
        if ctop_f is None:
            break
        rem = budget - used
        smin = sufmin_singles[sp] if sp < n_singles else None
        if rem < min_complex_own and (smin is None or rem < smin):
            # Nothing pending or future can fit: every remaining scalar
            # pop is a skip or a doomed rescore, so the fill is final.
            break
        if from_heap:
            neg_rank, tie_i, i, _ = heapq.heappop(heap)
            if sel_b[i]:
                continue
            members = package_members(i)
            pkg_f = fees[i]
            pkg_v = vsizes[i]
            for t in members:
                pkg_f += fees[t]
                pkg_v += vsizes[t]
            cur_key = -fee_rate_rank(pkg_f, pkg_v)
            if cur_key != neg_rank:
                obs.counter("gbt.packages.rescored")
                heapq.heappush(heap, (cur_key, tie_i, i, -(pkg_f / pkg_v)))
                continue
        else:
            i = cstream[cp]
            tie_i = cstream_t[cp]
            stored_f = cstream_f[cp]
            stored_v = cstream_v[cp]
            stored_rank = chead_rank  # possibly still None
            cp += 1
            chead_rank = None
            members = package_members(i)
            pkg_f = fees[i]
            pkg_v = vsizes[i]
            for t in members:
                pkg_f += fees[t]
                pkg_v += vsizes[t]
            if pkg_f != stored_f or pkg_v != stored_v:
                # Pair-equal packages share a rank a fortiori; only a
                # changed pair needs the exact ranks to decide whether
                # the scalar pop rescores.
                if stored_rank is None:
                    stored_rank = -fee_rate_rank(stored_f, stored_v)
                cur_key = -fee_rate_rank(pkg_f, pkg_v)
                if cur_key != stored_rank:
                    obs.counter("gbt.packages.rescored")
                    heapq.heappush(heap, (cur_key, tie_i, i, -(pkg_f / pkg_v)))
                    continue
        if used + pkg_v > budget:
            continue
        members.append(i)
        members.sort(key=lambda t: (anc_len(t), txids[t]))
        for t in members:
            sel_b[t] = 1
            chosen.append(t)
        used += pkg_v
        fee += pkg_f
    return chosen, fee, used


# ----------------------------------------------------------------------
# Policy compiler
# ----------------------------------------------------------------------
class _CompiledTxidSet:
    __slots__ = ("txids_fn",)

    def __init__(self, txids_fn) -> None:
        self.txids_fn = txids_fn

    def mask(self, pa: PlanArrays, arrivals: np.ndarray, cand: np.ndarray) -> np.ndarray:
        live = self.txids_fn()
        if not live:
            return np.zeros(cand.size, dtype=bool)
        tidx = pa.txid_index
        hits = [tidx[t] for t in live if t in tidx]
        mask = np.zeros(pa.count, dtype=bool)
        mask[hits] = True
        return mask[cand]


class _CompiledAddress:
    __slots__ = ("addresses", "_mask")

    def __init__(self, addresses: frozenset[str]) -> None:
        self.addresses = addresses
        self._mask: Optional[np.ndarray] = None

    def mask(self, pa: PlanArrays, arrivals: np.ndarray, cand: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # Same semantics as ``touches_address`` (outputs only),
            # via the plan's shared address → rows map.
            rows = pa.address_rows(self.addresses)
            mask = np.zeros(pa.count, dtype=bool)
            for address in self.addresses:
                hits = rows.get(address)
                if hits:
                    mask[hits] = True
            self._mask = mask
        return self._mask[cand]


class _CompiledAnyOf:
    __slots__ = ("parts",)

    def __init__(self, parts) -> None:
        self.parts = parts

    def mask(self, pa: PlanArrays, arrivals: np.ndarray, cand: np.ndarray) -> np.ndarray:
        mask = self.parts[0].mask(pa, arrivals, cand)
        for part in self.parts[1:]:
            mask = mask | part.mask(pa, arrivals, cand)
        return mask


def compile_predicate(predicate):
    """Compile an entry predicate to a vector mask, or None."""
    if isinstance(predicate, TxidSetPredicate):
        return _CompiledTxidSet(predicate.txids)
    if isinstance(predicate, AddressPredicate) and predicate.resolver is None:
        # touches_address checks outputs only, which the static
        # address index covers; a resolver needs chain context.
        return _CompiledAddress(predicate.addresses)
    if isinstance(predicate, AnyOfPredicate):
        parts = [compile_predicate(p) for p in predicate.predicates]
        if parts and all(part is not None for part in parts):
            return _CompiledAnyOf(tuple(parts))
    return None


class _CompiledFeeRate:
    __slots__ = ("package",)

    def __init__(self, package: bool) -> None:
        self.package = package

    def build(self, pa, arrivals, tie, cand, max_vsize, reserved_vsize):
        budget = _check_budget(max_vsize, reserved_vsize)
        order = _exact_order(pa, tie, cand)
        if self.package:
            with obs.span("gbt.ancestor_template"):
                chosen, fee, used = _ancestor_fill(pa, tie, cand, order, budget)
            obs.counter("gbt.templates.ancestor")
        else:
            with obs.span("gbt.greedy_template"):
                chosen, fee, used = _greedy_fill(pa, order, budget)
            obs.counter("gbt.templates.greedy")
        obs.counter("gbt.txs.selected", len(chosen))
        txs = pa.txs
        return [txs[i] for i in chosen], fee, used


class _CompiledMinFee:
    __slots__ = ("floor", "base")

    def __init__(self, floor: float, base) -> None:
        self.floor = floor
        self.base = base

    def build(self, pa, arrivals, tie, cand, max_vsize, reserved_vsize):
        if cand.size:
            cand = cand[pa.rates[cand] >= self.floor]
        return self.base.build(pa, arrivals, tie, cand, max_vsize, reserved_vsize)


class _CompiledNoisy:
    __slots__ = ("source", "jitter", "base")

    def __init__(self, source, jitter: float, base) -> None:
        self.source = source
        self.jitter = jitter
        self.base = base

    def build(self, pa, arrivals, tie, cand, max_vsize, reserved_vsize):
        txs, fee, used = self.base.build(
            pa, arrivals, tie, cand, max_vsize, reserved_vsize
        )
        txs = perturb_template_order(txs, self.source.rng, self.jitter)
        return txs, fee, used


class _CompiledCensor:
    __slots__ = ("banned", "base")

    def __init__(self, banned, base) -> None:
        self.banned = banned
        self.base = base

    def build(self, pa, arrivals, tie, cand, max_vsize, reserved_vsize):
        if cand.size:
            cand = cand[~self.banned.mask(pa, arrivals, cand)]
        return self.base.build(pa, arrivals, tie, cand, max_vsize, reserved_vsize)


class _CompiledPrioritize:
    __slots__ = ("boost", "min_age", "base")

    def __init__(self, boost, min_age: float, base) -> None:
        self.boost = boost
        self.min_age = min_age
        self.base = base

    def build(self, pa, arrivals, tie, cand, max_vsize, reserved_vsize):
        if cand.size:
            bmask = self.boost.mask(pa, arrivals, cand)
            if self.min_age > 0.0:
                now = float(arrivals[cand].max())
                bmask = bmask & ((now - arrivals[cand]) >= self.min_age)
        else:
            bmask = np.zeros(0, dtype=bool)
        boosted = cand[bmask]
        rest = cand[~bmask]
        budget = _check_budget(max_vsize, reserved_vsize)
        chosen, fee, used = _greedy_fill(pa, _exact_order(pa, tie, boosted), budget)
        tail_txs, tail_fee, tail_used = self.base.build(
            pa, arrivals, tie, rest, max_vsize, reserved_vsize + used
        )
        txs = pa.txs
        return [txs[i] for i in chosen] + tail_txs, fee + tail_fee, used + tail_used


def _collect_address_predicates(node, out: list) -> None:
    """Gather every compiled address predicate under ``node``."""
    if node is None:
        return
    if isinstance(node, _CompiledAddress):
        out.append(node)
        return
    if isinstance(node, _CompiledAnyOf):
        for part in node.parts:
            _collect_address_predicates(part, out)
        return
    for attr in ("base", "banned", "boost"):
        child = getattr(node, attr, None)
        if child is not None:
            _collect_address_predicates(child, out)


def compile_policy(policy):
    """Compile a policy stack into an array program, or None.

    Mirrors the policy algebra one node at a time; any node (or
    predicate) without a vector translation makes the whole pool fall
    back to the scalar ``policy.build`` — correctness never depends on
    compilation succeeding.
    """
    if isinstance(policy, FeeRatePolicy):
        return _CompiledFeeRate(policy.package_selection)
    if isinstance(policy, MinFeeRatePolicy):
        base = compile_policy(policy.base)
        if base is not None:
            return _CompiledMinFee(policy.floor, base)
    elif isinstance(policy, NoisyPolicy):
        base = compile_policy(policy.base)
        if base is not None:
            return _CompiledNoisy(policy.base_jitter_source, policy.jitter, base)
    elif isinstance(policy, CensorPolicy):
        base = compile_policy(policy.base)
        banned = compile_predicate(policy.banned)
        if base is not None and banned is not None:
            return _CompiledCensor(banned, base)
    elif isinstance(policy, PrioritizeSetPolicy):
        base = compile_policy(policy.base)
        boost = compile_predicate(policy.boost)
        if base is not None and boost is not None:
            return _CompiledPrioritize(boost, policy.min_age, base)
    return None


# ----------------------------------------------------------------------
# Production loop
# ----------------------------------------------------------------------
def _eligible_candidates(
    pa: PlanArrays,
    pending: np.ndarray,
    arrivals: np.ndarray,
    block_time: float,
    horizon: int,
) -> np.ndarray:
    """Plan indices pending, arrived at this pool, and parent-closed."""
    sel = np.zeros(pa.count, dtype=bool)
    if horizon:
        np.less_equal(arrivals[:horizon], block_time, out=sel[:horizon])
        sel[:horizon] &= pending[:horizon]
    child_idx = pa.child_idx
    if child_idx.size:
        # Only initially-selected children can ever be dropped, so the
        # closure runs over their edge slice, not the whole CSR.
        rows = np.flatnonzero(sel[child_idx])
        if rows.size:
            kids = child_idx[rows]
            starts = pa.parent_offsets[rows]
            lens = pa.parent_offsets[rows + 1] - starts
            cum = np.cumsum(lens)
            pos = np.repeat(starts - cum + lens, lens) + np.arange(int(cum[-1]))
            sub_parents = pa.parent_flat[pos]
            sub_off = cum - lens
            active = np.ones(rows.size, dtype=bool)
            while True:
                blocked = pending[sub_parents] & ~sel[sub_parents]
                drop = np.logical_or.reduceat(blocked, sub_off) & active
                if not drop.any():
                    break
                active &= ~drop
                sel[kids[drop]] = False
    return np.flatnonzero(sel)


def _check_fast_block_state(
    pa: PlanArrays,
    pending: np.ndarray,
    committed_flags: np.ndarray,
    pending_spenders: dict,
    committed: dict,
    block,
) -> None:
    """Array-level mirror of ``check_engine_block_state``."""
    overlap = pending & committed_flags
    if overlap.any():
        txid = pa.txids[int(np.flatnonzero(overlap)[0])]
        raise InvariantViolation(f"tx {txid} is simultaneously pending and committed")
    for prevout, txid in pending_spenders.items():
        index = pa.txid_index.get(txid)
        if index is None or not pending[index]:
            raise InvariantViolation(
                f"spender index entry {prevout} -> {txid} references a "
                "transaction that is not pending"
            )
        if prevout not in pa.contested:
            raise InvariantViolation(
                f"spender index tracks uncontested outpoint {prevout}"
            )
    for tx in block.transactions:
        if tx.txid not in committed:
            raise InvariantViolation(
                f"block {block.height} tx {tx.txid} missing from the committed map"
            )


def produce_fast(
    engine: "SimulationEngine",
    plan: Sequence[PlannedTx],
    broadcast_times: np.ndarray,
    pool_arrivals: np.ndarray,
    schedule: Sequence[tuple[float, int]],
    stale_mask: Optional[np.ndarray],
    mining_rng: np.random.Generator,
    check_invariants: bool = False,
) -> tuple[dict[str, tuple[int, int, float]], Blockchain, int]:
    """Run the block-production loop over packed arrays.

    Returns the ``(committed, chain, orphaned)`` triple the engine's
    curation stage consumes — byte-identical to what the scalar loop
    would have produced for the same inputs.
    """
    config = engine.config
    pa = PlanArrays(plan)
    count = pa.count
    programs = [compile_policy(pool.policy) for pool in engine.pools]
    obs.counter(
        "engine.fast.pools_compiled", sum(1 for p in programs if p is not None)
    )
    obs.counter(
        "engine.fast.pools_fallback", sum(1 for p in programs if p is None)
    )
    # One shared output scan serves every compiled address predicate.
    address_predicates: list = []
    for program in programs:
        _collect_address_predicates(program, address_predicates)
    if address_predicates:
        union: set = set()
        for predicate in address_predicates:
            union |= predicate.addresses
        pa.address_rows(union)
    # Contiguous per-pool arrival rows (column slices of the original
    # layout would stride across the whole matrix every block).
    arrival_rows = np.ascontiguousarray(pool_arrivals.T)
    # Static per-pool tie ranks: arrivals never change mid-run, so the
    # scalar (arrival, txid) tie-break is one precomputed integer per
    # plan index.  Built lazily the first time a pool wins a block.
    tie_by_pool: dict[int, np.ndarray] = {}

    def tie_ranks(pool_index: int) -> np.ndarray:
        tie = tie_by_pool.get(pool_index)
        if tie is None:
            base = pa.txid_sorted
            perm = base[
                np.argsort(arrival_rows[pool_index][base], kind="stable")
            ]
            tie = np.empty(count, dtype=np.int64)
            tie[perm] = np.arange(count, dtype=np.int64)
            tie_by_pool[pool_index] = tie
        return tie

    pending = np.zeros(count, dtype=bool)
    committed_flags = np.zeros(count, dtype=bool)
    committed: dict[str, tuple[int, int, float]] = {}
    chain = Blockchain()
    orphaned = 0
    plan_index = 0
    pending_spenders: dict[object, str] = {}
    committed_outpoints: set = set()
    specials = pa.special_indices
    n_specials = len(specials)
    sp_ptr = 0
    txs = pa.txs
    txid_index = pa.txid_index
    plan_children = pa.plan_children
    contested = pa.contested
    services = engine.services
    empty_probability = config.empty_block_probability

    def evict(txid: str) -> None:
        index = txid_index[txid]
        if not pending[index]:
            return
        pending[index] = False
        for txin in txs[index].inputs:
            if pending_spenders.get(txin.prevout) == txid:
                del pending_spenders[txin.prevout]
        for child in plan_children.get(txid, ()):
            evict(child)

    def admit_special(index: int) -> None:
        # Verbatim port of the scalar engine's `admit`, restricted to
        # the contested-outpoint bookkeeping that can actually fire.
        planned = pa.plan[index]
        tx = planned.tx
        for txin in tx.inputs:
            if txin.prevout in committed_outpoints:
                obs.counter("mempool.pending.chain_conflict")
                return
        displaced = {
            pending_spenders[txin.prevout]
            for txin in tx.inputs
            if txin.prevout in pending_spenders
            and pending_spenders[txin.prevout] != tx.txid
        }
        for loser in displaced:
            if tx.fee <= txs[txid_index[loser]].fee:
                obs.counter("mempool.pending.rbf_rejected")
                return
        if displaced:
            obs.counter("mempool.rbf_replacements", len(displaced))
        for loser in displaced:
            evict(loser)
        obs.counter("mempool.pending.admitted")
        pending[index] = True
        for txin in tx.inputs:
            if txin.prevout in contested:
                pending_spenders[txin.prevout] = tx.txid
        if planned.accelerate_via is not None:
            service = services.get(planned.accelerate_via)
            if service is not None:
                service.accelerate(
                    tx.txid, public_fee=tx.fee, now=planned.broadcast_time
                )

    for index, (block_time, winner_index) in enumerate(schedule):
        # Epoch-batched admission: simple transactions (uncontested
        # inputs, no acceleration) admit unconditionally in bulk; the
        # specials between them replay the scalar walk at their exact
        # plan position so eviction cascades see the same state.
        j = int(np.searchsorted(broadcast_times, block_time, side="right"))
        if j > plan_index:
            pos = plan_index
            while sp_ptr < n_specials and specials[sp_ptr] < j:
                s = specials[sp_ptr]
                if s > pos:
                    pending[pos:s] = True
                    obs.counter("mempool.pending.admitted", s - pos)
                admit_special(s)
                pos = s + 1
                sp_ptr += 1
            if pos < j:
                pending[pos:j] = True
                obs.counter("mempool.pending.admitted", j - pos)
            plan_index = j

        winner = engine.pools[winner_index]
        arrivals = arrival_rows[winner_index]
        with obs.span("engine.mine_block"):
            if mining_rng.random() < empty_probability:
                obs.counter("engine.blocks.empty")
                cand = _EMPTY
            else:
                cand = _eligible_candidates(pa, pending, arrivals, block_time, plan_index)
            program = programs[winner_index]
            if program is not None:
                sel_txs, fee, used = program.build(
                    pa,
                    arrivals,
                    tie_ranks(winner_index),
                    cand,
                    winner.max_block_vsize,
                    winner.coinbase_vsize,
                )
                template = BlockTemplate(
                    tuple(sel_txs), total_fee=fee, total_vsize=used
                )
            else:
                entries = [
                    MempoolEntry(tx=txs[i], arrival_time=float(arrivals[i]))
                    for i in cand.tolist()
                ]
                template = winner.policy.build(
                    entries,
                    max_vsize=winner.max_block_vsize,
                    reserved_vsize=winner.coinbase_vsize,
                )
            block = winner.assemble_from_template(
                len(chain), chain.tip_hash, block_time, template
            )
        if stale_mask is not None and stale_mask[index]:
            orphaned += 1
            obs.counter("engine.blocks.orphaned")
        else:
            chain.append(block)
            for position, tx in enumerate(block.transactions):
                committed[tx.txid] = (block.height, position, block_time)
                ti = txid_index[tx.txid]
                pending[ti] = False
                committed_flags[ti] = True
                for txin in tx.inputs:
                    prevout = txin.prevout
                    if prevout in contested:
                        committed_outpoints.add(prevout)
                        if pending_spenders.get(prevout) == tx.txid:
                            del pending_spenders[prevout]
            obs.counter("engine.blocks.committed")
            obs.counter("engine.txs.committed", len(block.transactions))
            if check_invariants:
                _check_fast_block_state(
                    pa, pending, committed_flags, pending_spenders, committed, block
                )
    return committed, chain, orphaned
