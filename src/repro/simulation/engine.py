"""The simulation engine: from a workload plan to a curated Dataset.

The engine plays out a scenario on a *vectorised fast path*: instead of
flooding every transaction through an evented P2P mesh (see
:mod:`repro.network.p2p`, which remains the reference implementation),
it draws, per transaction, an independent arrival time at every mining
pool and at every observer node from the latency model.  Propagation
skew — the observable that matters to the audit — is preserved, while
the cost drops from O(txs x edges) events to O(txs) work plus one pass
per block.  An integration test cross-checks the two paths on a small
scenario.

Flow per scenario:

1. the workload plan (time-sorted transactions) streams in;
2. a Poisson mining race schedules block discoveries, each won by a
   pool with probability proportional to its hash share;
3. the winning pool assembles a block from the transactions that have
   reached *it* by then, using its (possibly misbehaving) policy;
4. observer mempools are reconstructed analytically afterwards into a
   per-tick size series plus a sample of full snapshots.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .. import obs
from ..chain.attribution import PoolAttributor
from ..chain.blockchain import Blockchain
from ..core.vectorized import scalar_mode
from ..chain.constants import (
    MAX_BLOCK_VSIZE,
    SNAPSHOT_INTERVAL,
    TARGET_BLOCK_INTERVAL,
)
from ..chain.transaction import Transaction
from ..datasets.dataset import Dataset
from ..datasets.records import TxRecord
from ..mempool.mempool import MempoolEntry
from ..mempool.snapshots import (
    MempoolSnapshot,
    SizeSeries,
    SnapshotStore,
    SnapshotTx,
)
from ..mining.acceleration import AccelerationService
from ..mining.pool import MiningPool, make_directory, normalize_hash_shares
from ..obs.invariants import (
    InvariantViolation,
    check_engine_block_state,
    invariants_enabled,
)
from .rng import RngStreams
from .workload import PlannedTx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.checkpoint import CheckpointConfig
    from ..faults.schedule import FaultSchedule
    from ..mining.adversaries import SelfishMiningAttack


@dataclass
class ObserverConfig:
    """A measurement node, as the paper ran two of."""

    name: str
    min_fee_rate: float = 1.0
    #: Latency advantage from peering widely: the observer's arrival
    #: delay is the minimum of ``peer_samples`` draws, so the paper's
    #: 125-peer node (dataset B) sees transactions earlier than the
    #: default 8-peer node (dataset A).
    peer_samples: int = 2
    snapshot_interval: float = SNAPSHOT_INTERVAL


@dataclass
class EngineConfig:
    """Scenario-level simulation parameters."""

    duration: float
    block_interval: float = TARGET_BLOCK_INTERVAL
    max_block_vsize: int = MAX_BLOCK_VSIZE
    #: Probability a discovered block is mined empty (validation race).
    empty_block_probability: float = 0.006
    #: Median one-hop propagation delay to a pool, seconds.
    pool_delay_median: float = 1.2
    pool_delay_sigma: float = 0.9
    #: Probability a pool experiences a pathological (slow) delivery.
    slow_delivery_probability: float = 0.004
    slow_delivery_scale: float = 120.0
    #: How many full mempool snapshots to retain per observer.
    full_snapshot_count: int = 48
    mempool_expiry: float = 14 * 24 * 3600.0


@dataclass
class SimulationResult:
    """Everything a scenario run produces, keyed by observer name."""

    dataset: Dataset
    datasets_by_observer: dict[str, Dataset] = field(default_factory=dict)


def generate_block_schedule(
    duration: float,
    block_interval: float,
    shares: Sequence[float],
    rng: np.random.Generator,
) -> list[tuple[float, int]]:
    """The mining race: (discovery time, winning pool index) pairs.

    Inter-block times are exponential (Poisson mining); each discovery
    is won by pool i with probability ``shares[i]``.  Exposed as a
    function so a scenario can draw the schedule *once* and share it
    between the workload generator (whose fee model reacts to the real
    backlog, mining luck included) and the engine.
    """
    probabilities = np.asarray(shares, dtype=float)
    schedule: list[tuple[float, int]] = []
    time = 0.0
    while True:
        time += float(rng.exponential(block_interval))
        if time > duration:
            break
        winner = int(rng.choice(probabilities.size, p=probabilities))
        schedule.append((time, winner))
    return schedule


class SimulationEngine:
    """Drive one scenario to completion."""

    def __init__(
        self,
        config: EngineConfig,
        pools: Sequence[MiningPool],
        observers: Sequence[ObserverConfig],
        streams: RngStreams,
        services: Sequence[AccelerationService] = (),
        schedule: Optional[Sequence[tuple[float, int]]] = None,
        faults: Optional["FaultSchedule"] = None,
        attacks: Sequence["SelfishMiningAttack"] = (),
    ) -> None:
        if not pools:
            raise ValueError("need at least one mining pool")
        if not observers:
            raise ValueError("need at least one observer")
        self.config = config
        self.pools = list(pools)
        self.observers = list(observers)
        self.streams = streams
        self.services = {service.name: service for service in services}
        self._shares = np.asarray(normalize_hash_shares(self.pools), dtype=float)
        self._schedule = list(schedule) if schedule is not None else None
        # A null schedule is normalised away: "no faults" and "zero-rate
        # faults" must be indistinguishable, byte for byte (asserted in
        # tests/test_seed_robustness.py).  Fault draws come from their
        # own RNG root, never from `streams`.
        self.faults = faults if faults is not None and not faults.is_null else None
        # Pool-level mining-race attacks (selfish mining / withholding).
        # Their race outcomes come from each attack's own seed, so an
        # attack that never engages is byte-identical to no attack.
        self.attacks = list(attacks)

    # ------------------------------------------------------------------
    # Arrival-time machinery
    # ------------------------------------------------------------------
    def _pool_delays(self, count: int) -> np.ndarray:
        """(count, n_pools) matrix of per-pool propagation delays."""
        cfg = self.config
        rng = self.streams.stream("latency/pools")
        delays = rng.lognormal(
            mean=np.log(cfg.pool_delay_median),
            sigma=cfg.pool_delay_sigma,
            size=(count, len(self.pools)),
        )
        slow = rng.random(size=delays.shape) < cfg.slow_delivery_probability
        if slow.any():
            delays = delays + slow * rng.exponential(
                cfg.slow_delivery_scale, size=delays.shape
            )
        return delays

    def _observer_delays(self, count: int) -> dict[str, np.ndarray]:
        """Per-observer arrival delays (min over peer samples)."""
        cfg = self.config
        rng = self.streams.stream("latency/observers")
        delays: dict[str, np.ndarray] = {}
        for observer in self.observers:
            samples = max(observer.peer_samples, 1)
            draws = rng.lognormal(
                mean=np.log(cfg.pool_delay_median),
                sigma=cfg.pool_delay_sigma,
                size=(count, samples),
            )
            base = draws.min(axis=1)
            slow = rng.random(size=count) < cfg.slow_delivery_probability
            if slow.any():
                base = base + slow * rng.exponential(cfg.slow_delivery_scale, size=count)
            delays[observer.name] = base
        return delays

    # ------------------------------------------------------------------
    # Mining race
    # ------------------------------------------------------------------
    def _block_schedule(self) -> list[tuple[float, int]]:
        """(time, winning pool index) for every discovery in the run."""
        if self._schedule is not None:
            return self._schedule
        return generate_block_schedule(
            self.config.duration,
            self.config.block_interval,
            self._shares,
            self.streams.stream("mining"),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        plan: Sequence[PlannedTx],
        checkpoint: Optional["CheckpointConfig"] = None,
    ) -> SimulationResult:
        """Execute the scenario over ``plan`` and curate datasets.

        When ``checkpoint`` is given, loop state (blocks, commitments,
        RNG streams, acceleration order books) is persisted atomically
        every ``checkpoint.every_blocks`` blocks, and an existing
        checkpoint at ``checkpoint.path`` resumes the run mid-schedule,
        reproducing the uninterrupted run exactly.
        """
        with obs.span("engine.run"):
            return self._run(plan, checkpoint)

    def _run(
        self,
        plan: Sequence[PlannedTx],
        checkpoint: Optional["CheckpointConfig"] = None,
    ) -> SimulationResult:
        plan = sorted(plan, key=lambda p: (p.broadcast_time, p.tx.txid))
        count = len(plan)
        pool_delays = self._pool_delays(count)
        observer_delays = self._observer_delays(count)
        broadcast_times = np.asarray([p.broadcast_time for p in plan], dtype=float)
        pool_arrivals = broadcast_times[:, None] + pool_delays

        faults = self.faults
        stale_mask = None
        if faults is not None:
            # Chain-side relay loss: a transaction that never reaches a
            # pool simply never becomes eligible for its blocks.
            if faults.pool_loss_rate > 0.0:
                pairs = [(p.broadcast_time, p.tx.txid) for p in plan]
                for pool_index, pool in enumerate(self.pools):
                    lost = faults.pool_lost_txids(pool.name, pairs)
                    if lost:
                        mask = np.fromiter(
                            (p.tx.txid in lost for p in plan),
                            dtype=bool,
                            count=count,
                        )
                        pool_arrivals[mask, pool_index] = np.inf

        schedule = self._block_schedule()
        if faults is not None:
            stale_candidates = faults.stale_mask(len(schedule))
            stale_mask = stale_candidates if stale_candidates.any() else None
        # Mining-race attacks resolve before substrate dispatch: both
        # the scalar loop and the fast path consume the same merged
        # stale mask, so the byte-identity contract holds under attack.
        if self.attacks:
            pool_names = [pool.name for pool in self.pools]
            for attack in self.attacks:
                overlay = attack.stale_overlay(schedule, pool_names)
                if overlay is None:
                    continue
                obs.counter("engine.attacks.withheld_races", int(overlay.sum()))
                stale_mask = (
                    overlay if stale_mask is None else (stale_mask | overlay)
                )
        mining_rng = self.streams.stream("mining/assembly")

        # Default: the vectorized production loop (repro.simulation.fast),
        # byte-identical to the scalar loop below by contract
        # (tests/test_engine_oracle.py).  The scalar path remains the
        # differential oracle behind REPRO_AUDIT_SCALAR=1, and still
        # carries checkpoint/resume, which keeps per-block dict state.
        if checkpoint is None and not scalar_mode():
            from .fast import produce_fast

            committed, chain, orphaned = produce_fast(
                self,
                plan,
                broadcast_times,
                pool_arrivals,
                schedule,
                stale_mask,
                mining_rng,
                check_invariants=invariants_enabled(),
            )
            return self._curate(
                plan, broadcast_times, observer_delays, committed, chain, orphaned
            )

        # Pending pool: index into `plan` for not-yet-committed txs,
        # plus conflict bookkeeping (outpoint -> pending spender) so
        # replace-by-fee bumps evict what they displace and stale
        # replacements of already-committed transactions are dropped.
        pending: dict[str, int] = {}
        pending_spenders: dict[object, str] = {}
        committed_outpoints: set = set()
        committed: dict[str, tuple[int, int, float]] = {}  # txid -> (height, pos, time)
        chain = Blockchain()
        plan_index = 0
        # In-plan parent -> children, for cascading evictions when a
        # replaced transaction had dependants.
        plan_txids = {p.tx.txid for p in plan}
        plan_children: dict[str, list[str]] = {}
        for planned in plan:
            for parent in planned.tx.parent_txids:
                if parent in plan_txids:
                    plan_children.setdefault(parent, []).append(planned.tx.txid)

        def evict(txid: str) -> None:
            """Drop a pending tx and, recursively, its pending children."""
            index = pending.pop(txid, None)
            if index is None:
                return
            loser_tx = plan[index].tx
            for txin in loser_tx.inputs:
                if pending_spenders.get(txin.prevout) == txid:
                    del pending_spenders[txin.prevout]
            for child in plan_children.get(txid, ()):
                evict(child)

        def admit(planned: PlannedTx, index: int) -> None:
            tx = planned.tx
            if any(txin.prevout in committed_outpoints for txin in tx.inputs):
                obs.counter("mempool.pending.chain_conflict")
                return  # conflicts with the chain: the original won
            displaced = {
                pending_spenders[txin.prevout]
                for txin in tx.inputs
                if txin.prevout in pending_spenders
                and pending_spenders[txin.prevout] != tx.txid
            }
            for loser in displaced:
                loser_tx = plan[pending[loser]].tx
                if tx.fee <= loser_tx.fee:
                    obs.counter("mempool.pending.rbf_rejected")
                    return  # not a valid fee bump: keep the incumbent
            if displaced:
                obs.counter("mempool.rbf_replacements", len(displaced))
            for loser in displaced:
                evict(loser)
            obs.counter("mempool.pending.admitted")
            pending[tx.txid] = index
            for txin in tx.inputs:
                pending_spenders[txin.prevout] = tx.txid
            if planned.accelerate_via is not None:
                service = self.services.get(planned.accelerate_via)
                if service is not None:
                    service.accelerate(
                        tx.txid,
                        public_fee=tx.fee,
                        now=planned.broadcast_time,
                    )

        orphaned = 0
        start_index = 0
        fingerprint = None
        if checkpoint is not None:
            from ..faults.checkpoint import load_checkpoint

            fingerprint = self._plan_fingerprint(plan, schedule)
            state = load_checkpoint(checkpoint.path)
            if state is not None:
                start_index, plan_index, orphaned = self._restore_checkpoint(
                    state,
                    checkpoint,
                    fingerprint,
                    plan,
                    pending,
                    pending_spenders,
                    committed_outpoints,
                    committed,
                    chain,
                )

        processed = 0
        for index, (block_time, winner_index) in enumerate(schedule):
            if index < start_index:
                continue
            # Admit all broadcasts up to this discovery.
            while plan_index < count and plan[plan_index].broadcast_time <= block_time:
                admit(plan[plan_index], plan_index)
                plan_index += 1

            winner = self.pools[winner_index]
            with obs.span("engine.mine_block"):
                if mining_rng.random() < self.config.empty_block_probability:
                    entries: list[MempoolEntry] = []
                    obs.counter("engine.blocks.empty")
                else:
                    entries = self._eligible_entries(
                        pending, plan, pool_arrivals, winner_index, block_time
                    )
                block = winner.assemble_block(
                    height=len(chain),
                    prev_hash=chain.tip_hash,
                    timestamp=block_time,
                    entries=entries,
                )
            if stale_mask is not None and stale_mask[index]:
                # Stale/reorged: the block lost the propagation race and
                # is never committed; its transactions stay pending and
                # re-enter the next winner's candidate set.
                orphaned += 1
                obs.counter("engine.blocks.orphaned")
            else:
                chain.append(block)
                for position, tx in enumerate(block.transactions):
                    committed[tx.txid] = (block.height, position, block_time)
                    pending.pop(tx.txid, None)
                    for txin in tx.inputs:
                        committed_outpoints.add(txin.prevout)
                        if pending_spenders.get(txin.prevout) == tx.txid:
                            del pending_spenders[txin.prevout]
                obs.counter("engine.blocks.committed")
                obs.counter("engine.txs.committed", len(block.transactions))
                if invariants_enabled():
                    check_engine_block_state(
                        pending, pending_spenders, committed, block
                    )

            processed += 1
            if checkpoint is not None:
                abort = (
                    checkpoint.abort_after_blocks is not None
                    and processed >= checkpoint.abort_after_blocks
                )
                if abort or processed % checkpoint.every_blocks == 0:
                    self._write_checkpoint(
                        checkpoint,
                        fingerprint,
                        index + 1,
                        plan_index,
                        orphaned,
                        pending,
                        committed,
                        chain,
                    )
                if abort:
                    from ..faults.checkpoint import SimulationInterrupted

                    raise SimulationInterrupted(
                        f"aborted after {processed} blocks "
                        f"(checkpoint at {checkpoint.path})"
                    )

        return self._curate(
            plan, broadcast_times, observer_delays, committed, chain, orphaned
        )

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    def _plan_fingerprint(
        self, plan: Sequence[PlannedTx], schedule: Sequence[tuple[float, int]]
    ) -> str:
        """Digest binding a checkpoint to one (seed, plan, schedule, faults)."""
        digest = hashlib.sha256()
        digest.update(str(self.streams.root_seed).encode("utf-8"))
        digest.update(str(len(schedule)).encode("utf-8"))
        if schedule:
            digest.update(repr(schedule[0]).encode("utf-8"))
            digest.update(repr(schedule[-1]).encode("utf-8"))
        if self.faults is not None:
            digest.update(
                repr(sorted(self.faults.describe().items())).encode("utf-8")
            )
        for attack in self.attacks:
            digest.update(repr(sorted(attack.describe().items())).encode("utf-8"))
        for planned in plan:
            digest.update(planned.tx.txid.encode("utf-8"))
        return digest.hexdigest()[:32]

    def _write_checkpoint(
        self,
        checkpoint: "CheckpointConfig",
        fingerprint: str,
        next_index: int,
        plan_index: int,
        orphaned: int,
        pending: dict[str, int],
        committed: dict[str, tuple[int, int, float]],
        chain: Blockchain,
    ) -> None:
        from ..datasets.io import _encode_block
        from ..faults.checkpoint import write_checkpoint

        payload = {
            "version": 1,
            "fingerprint": fingerprint,
            "next_index": next_index,
            "plan_index": plan_index,
            "orphaned": orphaned,
            "blocks": [_encode_block(block) for block in chain],
            "committed": {
                txid: list(value) for txid, value in committed.items()
            },
            "pending": sorted(pending),
            "streams": self.streams.state_dict(),
            "extra_streams": [
                registry.state_dict() for registry in checkpoint.extra_streams
            ],
            "services": {
                name: service.export_orders()
                for name, service in sorted(self.services.items())
            },
            "pool_address_cursors": {
                pool.name: pool._next_address for pool in self.pools
            },
        }
        write_checkpoint(checkpoint.path, payload)

    def _restore_checkpoint(
        self,
        state: dict,
        checkpoint: "CheckpointConfig",
        fingerprint: str,
        plan: Sequence[PlannedTx],
        pending: dict[str, int],
        pending_spenders: dict[object, str],
        committed_outpoints: set,
        committed: dict[str, tuple[int, int, float]],
        chain: Blockchain,
    ) -> tuple[int, int, int]:
        from ..datasets.io import _decode_block
        from ..faults.checkpoint import CheckpointError

        if state.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint.path} belongs to a different run "
                "(seed, plan, schedule or fault configuration differ)"
            )
        txid_to_index = {p.tx.txid: i for i, p in enumerate(plan)}
        try:
            for payload in state["blocks"]:
                chain.append(_decode_block(payload, chain.tip_hash))
            for txid, value in state["committed"].items():
                height, position, block_time = value
                committed[txid] = (int(height), int(position), float(block_time))
                for txin in plan[txid_to_index[txid]].tx.inputs:
                    committed_outpoints.add(txin.prevout)
            for txid in state["pending"]:
                index = txid_to_index[txid]
                pending[txid] = index
                for txin in plan[index].tx.inputs:
                    pending_spenders[txin.prevout] = txid
            self.streams.load_state_dict(state["streams"])
            for registry, payload in zip(
                checkpoint.extra_streams, state["extra_streams"]
            ):
                registry.load_state_dict(payload)
            for name, orders in state["services"].items():
                service = self.services.get(name)
                if service is not None:
                    service.restore_orders(orders)
            cursors = state["pool_address_cursors"]
            for pool in self.pools:
                pool._next_address = int(cursors[pool.name])
            return (
                int(state["next_index"]),
                int(state["plan_index"]),
                int(state["orphaned"]),
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint {checkpoint.path}: {exc!r}"
            ) from exc

    def _eligible_entries(
        self,
        pending: dict[str, int],
        plan: Sequence[PlannedTx],
        pool_arrivals: np.ndarray,
        pool_index: int,
        block_time: float,
    ) -> list[MempoolEntry]:
        """Pending transactions that reached this pool, parent-closed.

        A transaction is withheld if any parent is still pending but has
        not reached the pool (or was itself withheld) — including it
        would commit a child before its parent exists on-chain.
        """
        candidates: dict[str, tuple[Transaction, float]] = {}
        for txid, index in pending.items():
            arrival = float(pool_arrivals[index, pool_index])
            if arrival <= block_time:
                candidates[txid] = (plan[index].tx, arrival)

        pending_set = set(pending)
        eligible: dict[str, MempoolEntry] = {}
        # Iterate to a fixpoint: removing a parent can orphan its child.
        changed = True
        selected = dict(candidates)
        while changed:
            changed = False
            for txid in list(selected):
                tx, _ = selected[txid]
                for parent in tx.parent_txids:
                    if parent in pending_set and parent not in selected:
                        del selected[txid]
                        changed = True
                        break
        for txid, (tx, arrival) in selected.items():
            eligible[txid] = MempoolEntry(tx=tx, arrival_time=arrival)
        return list(eligible.values())

    # ------------------------------------------------------------------
    # Dataset curation
    # ------------------------------------------------------------------
    def _curate(
        self,
        plan: Sequence[PlannedTx],
        broadcast_times: np.ndarray,
        observer_delays: dict[str, np.ndarray],
        committed: dict[str, tuple[int, int, float]],
        chain: Blockchain,
        orphaned: int = 0,
    ) -> SimulationResult:
        with obs.span("engine.curate"):
            return self._curate_all(
                plan, broadcast_times, observer_delays, committed, chain, orphaned
            )

    def _curate_all(
        self,
        plan: Sequence[PlannedTx],
        broadcast_times: np.ndarray,
        observer_delays: dict[str, np.ndarray],
        committed: dict[str, tuple[int, int, float]],
        chain: Blockchain,
        orphaned: int = 0,
    ) -> SimulationResult:
        directory = make_directory(self.pools)
        attributor = PoolAttributor(directory)
        block_pools = {
            block.height: attributor.attribute(block) for block in chain
        }
        pool_wallets = {
            pool.name: pool.wallet_addresses for pool in self.pools
        }

        datasets: dict[str, Dataset] = {}
        for observer in self.observers:
            dataset = self._curate_observer(
                observer,
                plan,
                broadcast_times,
                observer_delays[observer.name],
                committed,
                chain,
                block_pools,
                pool_wallets,
                orphaned,
            )
            datasets[observer.name] = dataset
        primary = datasets[self.observers[0].name]
        return SimulationResult(dataset=primary, datasets_by_observer=datasets)

    def _curate_observer(
        self,
        observer: ObserverConfig,
        plan: Sequence[PlannedTx],
        broadcast_times: np.ndarray,
        delays: np.ndarray,
        committed: dict[str, tuple[int, int, float]],
        chain: Blockchain,
        block_pools: dict[int, str],
        pool_wallets: dict[str, frozenset[str]],
        orphaned: int = 0,
    ) -> Dataset:
        cfg = self.config
        arrival_times = broadcast_times + delays
        block_delay_rng = self.streams.fresh(f"latency/blocks/{observer.name}")

        # Observer-side faults.  The removal-delay draw below is keyed
        # on the *fault-free* arrival so the no-fault draw sequence is
        # replayed exactly: engine-injected faults and post-hoc
        # degradation (repro.faults.degrade) then agree tx for tx.
        faults = self.faults
        lost: frozenset = frozenset()
        down: tuple = ()
        partitions: tuple = ()
        effective_arrivals = arrival_times
        if faults is not None:
            pairs = [(p.broadcast_time, p.tx.txid) for p in plan]
            lost = faults.observer_lost_txids(observer.name, pairs)
            down = faults.downtime_for(observer.name)
            partitions = faults.partitions_for(observer.name)
            if lost or down or partitions:
                effective_arrivals = arrival_times.copy()

        tx_records: dict[str, TxRecord] = {}
        add_events: list[tuple[float, int]] = []  # (time, plan index)
        remove_events: list[tuple[float, int]] = []
        for index, planned in enumerate(plan):
            tx = planned.tx
            commit = committed.get(tx.txid)
            accepted = tx.fee_rate >= observer.min_fee_rate
            base_arrival = float(arrival_times[index]) if accepted else None
            observer_arrival = base_arrival
            if observer_arrival is not None and faults is not None:
                if tx.txid in lost:
                    observer_arrival = None
                elif any(w.contains(observer_arrival) for w in down):
                    observer_arrival = None
                else:
                    for window in partitions:
                        if window.contains(observer_arrival):
                            if commit is not None and commit[2] <= window.end:
                                observer_arrival = None
                            else:
                                observer_arrival = window.end
                                effective_arrivals[index] = window.end
                            break
            commit_height = commit[0] if commit else None
            commit_position = commit[1] if commit else None
            tx_records[tx.txid] = TxRecord(
                txid=tx.txid,
                broadcast_time=float(broadcast_times[index]),
                observer_arrival=observer_arrival,
                fee=tx.fee,
                vsize=tx.vsize,
                commit_height=commit_height,
                commit_position=commit_position,
                labels=planned.labels,
            )
            if base_arrival is not None and base_arrival <= cfg.duration:
                if commit is not None:
                    delay = float(block_delay_rng.lognormal(np.log(0.4), 0.5))
            if observer_arrival is None or observer_arrival > cfg.duration:
                continue
            add_events.append((observer_arrival, index))
            if commit is not None:
                removal = max(commit[2] + delay, observer_arrival)
            else:
                removal = observer_arrival + cfg.mempool_expiry
            remove_events.append((removal, index))

        size_series, snapshots = self._reconstruct_mempool(
            observer, plan, add_events, remove_events, effective_arrivals, down
        )
        metadata = {
            "observer": observer.name,
            "min_fee_rate": observer.min_fee_rate,
            "duration": cfg.duration,
        }
        if faults is not None:
            metadata["faults"] = faults.describe()
            metadata["orphaned_blocks"] = orphaned
        if self.attacks:
            metadata["attacks"] = [attack.describe() for attack in self.attacks]
            metadata["orphaned_blocks"] = orphaned
        return Dataset(
            name=observer.name,
            chain=chain,
            snapshots=snapshots,
            tx_records=tx_records,
            block_pools=block_pools,
            pool_wallets=pool_wallets,
            size_series=size_series,
            metadata=metadata,
        )

    def _reconstruct_mempool(
        self,
        observer: ObserverConfig,
        plan: Sequence[PlannedTx],
        add_events: list[tuple[float, int]],
        remove_events: list[tuple[float, int]],
        arrival_times: np.ndarray,
        down: tuple = (),
    ) -> tuple[SizeSeries, SnapshotStore]:
        """Sweep add/remove events into per-tick sizes + sampled snapshots.

        ``down`` windows (observer offline) suppress *recording* at the
        affected ticks — the size series gets a gap and sampled
        snapshots are dropped — while the event sweep keeps running, so
        the state at the first tick after an outage is exact.
        """
        cfg = self.config
        add_events.sort()
        remove_events.sort()
        tick_times = np.arange(0.0, cfg.duration, observer.snapshot_interval)
        sample_rng = self.streams.fresh(f"snapshots/{observer.name}")
        sample_count = min(cfg.full_snapshot_count, tick_times.size)
        sampled_ticks = set(
            int(i)
            for i in sample_rng.choice(
                tick_times.size, size=sample_count, replace=False
            )
        ) if sample_count else set()

        live: set[int] = set()
        times: list[float] = []
        sizes: list[int] = []
        counts: list[int] = []
        total_vsize = 0
        snapshots: list[MempoolSnapshot] = []
        add_ptr = 0
        remove_ptr = 0
        for tick_index, tick in enumerate(tick_times):
            while add_ptr < len(add_events) and add_events[add_ptr][0] <= tick:
                index = add_events[add_ptr][1]
                live.add(index)
                total_vsize += plan[index].tx.vsize
                add_ptr += 1
            while remove_ptr < len(remove_events) and remove_events[remove_ptr][0] <= tick:
                index = remove_events[remove_ptr][1]
                if index in live:
                    live.remove(index)
                    total_vsize -= plan[index].tx.vsize
                remove_ptr += 1
            if down and any(w.contains(float(tick)) for w in down):
                continue
            times.append(float(tick))
            sizes.append(total_vsize)
            counts.append(len(live))
            if tick_index in sampled_ticks:
                txs = tuple(
                    SnapshotTx(
                        txid=plan[index].tx.txid,
                        arrival_time=float(arrival_times[index]),
                        fee=plan[index].tx.fee,
                        vsize=plan[index].tx.vsize,
                    )
                    for index in sorted(live)
                )
                if invariants_enabled():
                    # The incremental sweep totals must match the
                    # materialised snapshot — drift here skews every
                    # congestion bin downstream.
                    recomputed = sum(t.vsize for t in txs)
                    if recomputed != total_vsize or len(txs) != len(live):
                        raise InvariantViolation(
                            f"snapshot at t={float(tick):g} diverges from "
                            f"sweep totals: vsize {recomputed} vs "
                            f"{total_vsize}, count {len(txs)} vs {len(live)}"
                        )
                snapshots.append(MempoolSnapshot(time=float(tick), txs=txs))
        if snapshots:
            obs.counter("engine.snapshots.recorded", len(snapshots))
        obs.gauge_max("engine.peak_pending_vsize", max(sizes, default=0))
        series = SizeSeries(times=times, vsizes=sizes, tx_counts=counts)
        return series, SnapshotStore(snapshots)


def run_scenario(
    config: EngineConfig,
    pools: Sequence[MiningPool],
    observers: Sequence[ObserverConfig],
    plan: Sequence[PlannedTx],
    streams: RngStreams,
    services: Sequence[AccelerationService] = (),
    faults: Optional["FaultSchedule"] = None,
    attacks: Sequence["SelfishMiningAttack"] = (),
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`."""
    engine = SimulationEngine(
        config=config,
        pools=pools,
        observers=observers,
        streams=streams,
        services=services,
        faults=faults,
        attacks=attacks,
    )
    return engine.run(plan)
