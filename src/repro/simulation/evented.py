"""The evented simulation path: scenarios over the real P2P substrate.

:class:`~repro.simulation.engine.SimulationEngine` is a vectorised fast
path; this module is the *reference* path.  Every transaction floods an
actual peer graph hop by hop; every pool mines from the mempool of its
own :class:`~repro.network.node.FullNode`; observers record genuine
15-second snapshots.  It is O(transactions x edges) and therefore only
suitable for modest scenarios — which is exactly its job: the
integration suite runs both paths over comparable workloads and checks
that the audit-relevant observables (delays, violations, ordering
conformance) agree, validating the fast path's shortcuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..chain.attribution import PoolAttributor
from ..chain.blockchain import Blockchain
from ..chain.constants import TARGET_BLOCK_INTERVAL
from ..datasets.dataset import Dataset
from ..datasets.records import TxRecord
from ..mempool.snapshots import SizeSeries
from ..mining.pool import MiningPool, make_directory, normalize_hash_shares
from ..network.events import EventScheduler
from ..network.latency import LatencyModel
from ..network.node import FullNode, NodeConfig, make_observer
from ..network.p2p import P2PNetwork, build_network
from .engine import generate_block_schedule
from .rng import RngStreams
from .workload import PlannedTx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..mempool.mempool import MempoolEntry


@dataclass
class EventedConfig:
    """Parameters of an evented run."""

    duration: float
    block_interval: float = TARGET_BLOCK_INTERVAL
    relay_count: int = 8
    target_degree: int = 6
    observer_min_fee_rate: float = 0.0
    snapshot_interval: float = 15.0


def minable_entries(
    entries: Sequence["MempoolEntry"],
    plan_txids: frozenset[str],
    chain: Blockchain,
) -> list["MempoolEntry"]:
    """Restrict a mempool view to what the winner may legally commit.

    Block gossip has latency, so the winner's mempool can lag the
    (globally authoritative) ``chain``: it may still hold transactions
    another pool just committed, or replacements that conflict with a
    committed original.  The engine path structurally cannot re-commit
    either (committed transactions leave its pending pool), so they are
    dropped here too.

    It can also hold a child whose parent has not reached this node
    (gossip still in flight, or lost to a fault).  Mining the child
    would commit it before its parent exists on-chain — something the
    engine's ``_eligible_entries`` never does.  Mirroring its
    semantics: only *in-plan* parents constrain (synthetic workload
    UTXOs impose nothing), and a parent already committed to ``chain``
    frees its children.  Entry order is preserved.
    """
    selected = {
        entry.txid: entry
        for entry in entries
        if not chain.contains(entry.txid)
        and not any(chain.is_spent(txin.prevout) for txin in entry.tx.inputs)
    }
    changed = True
    while changed:
        changed = False
        for txid in list(selected):
            entry = selected.get(txid)
            if entry is None:
                continue
            for parent in entry.tx.parent_txids:
                if (
                    parent in plan_txids
                    and parent not in selected
                    and not chain.contains(parent)
                ):
                    del selected[txid]
                    changed = True
                    break
    return list(selected.values())


class EventedSimulation:
    """Run a (small) transaction plan over the evented P2P network."""

    def __init__(
        self,
        config: EventedConfig,
        pools: Sequence[MiningPool],
        streams: RngStreams,
        tx_latency: Optional[LatencyModel] = None,
        faults: Optional["FaultSchedule"] = None,
    ) -> None:
        if not pools:
            raise ValueError("need at least one mining pool")
        self.config = config
        self.pools = list(pools)
        self.streams = streams
        self.faults = faults if faults is not None and not faults.is_null else None
        rng = streams.stream("evented/topology")
        self.observer = make_observer(
            "observer",
            min_fee_rate=config.observer_min_fee_rate,
            snapshot_interval=config.snapshot_interval,
        )
        self.pool_nodes: dict[str, FullNode] = {
            pool.name: FullNode(
                NodeConfig(name=f"pool/{pool.name}", min_fee_rate=0.0)
            )
            for pool in self.pools
        }
        self.relays = [
            FullNode(NodeConfig(name=f"relay-{i}"))
            for i in range(config.relay_count)
        ]
        self.network: P2PNetwork = build_network(
            [self.observer, *self.pool_nodes.values(), *self.relays],
            rng,
            target_degree=config.target_degree,
            tx_latency=tx_latency,
        )
        if self.faults is not None:
            for node in self.network.nodes:
                windows = [
                    (w.start, w.end)
                    for w in self.faults.downtime_for(node.name)
                ]
                crashes = self.faults.crash_times_for(node.name)
                if windows or crashes:
                    node.set_fault_profile(windows, crashes)

    # ------------------------------------------------------------------
    def run(
        self,
        plan: Sequence[PlannedTx],
        schedule: Optional[Sequence[tuple[float, int]]] = None,
    ) -> Dataset:
        """Play the plan out over the network; curate a Dataset.

        Pass ``schedule`` to pin the mining race (times and winners) —
        the cross-validation suite runs both simulation paths over one
        schedule so differences reflect propagation modelling only.
        """
        scheduler = EventScheduler()
        inject_rng = self.streams.stream("evented/injection")
        self.network.schedule_snapshots(scheduler, end_time=self.config.duration)

        faults = self.faults
        if faults is not None:
            # Observer relay loss uses the same canonical channel the
            # fast path consults, so both substrates censor the exact
            # same txid set (asserted in tests/test_faults_pipeline.py).
            pairs = [(p.broadcast_time, p.tx.txid) for p in plan]
            lost = faults.observer_lost_txids(self.observer.name, pairs)
            hop_rng = faults.channel_rng("per-hop") if faults.per_hop_loss_rate else None

            def drop(kind: str, sender: str, receiver: str, ident: str, now: float) -> bool:
                if kind == "tx" and receiver == self.observer.name and ident in lost:
                    return True
                if faults.in_partition(sender, now) or faults.in_partition(receiver, now):
                    return True
                if hop_rng is not None and hop_rng.random() < faults.per_hop_loss_rate:
                    return True
                return False

            self.network.set_drop_filter(drop)

        for planned in sorted(plan, key=lambda p: p.broadcast_time):
            origin = self.relays[
                int(inject_rng.integers(len(self.relays)))
            ]

            def inject(s: EventScheduler, tx=planned.tx, origin=origin) -> None:
                self.network.broadcast_transaction(tx, origin, s)

            scheduler.schedule(planned.broadcast_time, inject)

        chain = Blockchain()
        plan_txids = frozenset(planned.tx.txid for planned in plan)
        if schedule is None:
            schedule = generate_block_schedule(
                self.config.duration,
                self.config.block_interval,
                normalize_hash_shares(self.pools),
                self.streams.stream("evented/mining"),
            )
        stale_mask = faults.stale_mask(len(schedule)) if faults is not None else None
        orphaned = [0]
        for index, (block_time, winner_index) in enumerate(schedule):
            winner = self.pools[winner_index]
            node = self.pool_nodes[winner.name]
            stale = bool(stale_mask[index]) if stale_mask is not None else False

            def mine(
                s: EventScheduler,
                winner=winner,
                node=node,
                stale=stale,
            ) -> None:
                block = winner.assemble_block(
                    height=len(chain),
                    prev_hash=chain.tip_hash,
                    timestamp=s.now,
                    entries=minable_entries(
                        node.mempool.entries(), plan_txids, chain
                    ),
                )
                if stale:
                    # Lost the propagation race: never announced, its
                    # transactions stay in every mempool.
                    orphaned[0] += 1
                    return
                chain.append(block)
                self.network.broadcast_block(block, node, s)

            scheduler.schedule(block_time, mine)

        scheduler.run_until(self.config.duration)
        return self._curate(plan, chain, orphaned[0])

    # ------------------------------------------------------------------
    def _curate(
        self, plan: Sequence[PlannedTx], chain: Blockchain, orphaned: int = 0
    ) -> Dataset:
        directory = make_directory(self.pools)
        attributor = PoolAttributor(directory)
        block_pools = {
            block.height: attributor.attribute(block) for block in chain
        }
        records: dict[str, TxRecord] = {}
        for planned in plan:
            tx = planned.tx
            location = chain.location_of(tx.txid)
            records[tx.txid] = TxRecord(
                txid=tx.txid,
                broadcast_time=planned.broadcast_time,
                observer_arrival=self.observer.arrival_log.get(tx.txid),
                fee=tx.fee,
                vsize=tx.vsize,
                commit_height=location.height if location else None,
                commit_position=location.position if location else None,
                labels=planned.labels,
            )
        store = self.observer.snapshot_store()
        size_series = SizeSeries(
            times=store.times,
            vsizes=store.sizes(),
            tx_counts=[snapshot.tx_count for snapshot in store],
        )
        return Dataset(
            name="evented",
            chain=chain,
            snapshots=store,
            tx_records=records,
            block_pools=block_pools,
            pool_wallets={pool.name: pool.wallet_addresses for pool in self.pools},
            size_series=size_series,
            metadata=(
                {"path": "evented", "duration": self.config.duration}
                if self.faults is None
                else {
                    "path": "evented",
                    "duration": self.config.duration,
                    "observer": self.observer.name,
                    "faults": self.faults.describe(),
                    "orphaned_blocks": orphaned,
                }
            ),
        )


def run_evented_scenario(
    plan: Sequence[PlannedTx],
    pools: Sequence[MiningPool],
    duration: float,
    seed: int = 31,
    block_interval: float = TARGET_BLOCK_INTERVAL,
    faults: Optional["FaultSchedule"] = None,
) -> Dataset:
    """One-call evented run over a prepared plan."""
    simulation = EventedSimulation(
        EventedConfig(duration=duration, block_interval=block_interval),
        pools,
        RngStreams(seed),
        faults=faults,
    )
    return simulation.run(plan)
