"""Scenario definitions: synthetic analogues of the paper's datasets.

Each builder wires pools (with the paper's measured hash-rate profile),
observers (mirroring the paper's two instrumented nodes), misbehaviour
policies, and a workload into one reproducible package.  The ``scale``
parameter shrinks block counts and injection volumes proportionally so
tests can run the same scenarios in seconds.

Misbehaviour wiring for the dataset-C analogue follows Table 2's
findings as ground truth:

* F2Pool, ViaBTC, 1THash & 58Coin and SlushPool accelerate their own
  (self-interest) transactions;
* ViaBTC additionally *colludes*, accelerating transactions of
  1THash & 58Coin and SlushPool;
* BTC.com operates a dark-fee acceleration service and boosts its order
  book (Table 4);
* nobody treats scam payments specially (Table 3);
* F2Pool, ViaBTC and BTC.com run a zero fee-rate floor, so they
  occasionally commit sub-threshold transactions (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

from ..chain.constants import TARGET_BLOCK_INTERVAL
from ..mining.acceleration import AccelerationService
from ..mining.adversaries import (
    BucketedPriorityPolicy,
    CallAuctionPolicy,
    CensorForRentPolicy,
    FifoPolicy,
    MevCampaign,
    SandwichPolicy,
    SelfishMiningAttack,
)
from ..mining.policies import (
    AnyOfPredicate,
    FeeRatePolicy,
    JitterSource,
    MinFeeRatePolicy,
    NoisyPolicy,
    OrderingPolicy,
    PrioritizeSetPolicy,
    address_predicate,
    txid_set_predicate,
)
from ..mining.pool import (
    DATASET_A_POOLS,
    DATASET_B_POOLS,
    DATASET_C_POOLS,
    MiningPool,
    make_pools,
)
from ..mining.pool import normalize_hash_shares
from .engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
    SimulationResult,
    generate_block_schedule,
)
from .rng import RngStreams
from .workload import (
    DemandModel,
    FeeModel,
    InjectionConfig,
    SizeModel,
    WorkloadConfig,
    WorkloadGenerator,
    scam_wallet_address,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.checkpoint import CheckpointConfig
    from ..faults.schedule import FaultSchedule

#: Pools whose nodes accept sub-threshold transactions (§4.2.3 found
#: F2Pool, ViaBTC and BTC.com committing low/zero-fee transactions).
ZERO_FLOOR_POOLS = frozenset({"F2Pool", "ViaBTC", "BTC.com"})

#: Pools that accelerate their own transactions (Table 2).
SELF_ACCELERATING_POOLS = frozenset(
    {"F2Pool", "ViaBTC", "1THash & 58Coin", "SlushPool"}
)

#: Collusion edges: accelerator -> pools whose transactions it boosts.
COLLUSION: dict[str, tuple[str, ...]] = {
    "ViaBTC": ("1THash & 58Coin", "SlushPool"),
}

#: Name of the dark-fee service in the dataset-C analogue.
BTC_COM_SERVICE = "BTC.com-accelerator"


@dataclass
class Scenario:
    """A fully wired scenario, ready to run."""

    name: str
    seed: int
    engine_config: EngineConfig
    pools: list[MiningPool]
    observers: list[ObserverConfig]
    workload_config: WorkloadConfig
    #: The size knob this scenario was built at.  Together with ``name``
    #: and ``seed`` it uniquely parameterises the build, so the dataset
    #: cache uses it as a key component.
    scale: float = 1.0
    services: list[AccelerationService] = field(default_factory=list)
    #: Optional fault schedule injected into the engine run.  Fault
    #: draws use the schedule's own RNG root, so a zero-rate schedule
    #: yields byte-identical artifacts to no schedule at all.
    faults: Optional["FaultSchedule"] = None
    #: Pool-level consensus attacks (selfish mining / block withholding)
    #: applied as a stale-race overlay before substrate dispatch, so
    #: both substrates consume the identical merged mask.
    attacks: list[SelfishMiningAttack] = field(default_factory=list)
    #: The RNG registry the builder wired policy jitter from, captured
    #: so checkpoint/resume can persist those streams too.
    policy_streams: Optional[RngStreams] = None

    def with_faults(self, faults: Optional["FaultSchedule"]) -> "Scenario":
        """A copy of this scenario with ``faults`` installed."""
        return replace(self, faults=faults)

    def run(
        self, checkpoint: Optional["CheckpointConfig"] = None
    ) -> SimulationResult:
        """Generate the workload and simulate to a curated dataset.

        ``checkpoint`` enables periodic crash-tolerant checkpoints (and
        resume from an existing one); the builder's policy-jitter
        streams are persisted alongside the engine's own.
        """
        import numpy as np

        streams = RngStreams(self.seed)
        # Draw the mining race up front so the workload's fee model can
        # react to the real backlog (demand waves AND mining luck).
        schedule = generate_block_schedule(
            self.engine_config.duration,
            self.engine_config.block_interval,
            normalize_hash_shares(self.pools),
            streams.stream("mining"),
        )
        self.workload_config.block_times = np.asarray(
            [time for time, _ in schedule], dtype=float
        )
        self.workload_config.block_interval = self.engine_config.block_interval
        generator = WorkloadGenerator(self.workload_config, streams)
        plan = generator.generate()
        engine = SimulationEngine(
            config=self.engine_config,
            pools=self.pools,
            observers=self.observers,
            streams=streams,
            services=self.services,
            schedule=schedule,
            faults=self.faults,
            attacks=self.attacks,
        )
        if checkpoint is not None and self.policy_streams is not None:
            if self.policy_streams not in checkpoint.extra_streams:
                checkpoint.extra_streams = tuple(checkpoint.extra_streams) + (
                    self.policy_streams,
                )
        result = engine.run(plan, checkpoint=checkpoint)
        injections = self.workload_config.injections
        for dataset in result.datasets_by_observer.values():
            dataset.metadata["scenario"] = self.name
            dataset.metadata["seed"] = self.seed
            if injections.scam_count > 0:
                dataset.metadata["scam_window"] = injections.scam_window
        return result


def _jittered(
    base_jitter: JitterSource,
    jitter: float,
    floor: float,
) -> OrderingPolicy:
    """Honest pool policy: package GBT + rank jitter + fee floor."""
    return MinFeeRatePolicy(
        base=NoisyPolicy(
            base_jitter_source=base_jitter,
            base=FeeRatePolicy(package_selection=True),
            jitter=jitter,
        ),
        floor=floor,
    )


def _wire_policies(
    pools: Sequence[MiningPool],
    streams: RngStreams,
    services: Sequence[AccelerationService] = (),
    misbehave: bool = False,
    jitter: float = 1.5,
    viabtc_extra_jitter: float = 2.5,
) -> None:
    """Install per-pool ordering policies in place."""
    by_name = {pool.name: pool for pool in pools}
    service_by_operator: dict[str, AccelerationService] = {}
    for service in services:
        for operator in service.operators:
            service_by_operator[operator] = service

    for pool in pools:
        source = JitterSource(rng=streams.stream(f"jitter/{pool.name}"))
        pool_jitter = jitter + (
            viabtc_extra_jitter if pool.name == "ViaBTC" else 0.0
        )
        floor = 0.0 if pool.name in ZERO_FLOOR_POOLS else 1.0
        policy: OrderingPolicy = _jittered(source, pool_jitter, floor)
        if misbehave:
            # Collusive rescue layer: partner transactions stuck for at
            # least half an hour get lifted (inner layer, below the
            # pool's own instant boosts).  Rescue-only collusion keeps
            # the owner pool first in line for its fresh transactions,
            # as observed in the wild.
            partner_predicates = []
            for partner in COLLUSION.get(pool.name, ()):
                partner_pool = by_name.get(partner)
                if partner_pool is not None:
                    partner_predicates.append(
                        address_predicate(partner_pool.wallet_addresses)
                    )
            if partner_predicates:
                policy = PrioritizeSetPolicy(
                    base=policy,
                    boost=AnyOfPredicate(tuple(partner_predicates)),
                    label=f"collude/{pool.name}",
                    min_age=1800.0,
                )
            # Instant boosts: the pool's own transactions and its
            # acceleration-service order book.
            own_predicates = []
            if pool.name in SELF_ACCELERATING_POOLS:
                own_predicates.append(address_predicate(pool.wallet_addresses))
            service = service_by_operator.get(pool.name)
            if service is not None:
                pool.acceleration_service = service
                own_predicates.append(
                    txid_set_predicate(service.accelerated_txids)
                )
            if own_predicates:
                policy = PrioritizeSetPolicy(
                    base=policy,
                    boost=AnyOfPredicate(tuple(own_predicates)),
                    label=f"boost/{pool.name}",
                )
        pool.policy = policy


def _capacity_per_second(engine_config: EngineConfig) -> float:
    return engine_config.max_block_vsize / engine_config.block_interval


def dataset_a_scenario(
    seed: int = 2019_02_20,
    scale: float = 1.0,
    faults: Optional["FaultSchedule"] = None,
) -> Scenario:
    """Analogue of dataset A: default node, three weeks of Feb-Mar 2019.

    The paper's node kept the default 1 sat/vB threshold and 8 peers;
    congestion held ~75% of the time.  Default scale covers ~450 blocks.
    """
    blocks = max(int(450 * scale), 20)
    duration = blocks * TARGET_BLOCK_INTERVAL
    engine_config = EngineConfig(duration=duration)
    pools = make_pools(DATASET_A_POOLS)
    streams = RngStreams(seed)
    _wire_policies(pools, streams, misbehave=False)
    workload = WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=_capacity_per_second(engine_config),
        demand=DemandModel(base_ratio=1.01, ar_sigma=0.09),
        fees=FeeModel(median_sat_vb=25.0),
        sizes=SizeModel(),
        injections=InjectionConfig(
            cpfp_child_fraction=0.46,
            rbf_bump_fraction=0.05,
        ),
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    observers = [ObserverConfig(name="A", min_fee_rate=1.0, peer_samples=1)]
    return Scenario(
        name="dataset-A",
        seed=seed,
        scale=scale,
        engine_config=engine_config,
        pools=pools,
        observers=observers,
        workload_config=workload,
        faults=faults,
        policy_streams=streams,
    )


def dataset_b_scenario(
    seed: int = 2019_06_01,
    scale: float = 1.0,
    faults: Optional["FaultSchedule"] = None,
) -> Scenario:
    """Analogue of dataset B: permissive node, June 2019.

    125 peers, no fee threshold, zero-fee transactions accepted;
    congestion ~92% of the time, with the late-June demand surge.
    Includes the low/zero-fee probe population of §4.2.3.
    """
    blocks = max(int(500 * scale), 20)
    duration = blocks * TARGET_BLOCK_INTERVAL
    engine_config = EngineConfig(duration=duration)
    pools = make_pools(DATASET_B_POOLS)
    streams = RngStreams(seed)
    _wire_policies(pools, streams, misbehave=False)
    workload = WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=_capacity_per_second(engine_config),
        demand=DemandModel(base_ratio=1.12, ar_sigma=0.13, diurnal_amplitude=0.3),
        fees=FeeModel(median_sat_vb=40.0, sigma=1.4, backlog_exponent=0.7),
        sizes=SizeModel(),
        injections=InjectionConfig(
            cpfp_child_fraction=0.40,
            low_fee_count=max(int(120 * scale), 10),
            zero_fee_count=max(int(90 * scale), 8),
            rbf_bump_fraction=0.08,
        ),
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    observers = [
        ObserverConfig(name="B", min_fee_rate=0.0, peer_samples=4),
    ]
    return Scenario(
        name="dataset-B",
        seed=seed,
        scale=scale,
        engine_config=engine_config,
        pools=pools,
        observers=observers,
        workload_config=workload,
        faults=faults,
        policy_streams=streams,
    )


def dataset_c_scenario(
    seed: int = 2020_01_01,
    scale: float = 1.0,
    faults: Optional["FaultSchedule"] = None,
) -> Scenario:
    """Analogue of dataset C: the full year 2020, with misbehaviour.

    This is the scenario behind Tables 2-4 and Figs 7/8/13: pools
    accelerate self-interest transactions, ViaBTC colludes, BTC.com
    sells dark-fee acceleration, and a scam episode unfolds mid-run.
    Default scale covers ~2000 blocks.
    """
    blocks = max(int(2000 * scale), 40)
    duration = blocks * TARGET_BLOCK_INTERVAL
    engine_config = EngineConfig(duration=duration)
    pools = make_pools(DATASET_C_POOLS)
    # A small unregistered fringe so ~1.3% of blocks resist attribution.
    pools.append(
        MiningPool(
            name="ghost-fringe",
            marker="/anon/",
            hash_share=0.013,
            registered=False,
        )
    )
    streams = RngStreams(seed)
    service = AccelerationService(name=BTC_COM_SERVICE, operators=("BTC.com",))
    _wire_policies(pools, streams, services=[service], misbehave=True)

    def scaled(count: int, minimum: int = 4) -> int:
        return max(int(count * scale), minimum)

    # Scam window: a contiguous ~7% slice of the run (the paper's window
    # spans 3697 of 53214 blocks).
    scam_start = duration * 0.55
    scam_end = duration * 0.62

    self_interest = {
        "Poolin": scaled(300),
        "OKEx": scaled(280),
        "Huobi": scaled(220),
        "F2Pool": scaled(250),
        "ViaBTC": scaled(200),
        "SlushPool": scaled(650),
        "1THash & 58Coin": scaled(500),
        "BTC.com": scaled(120),
        "AntPool": scaled(110),
        "Binance Pool": scaled(80),
    }
    workload = WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=_capacity_per_second(engine_config),
        demand=DemandModel(base_ratio=0.96, ar_sigma=0.10),
        fees=FeeModel(median_sat_vb=30.0),
        sizes=SizeModel(),
        injections=InjectionConfig(
            self_interest_counts=self_interest,
            self_interest_fee_rate=1.6,
            scam_count=scaled(120, minimum=30),
            scam_window=(scam_start, scam_end),
            accelerated_counts={BTC_COM_SERVICE: scaled(140, minimum=20)},
            accelerated_fee_rate=2.0,
            low_fee_count=scaled(60),
            zero_fee_count=scaled(40),
            cpfp_child_fraction=0.33,
            rbf_bump_fraction=0.10,
        ),
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    observers = [ObserverConfig(name="C", min_fee_rate=0.0, peer_samples=2)]
    return Scenario(
        name="dataset-C",
        seed=seed,
        scale=scale,
        engine_config=engine_config,
        pools=pools,
        observers=observers,
        workload_config=workload,
        services=[service],
        faults=faults,
        policy_streams=streams,
    )


def honest_scenario(
    seed: int = 7,
    blocks: int = 120,
    base_ratio: float = 1.0,
    faults: Optional["FaultSchedule"] = None,
) -> Scenario:
    """A small, fully honest control scenario for tests and ablations."""
    duration = blocks * TARGET_BLOCK_INTERVAL
    engine_config = EngineConfig(duration=duration)
    pools = make_pools(DATASET_C_POOLS[:8])
    streams = RngStreams(seed)
    _wire_policies(pools, streams, misbehave=False)
    workload = WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=_capacity_per_second(engine_config),
        demand=DemandModel(base_ratio=base_ratio),
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    observers = [ObserverConfig(name="control", min_fee_rate=0.0, peer_samples=2)]
    return Scenario(
        name="honest-control",
        seed=seed,
        scale=float(blocks),
        engine_config=engine_config,
        pools=pools,
        observers=observers,
        workload_config=workload,
        faults=faults,
        policy_streams=streams,
    )


#: The adversary-zoo lineup kinds understood by :func:`adversary_scenario`.
ADVERSARY_KINDS = (
    "honest",
    "fifo",
    "bucketed",
    "call-auction",
    "sandwich",
    "censor-for-rent",
    "selfish",
    "max-boost",
)


def adversary_scenario(
    kind: str,
    seed: int = 404,
    scale: float = 1.0,
    intensity: float = 1.0,
    target_pool: str = "F2Pool",
    faults: Optional["FaultSchedule"] = None,
) -> Scenario:
    """One adversary-zoo lineup for the detection-power scorecard.

    Every kind runs the *same* labelled workload (self-interest probes,
    a scam population, MEV victim/attacker pairs, low/zero-fee probes) —
    only the target pool's ordering policy, or the pool-level attack,
    differs between rows.  That keeps the detection matrix comparable:
    the ``honest`` row measures each test's false-positive rate on
    identical data, and every adversarial row measures power.

    ``intensity`` in [0, 1] scales how aggressively the adversary
    deviates (victim coverage, ransom floor, bucket width, withholding
    engagement); kinds without a natural knob ignore it.
    """
    if kind not in ADVERSARY_KINDS:
        raise ValueError(f"unknown adversary kind: {kind!r}")
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    blocks = max(int(1800 * scale), 60)
    duration = blocks * TARGET_BLOCK_INTERVAL
    engine_config = EngineConfig(duration=duration)
    pools = make_pools(DATASET_C_POOLS[:8])
    streams = RngStreams(seed)
    _wire_policies(pools, streams, misbehave=False)
    target = find_pool_in(pools, target_pool)
    if target is None:
        raise ValueError(f"target pool not in lineup: {target_pool!r}")

    def scaled(count: int, minimum: int = 4) -> int:
        return max(int(count * scale), minimum)

    campaign = MevCampaign(name="zoo")
    workload = WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=_capacity_per_second(engine_config),
        demand=DemandModel(base_ratio=1.0, ar_sigma=0.10),
        fees=FeeModel(median_sat_vb=30.0),
        sizes=SizeModel(),
        injections=InjectionConfig(
            self_interest_counts={target.name: scaled(260, minimum=30)},
            self_interest_fee_rate=1.6,
            scam_count=scaled(600, minimum=48),
            low_fee_count=scaled(60),
            zero_fee_count=scaled(40),
            cpfp_child_fraction=0.33,
            mev_victim_count=scaled(90, minimum=12),
        ),
        mev_campaign=campaign,
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    attacks: list[SelfishMiningAttack] = []
    if kind == "fifo":
        target.policy = FifoPolicy(label=f"fifo/{target.name}")
    elif kind == "bucketed":
        # Wider buckets erase more of the fee ordering; fee-rates are
        # lognormal around 30 sat/vB, so intensity 1.0 (width 64)
        # collapses ~3/4 of all traffic into one arrival-ordered bucket.
        target.policy = BucketedPriorityPolicy(
            width=max(2.0, 64.0 * intensity),
            label=f"bucketed/{target.name}",
        )
    elif kind == "call-auction":
        target.policy = CallAuctionPolicy(label=f"auction/{target.name}")
    elif kind == "sandwich":
        target.policy = SandwichPolicy(
            base=target.policy,
            victim=txid_set_predicate(campaign.victims),
            attacker=txid_set_predicate(campaign.attackers),
            intensity=intensity,
            label=f"sandwich/{target.name}",
        )
    elif kind == "censor-for-rent":
        # Scam fee-rates are lognormal around 30 sat/vB; the ransom
        # floor censors ~50% of them at intensity 0, ~90% at 0.5 and
        # ~99.5% at 1.0.
        target.policy = CensorForRentPolicy(
            base=target.policy,
            banned=address_predicate(frozenset({scam_wallet_address()})),
            ransom_rate=30.0 * (8.0 ** intensity),
            label=f"censor-for-rent/{target.name}",
        )
    elif kind == "selfish":
        attacks.append(
            SelfishMiningAttack(
                pool=target.name,
                gamma=0.1,
                engagement=intensity,
                seed=seed + 7919,
            )
        )
    elif kind == "max-boost":
        # Maximal self-interest acceleration: the canonical Table 2
        # misbehaviour at full strength, used by the scorecard's
        # power ≈ 1 meta-check.
        target.policy = PrioritizeSetPolicy(
            base=target.policy,
            boost=address_predicate(target.wallet_addresses),
            label=f"boost/{target.name}",
        )
    observers = [ObserverConfig(name="zoo", min_fee_rate=0.0, peer_samples=2)]
    return Scenario(
        name=f"adv-{kind}-{target.name}-i{intensity:g}",
        seed=seed,
        scale=scale,
        engine_config=engine_config,
        pools=pools,
        observers=observers,
        workload_config=workload,
        faults=faults,
        attacks=attacks,
        policy_streams=streams,
    )


def find_pool_in(
    pools: Sequence[MiningPool], name: str
) -> Optional[MiningPool]:
    """Look up a pool by name in a plain pool list."""
    for pool in pools:
        if pool.name == name:
            return pool
    return None


def scam_window_bounds(scenario: Scenario) -> tuple[float, float]:
    """The scam episode's time window inside a scenario."""
    return scenario.workload_config.injections.scam_window


def find_pool(scenario: Scenario, name: str) -> Optional[MiningPool]:
    """Look up one of a scenario's pools by name."""
    for pool in scenario.pools:
        if pool.name == name:
            return pool
    return None
