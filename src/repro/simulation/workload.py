"""Transaction workload generation.

The workload produces the stream of user transactions a scenario feeds
into the network: ordinary payments whose arrival intensity waxes and
wanes (creating the congestion regimes of Fig 3), CPFP chains, low- and
zero-fee stragglers, plus the three specially labelled populations the
paper investigates — self-interest transfers touching pool wallets,
scam payments to a flagged wallet, and dark-fee transactions whose
owners purchase off-chain acceleration.

Fee-rates respond to demand: the generator scales its fee draws by the
current demand-to-capacity ratio, modelling users (and their wallets'
fee estimators) bidding up during congestion — which is what makes the
Fig 4c ordering emerge rather than being painted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..chain.address import AddressFactory
from ..chain.transaction import Transaction, TransactionBuilder
from ..datasets.records import (
    LABEL_ACCELERATED,
    LABEL_LOW_FEE,
    LABEL_MEV_ATTACK,
    LABEL_MEV_VICTIM,
    LABEL_RBF_BUMP,
    LABEL_RBF_ORIGINAL,
    LABEL_SCAM,
    LABEL_SELF_INTEREST,
    LABEL_ZERO_FEE,
    make_label,
)
from .rng import RngStreams

if False:  # pragma: no cover - typing only
    from ..mining.adversaries import MevCampaign


def scam_wallet_address() -> str:
    """The deterministic wallet all scam payments flow to.

    Exposed so censorship experiments can target the scam population by
    address predicate without regenerating the workload.
    """
    return AddressFactory("scam-wallet").next()


@dataclass(frozen=True)
class PlannedTx:
    """One transaction scheduled for broadcast."""

    broadcast_time: float
    tx: Transaction
    labels: frozenset[str] = frozenset()
    accelerate_via: Optional[str] = None


@dataclass
class DemandModel:
    """Piecewise-constant arrival intensity with diurnal and AR(1) waves.

    ``base_rate`` is expressed relative to block capacity: 1.0 means
    arrivals exactly fill blocks on average.  The AR(1) multiplier adds
    multi-hour congestion episodes; the sinusoid adds a diurnal cycle.
    """

    base_ratio: float = 1.05
    diurnal_amplitude: float = 0.25
    ar_coefficient: float = 0.97
    ar_sigma: float = 0.08
    bin_seconds: float = 600.0
    min_ratio: float = 0.3
    max_ratio: float = 3.0

    def intensity_series(
        self, duration: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(bin start times, demand ratio per bin) covering ``duration``."""
        bins = int(np.ceil(duration / self.bin_seconds))
        starts = np.arange(bins) * self.bin_seconds
        wave = np.empty(bins)
        level = 0.0
        for index in range(bins):
            level = self.ar_coefficient * level + rng.normal(0.0, self.ar_sigma)
            wave[index] = level
        diurnal = self.diurnal_amplitude * np.sin(
            2.0 * np.pi * starts / 86_400.0
        )
        # De-bias the log-normal AR multiplier so its long-run mean is 1:
        # otherwise demand would systematically exceed base_ratio and the
        # backlog would grow without bound over long scenarios.
        stationary_var = self.ar_sigma**2 / max(1.0 - self.ar_coefficient**2, 1e-9)
        ratio = (
            self.base_ratio
            * np.exp(wave - stationary_var / 2.0)
            * (1.0 + diurnal)
        )
        return starts, np.clip(ratio, self.min_ratio, self.max_ratio)


@dataclass
class FeeModel:
    """Log-normal fee-rates scaled by congestion pressure.

    Users (via their wallets' fee estimators) react to the *backlog*
    they observe, not to the instantaneous arrival rate — so the
    pressure variable is a backlog measure in block-equivalents, which
    lags demand exactly the way real mempool congestion does.  This is
    what makes the Fig 4c/11 ordering (higher congestion bin ⇒ higher
    fees) emerge.
    """

    median_sat_vb: float = 25.0
    sigma: float = 1.1
    #: How aggressively urgency-sensitive users bid as the backlog deepens.
    backlog_exponent: float = 0.9
    #: Share of users who do NOT react to congestion (non-urgent
    #: payments, batch sweeps, naive wallets).  Their low-fee
    #: transactions issued during congestion are precisely the ones
    #: that wait many blocks — the population behind Fig 5's "low fee
    #: ⇒ long delay" tail.
    insensitive_fraction: float = 0.35
    min_sat_vb: float = 1.0
    max_sat_vb: float = 120_000.0

    def draw(
        self, count: int, backlog_blocks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw fee-rates given the backlog (in block-equivalents)."""
        base = rng.lognormal(
            mean=np.log(self.median_sat_vb), sigma=self.sigma, size=count
        )
        pressure = np.power(
            1.0 + np.maximum(backlog_blocks, 0.0), self.backlog_exponent
        )
        insensitive = rng.random(count) < self.insensitive_fraction
        pressure = np.where(insensitive, 1.0, pressure)
        return np.clip(base * pressure, self.min_sat_vb, self.max_sat_vb)


def backlog_proxy(
    ratios: np.ndarray,
    bin_seconds: float,
    block_interval: float = 600.0,
    block_times: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Queueing proxy: backlog in block-equivalents per demand bin.

    Integrates demand inflow against capacity with a floor at zero — a
    fluid approximation of the mempool the engine will produce.  When
    the actual ``block_times`` are supplied (the scenario draws the
    mining race up front), capacity is consumed at the real discovery
    instants, so the proxy also reflects *mining luck*: a 40-minute
    block builds a backlog users react to even when demand is flat,
    exactly as real fee estimators do.
    """
    backlog = np.empty_like(ratios)
    level = 0.0
    if block_times is None:
        bins_per_block = bin_seconds / block_interval
        for index, ratio in enumerate(ratios):
            level = max(0.0, level + (float(ratio) - 1.0) * bins_per_block)
            backlog[index] = level
        return backlog
    times = np.sort(np.asarray(block_times, dtype=float))
    block_ptr = 0
    for index, ratio in enumerate(ratios):
        end = (index + 1) * bin_seconds
        level += float(ratio) * bin_seconds / block_interval
        while block_ptr < times.size and times[block_ptr] <= end:
            level = max(0.0, level - 1.0)
            block_ptr += 1
        backlog[index] = level
    return backlog


@dataclass
class SizeModel:
    """Log-normal virtual sizes with a hard floor."""

    median_vsize: float = 5000.0
    sigma: float = 0.6
    min_vsize: int = 110
    max_vsize: int = 90_000

    def draw(self, count: int, rng: np.random.Generator) -> np.ndarray:
        sizes = rng.lognormal(mean=np.log(self.median_vsize), sigma=self.sigma, size=count)
        return np.clip(sizes, self.min_vsize, self.max_vsize).astype(np.int64)


@dataclass
class InjectionConfig:
    """Rates of the specially labelled populations."""

    #: Per-pool self-interest transactions (keyed by pool name).
    self_interest_counts: dict[str, int] = field(default_factory=dict)
    #: Fee-rate (sat/vB) of self-interest transactions — deliberately
    #: modest so honest miners deprioritise them.
    self_interest_fee_rate: float = 3.0
    #: Scam payments, all to one wallet, within a time window.
    scam_count: int = 0
    scam_window: tuple[float, float] = (0.0, 0.0)
    #: Dark-fee transactions per acceleration service.
    accelerated_counts: dict[str, int] = field(default_factory=dict)
    accelerated_fee_rate: float = 2.0
    #: Stragglers below the default relay threshold (norm III probes).
    low_fee_count: int = 0
    zero_fee_count: int = 0
    #: Fraction of ordinary transactions that spawn a chained child
    #: spending their output (exchange sweeps, change respends, ...).
    cpfp_child_fraction: float = 0.28
    #: Share of those chains that are low-fee *rescues* — a stuck cheap
    #: parent pulled in by a deliberately overpaying child.  Most real
    #: chains are ordinary respends at market fee levels, which is why
    #: the paper's PPE stays low even though ~20-26% of transactions
    #: are CPFP children.
    cpfp_rescue_fraction: float = 0.06
    #: Probability that a stuck low-fee transaction's owner publicly
    #: fee-bumps it via replace-by-fee (the transparent alternative to
    #: dark-fee acceleration).
    rbf_bump_fraction: float = 0.0
    #: Fee multiple the bump pays relative to the original.
    rbf_bump_multiple: float = 12.0
    #: MEV campaign: juicy victim transactions plus the attacker's own
    #: front-run/back-run insertions broadcast moments later.  The
    #: populations are labelled (and registered with the scenario's
    #: MevCampaign) whether or not any pool actually sandwiches them,
    #: so honest lineups carry the identical workload.
    mev_victim_count: int = 0
    mev_attackers_per_victim: int = 2
    #: Victims pay well (that is what makes them worth targeting).
    mev_victim_fee_rate: float = 45.0
    #: Attacker insertions deliberately underpay — the attacking pool
    #: commits its own transactions for free, which is exactly the
    #: acceleration signature the §5.1 binomial detects.
    mev_attack_fee_rate: float = 1.4


@dataclass
class WorkloadConfig:
    """Everything needed to generate a scenario's transaction stream."""

    duration: float
    capacity_vsize_per_second: float
    demand: DemandModel = field(default_factory=DemandModel)
    fees: FeeModel = field(default_factory=FeeModel)
    sizes: SizeModel = field(default_factory=SizeModel)
    injections: InjectionConfig = field(default_factory=InjectionConfig)
    pool_wallets: dict[str, Sequence[str]] = field(default_factory=dict)
    #: Live registry a sandwich policy reads victim/attacker txids from
    #: (see repro.mining.adversaries.MevCampaign); filled by the
    #: generator as the MEV populations are minted.
    mev_campaign: Optional["MevCampaign"] = None
    #: Actual block discovery times, when the scenario pre-draws the
    #: mining race; lets the fee model react to mining luck.
    block_times: Optional[np.ndarray] = None
    block_interval: float = 600.0


class WorkloadGenerator:
    """Generate the full, time-sorted transaction plan for a scenario."""

    def __init__(self, config: WorkloadConfig, streams: RngStreams) -> None:
        self.config = config
        self.streams = streams
        self._builder = TransactionBuilder(namespace=f"wl/{streams.root_seed}")
        self._addresses = AddressFactory(namespace=f"users/{streams.root_seed}")
        self._nonce = 0

    def _next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce

    # ------------------------------------------------------------------
    # Ordinary traffic
    # ------------------------------------------------------------------
    def _ordinary_arrivals(self) -> tuple[np.ndarray, np.ndarray]:
        """Arrival times and the backlog proxy in effect at each arrival."""
        cfg = self.config
        rng = self.streams.stream("demand")
        starts, ratios = cfg.demand.intensity_series(cfg.duration, rng)
        backlogs = backlog_proxy(
            ratios,
            cfg.demand.bin_seconds,
            block_interval=cfg.block_interval,
            block_times=cfg.block_times,
        )
        mean_vsize = float(cfg.sizes.median_vsize * np.exp(cfg.sizes.sigma**2 / 2.0))
        # Spawned CPFP children add vsize beyond the ordinary stream;
        # fold their expected overhead into the rate so that a demand
        # ratio of 1.0 really means "arrivals fill capacity exactly".
        injections = cfg.injections
        child_share = injections.cpfp_child_fraction * (
            (1.0 - injections.cpfp_rescue_fraction) * 0.5
            + injections.cpfp_rescue_fraction / 3.0
        )
        tx_rate_per_second = cfg.capacity_vsize_per_second / (
            mean_vsize * (1.0 + child_share)
        )
        arrival_rng = self.streams.stream("arrivals")
        times: list[np.ndarray] = []
        backlog_at: list[np.ndarray] = []
        for start, ratio, backlog in zip(starts, ratios, backlogs):
            expected = ratio * tx_rate_per_second * cfg.demand.bin_seconds
            count = int(arrival_rng.poisson(expected))
            if count == 0:
                continue
            bin_times = start + arrival_rng.uniform(
                0.0, cfg.demand.bin_seconds, size=count
            )
            times.append(np.sort(bin_times))
            backlog_at.append(np.full(count, backlog))
        if not times:
            return np.empty(0), np.empty(0)
        all_times = np.concatenate(times)
        all_backlogs = np.concatenate(backlog_at)
        order = np.argsort(all_times, kind="stable")
        return all_times[order], all_backlogs[order]

    def _ordinary_txs(self) -> list[PlannedTx]:
        cfg = self.config
        times, backlogs = self._ordinary_arrivals()
        count = times.size
        if count == 0:
            return []
        fee_rng = self.streams.stream("fees")
        size_rng = self.streams.stream("sizes")
        cpfp_rng = self.streams.stream("cpfp")
        rates = cfg.fees.draw(count, backlogs, fee_rng)
        sizes = cfg.sizes.draw(count, size_rng)
        fees = np.maximum((rates * sizes).astype(np.int64), 1)
        values = np.maximum(
            size_rng.lognormal(mean=np.log(5e6), sigma=1.5, size=count), 1000
        ).astype(np.int64)

        planned: list[PlannedTx] = []
        # Rolling pools of candidate parents: any recent transaction for
        # ordinary chaining, low-fee ones for deliberate rescues.
        recent_parents: list[tuple[float, Transaction, float]] = []
        stuck_parents: list[tuple[float, Transaction]] = []
        injections = cfg.injections
        for index in range(count):
            time = float(times[index])
            rate = float(rates[index])
            tx = self._builder.build(
                to_address=self._addresses.next(),
                value=int(values[index]),
                fee=int(fees[index]),
                vsize=int(sizes[index]),
                nonce=self._next_nonce(),
            )
            planned.append(PlannedTx(broadcast_time=time, tx=tx))
            recent_parents.append((time, tx, rate))
            if len(recent_parents) > 300:
                recent_parents.pop(0)
            if rate < 8.0:
                stuck_parents.append((time, tx))
                if len(stuck_parents) > 200:
                    stuck_parents.pop(0)
                # Public fee acceleration: the owner replaces the stuck
                # transaction with a higher-fee conflicting version.
                if (
                    injections.rbf_bump_fraction > 0.0
                    and cpfp_rng.random() < injections.rbf_bump_fraction
                ):
                    planned[-1] = PlannedTx(
                        broadcast_time=time,
                        tx=tx,
                        labels=planned[-1].labels | {LABEL_RBF_ORIGINAL},
                    )
                    bump_fee = max(
                        int(tx.fee * injections.rbf_bump_multiple), tx.fee + 1
                    )
                    bump = self._builder.replacement(
                        tx, fee=bump_fee, nonce=self._next_nonce()
                    )
                    delay = float(cpfp_rng.uniform(300.0, 1500.0))
                    planned.append(
                        PlannedTx(
                            broadcast_time=time + delay,
                            tx=bump,
                            labels=frozenset({LABEL_RBF_BUMP}),
                        )
                    )
                    # A replaced parent must not anchor CPFP chains.
                    stuck_parents.pop()
                    continue
            if cpfp_rng.random() >= injections.cpfp_child_fraction:
                continue
            rescue = (
                stuck_parents
                and cpfp_rng.random() < injections.cpfp_rescue_fraction
            )
            if rescue:
                # A stuck cheap parent pulled in by an overpaying child.
                parent_time, parent = stuck_parents.pop(
                    int(cpfp_rng.integers(len(stuck_parents)))
                )
                child_vsize = int(max(cfg.sizes.min_vsize, sizes[index] // 3))
                child_rate = max(rate * 3.0, 40.0)
                delay = float(cpfp_rng.uniform(5.0, 900.0))
            else:
                # An ordinary respend: child pays market fees like its
                # parent, so neither sits far from its predicted slot.
                parent_time, parent, parent_rate = recent_parents[
                    int(cpfp_rng.integers(len(recent_parents)))
                ]
                child_vsize = int(
                    max(cfg.sizes.min_vsize, sizes[index] // 2)
                )
                child_rate = max(
                    parent_rate * float(cpfp_rng.uniform(0.8, 1.3)), 1.0
                )
                delay = float(cpfp_rng.uniform(1.0, 300.0))
            child = self._builder.build(
                to_address=self._addresses.next(),
                value=max(int(values[index]) // 2, 1000),
                fee=max(int(child_rate * child_vsize), 1),
                vsize=child_vsize,
                extra_parents=[parent.txid],
                nonce=self._next_nonce(),
            )
            planned.append(PlannedTx(broadcast_time=parent_time + delay, tx=child))
        return planned

    # ------------------------------------------------------------------
    # Labelled populations
    # ------------------------------------------------------------------
    def _uniform_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.sort(rng.uniform(0.0, self.config.duration, size=count))

    def _self_interest_txs(self) -> list[PlannedTx]:
        cfg = self.config
        rng = self.streams.stream("self-interest")
        planned: list[PlannedTx] = []
        for pool, count in cfg.injections.self_interest_counts.items():
            wallets = list(cfg.pool_wallets.get(pool, ()))
            if not wallets or count <= 0:
                continue
            times = self._uniform_times(count, rng)
            for time in times:
                wallet = wallets[int(rng.integers(len(wallets)))]
                vsize = int(rng.integers(200, 800))
                fee = max(int(cfg.injections.self_interest_fee_rate * vsize), 1)
                tx = self._builder.build(
                    to_address=wallet,
                    value=int(rng.integers(10**6, 10**9)),
                    fee=fee,
                    vsize=vsize,
                    nonce=self._next_nonce(),
                )
                planned.append(
                    PlannedTx(
                        broadcast_time=float(time),
                        tx=tx,
                        labels=frozenset({make_label(LABEL_SELF_INTEREST, pool)}),
                    )
                )
        return planned

    def _scam_txs(self) -> list[PlannedTx]:
        cfg = self.config
        if cfg.injections.scam_count <= 0:
            return []
        rng = self.streams.stream("scam")
        start, end = cfg.injections.scam_window
        if end <= start:
            start, end = 0.0, cfg.duration
        scam_wallet = AddressFactory("scam-wallet").next()
        times = np.sort(rng.uniform(start, end, size=cfg.injections.scam_count))
        planned = []
        for time in times:
            vsize = int(rng.integers(150, 500))
            # Victims pay ordinary market fees — nothing distinguishes
            # scam payments except the destination wallet.
            rate = float(rng.lognormal(np.log(30.0), 0.8))
            tx = self._builder.build(
                to_address=scam_wallet,
                value=int(rng.integers(10**5, 10**8)),
                fee=max(int(rate * vsize), 1),
                vsize=vsize,
                nonce=self._next_nonce(),
            )
            planned.append(
                PlannedTx(
                    broadcast_time=float(time),
                    tx=tx,
                    labels=frozenset({LABEL_SCAM}),
                )
            )
        return planned

    def _accelerated_txs(self) -> list[PlannedTx]:
        cfg = self.config
        rng = self.streams.stream("accelerated")
        planned: list[PlannedTx] = []
        for service, count in cfg.injections.accelerated_counts.items():
            if count <= 0:
                continue
            times = self._uniform_times(count, rng)
            for time in times:
                vsize = int(rng.integers(200, 2000))
                fee = max(int(cfg.injections.accelerated_fee_rate * vsize), 1)
                tx = self._builder.build(
                    to_address=self._addresses.next(),
                    value=int(rng.integers(10**6, 10**10)),
                    fee=fee,
                    vsize=vsize,
                    nonce=self._next_nonce(),
                )
                planned.append(
                    PlannedTx(
                        broadcast_time=float(time),
                        tx=tx,
                        labels=frozenset({make_label(LABEL_ACCELERATED, service)}),
                        accelerate_via=service,
                    )
                )
        return planned

    def _threshold_probe_txs(self) -> list[PlannedTx]:
        """Low- and zero-fee transactions probing norm III."""
        cfg = self.config
        rng = self.streams.stream("low-fee")
        planned: list[PlannedTx] = []
        for count, zero in (
            (cfg.injections.low_fee_count, False),
            (cfg.injections.zero_fee_count, True),
        ):
            if count <= 0:
                continue
            times = self._uniform_times(count, rng)
            for time in times:
                vsize = int(rng.integers(150, 600))
                fee = 0 if zero else int(rng.uniform(0.1, 0.9) * vsize)
                label = LABEL_ZERO_FEE if zero else LABEL_LOW_FEE
                tx = self._builder.build(
                    to_address=self._addresses.next(),
                    value=int(rng.integers(10**4, 10**7)),
                    fee=fee,
                    vsize=vsize,
                    nonce=self._next_nonce(),
                )
                planned.append(
                    PlannedTx(
                        broadcast_time=float(time),
                        tx=tx,
                        labels=frozenset({label}),
                    )
                )
        return planned

    def _mev_txs(self) -> list[PlannedTx]:
        """Victim transactions plus the attacker's sandwich insertions.

        Each victim is followed, within seconds, by the attacker's
        front-run/back-run transactions — the attacker watches the
        mempool and reacts.  Both populations are labelled and
        registered with the campaign; whether any pool *acts* on them
        is the scenario's policy wiring, not the workload's.
        """
        cfg = self.config
        injections = cfg.injections
        if injections.mev_victim_count <= 0:
            return []
        rng = self.streams.stream("mev")
        campaign = cfg.mev_campaign
        campaign_name = campaign.name if campaign is not None else ""
        planned: list[PlannedTx] = []
        times = self._uniform_times(injections.mev_victim_count, rng)
        for time in times:
            vsize = int(rng.integers(300, 900))
            fee = max(int(injections.mev_victim_fee_rate * vsize), 1)
            victim = self._builder.build(
                to_address=self._addresses.next(),
                value=int(rng.integers(10**7, 10**10)),
                fee=fee,
                vsize=vsize,
                nonce=self._next_nonce(),
            )
            planned.append(
                PlannedTx(
                    broadcast_time=float(time),
                    tx=victim,
                    labels=frozenset(
                        {make_label(LABEL_MEV_VICTIM, campaign_name)}
                    ),
                )
            )
            if campaign is not None:
                campaign.register_victim(victim.txid)
            for _ in range(injections.mev_attackers_per_victim):
                attack_vsize = int(rng.integers(150, 400))
                attack_fee = max(
                    int(injections.mev_attack_fee_rate * attack_vsize), 1
                )
                attack = self._builder.build(
                    to_address=self._addresses.next(),
                    value=int(rng.integers(10**5, 10**7)),
                    fee=attack_fee,
                    vsize=attack_vsize,
                    nonce=self._next_nonce(),
                )
                delay = float(rng.uniform(0.5, 20.0))
                planned.append(
                    PlannedTx(
                        broadcast_time=float(time) + delay,
                        tx=attack,
                        labels=frozenset(
                            {make_label(LABEL_MEV_ATTACK, campaign_name)}
                        ),
                    )
                )
                if campaign is not None:
                    campaign.register_attacker(attack.txid)
        return planned

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def generate(self) -> list[PlannedTx]:
        """The full plan, sorted by broadcast time."""
        planned = self._ordinary_txs()
        planned.extend(self._self_interest_txs())
        planned.extend(self._scam_txs())
        planned.extend(self._accelerated_txs())
        planned.extend(self._threshold_probe_txs())
        planned.extend(self._mev_txs())
        planned.sort(key=lambda p: (p.broadcast_time, p.tx.txid))
        return planned
