"""Named, independently seeded RNG streams.

Every stochastic subsystem (arrival process, fee draws, mining races,
latency, policy jitter, ...) pulls its own stream derived from the
scenario seed and a stream name.  Adding a new consumer therefore never
perturbs the draws of existing ones, which keeps scenario outputs stable
across code evolution — the property that makes EXPERIMENTS.md numbers
reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created on first use, then cached).

        Repeated calls return the *same* generator object, so a consumer
        that draws twice advances its own stream — two consumers never
        share state.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.root_seed, name)
            )
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (not cached)."""
        return np.random.default_rng(derive_seed(self.root_seed, name))

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of every cached stream's bit-generator state.

        Only cached (i.e. already-consumed) streams appear; ``fresh``
        generators are derived purely from the root seed and need no
        state.  Consumed by the checkpoint/resume machinery in
        :mod:`repro.faults.checkpoint`.
        """
        return {
            name: self._streams[name].bit_generator.state
            for name in sorted(self._streams)
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore stream states *in place*.

        Generators already handed out keep their identity — closures
        holding a stream reference (e.g. policy jitter sources) resume
        from the restored state without rewiring.
        """
        for name, generator_state in state.items():
            self.stream(name).bit_generator.state = generator_state
