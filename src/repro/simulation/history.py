"""Decade-scale macro history: chain growth, fee revenue, norm eras.

Three of the paper's artefacts span years of chain history rather than
one measurement campaign:

* **Fig 3a** — cumulative transactions and blocks since 2009, showing
  60% of all transactions arriving in the last 3.5 years;
* **Table 5** — the fee share of miner revenue per year, 2016-2020;
* **Fig 1** — the April 2016 switch from coin-age-priority ordering to
  fee-rate ordering in Bitcoin Core, visible as a step change in
  position-prediction error.

Simulating a decade at transaction granularity is wasteful; instead the
history generator works at block granularity with a calibrated demand
curve (documented substitution in DESIGN.md): per-block fee totals are
*derived from a per-era fee-rate level* and then measured, never echoed
straight into the output tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..chain.address import AddressFactory
from ..chain.block import Block, GENESIS_HASH, build_block
from ..chain.constants import COIN, MAX_BLOCK_VSIZE, block_subsidy, HALVING_INTERVAL
from ..chain.transaction import TransactionBuilder, coinbase_value, make_coinbase
from ..mempool.mempool import MempoolEntry
from ..mining.policies import FeeRatePolicy, OrderingPolicy, PriorityPolicy
from .rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.checkpoint import CheckpointConfig

#: Blocks per calendar year at the 10-minute target.
BLOCKS_PER_YEAR = 52_560

#: Bitcoin Core moved fully to fee-rate ordering in April 2016 (Fig 1).
NORM_SWITCH_YEAR = 2016.25


@dataclass(frozen=True)
class YearDemand:
    """Calibrated demand level for one year.

    ``tx_millions`` approximates the real yearly transaction volume;
    ``fee_share_target`` is the paper's Table 5 mean fee share, from
    which we back out a per-block fee level.  The generator adds noise
    and *measures* the resulting share.
    """

    year: int
    tx_millions: float
    fee_share_target: float


#: Yearly transaction volumes (approximate public chain statistics) and
#: the paper's measured mean fee shares (Table 5; pre-2016 years get
#: small shares consistent with the era).
YEARLY_DEMAND: tuple[YearDemand, ...] = (
    YearDemand(2009, 0.03, 0.0001),
    YearDemand(2010, 0.19, 0.0005),
    YearDemand(2011, 1.9, 0.002),
    YearDemand(2012, 8.4, 0.004),
    YearDemand(2013, 19.8, 0.008),
    YearDemand(2014, 25.4, 0.009),
    YearDemand(2015, 45.7, 0.011),
    YearDemand(2016, 82.7, 0.0248),
    YearDemand(2017, 104.0, 0.1177),
    YearDemand(2018, 81.2, 0.0319),
    YearDemand(2019, 119.8, 0.0275),
    YearDemand(2020, 112.5, 0.0629),
)


def chain_growth_series(
    demands: Sequence[YearDemand] = YEARLY_DEMAND,
) -> dict[str, np.ndarray]:
    """Cumulative blocks and transactions per year (Fig 3a series).

    Returns arrays keyed ``years``, ``cumulative_blocks``,
    ``cumulative_txs`` — blocks grow linearly by protocol design while
    transactions accelerate sharply from 2017.
    """
    years = np.asarray([d.year for d in demands], dtype=float)
    blocks = np.cumsum(np.full(len(demands), BLOCKS_PER_YEAR, dtype=float))
    txs = np.cumsum(np.asarray([d.tx_millions * 1e6 for d in demands]))
    return {
        "years": years,
        "cumulative_blocks": blocks,
        "cumulative_txs": txs,
    }


def recent_transaction_share(
    growth: dict[str, np.ndarray], last_years: float = 3.5
) -> float:
    """Fraction of all transactions issued in the final ``last_years``.

    The paper highlights that ~60% of all transactions arrived in the
    last 3.5 years of the decade.  ``cumulative_txs[i]`` is the total at
    the *end* of ``years[i]``, so the interpolation axis is shifted to
    calendar year-ends before cutting.
    """
    year_ends = growth["years"] + 1.0
    txs = growth["cumulative_txs"]
    cutoff = year_ends[-1] - last_years
    before = float(np.interp(cutoff, year_ends, txs))
    return float((txs[-1] - before) / txs[-1])


@dataclass(frozen=True)
class YearRevenue:
    """Measured Table 5 row."""

    year: int
    block_count: int
    mean: float
    std: float
    min: float
    p25: float
    median: float
    p75: float
    max: float


def _height_for_year(year: int) -> int:
    """Approximate starting block height of a calendar year."""
    return max(int((year - 2009) * BLOCKS_PER_YEAR), 0)


def sample_fee_revenue(
    years: Sequence[int] = (2016, 2017, 2018, 2019, 2020),
    blocks_per_year: int = 600,
    seed: int = 5_2021,
    demands: Sequence[YearDemand] = YEARLY_DEMAND,
) -> list[YearRevenue]:
    """Generate per-block fee revenue samples and measure Table 5.

    For each sampled block we draw a fee-rate level around the year's
    calibrated mean (log-normal, long-tailed), a fill level, and compute
    fees over a 1 MvB block; the revenue share is then *measured*
    against the era's halving-correct subsidy.
    """
    by_year = {demand.year: demand for demand in demands}
    rng = np.random.default_rng(seed)
    rows: list[YearRevenue] = []
    for year in years:
        demand = by_year[year]
        start_height = _height_for_year(year)
        heights = rng.integers(
            start_height, start_height + BLOCKS_PER_YEAR, size=blocks_per_year
        )
        subsidies = np.asarray([block_subsidy(int(h)) for h in heights], dtype=float)
        # Back out the mean per-block fee from the calibrated share s:
        # fees = s / (1 - s) * subsidy, then spread it log-normally.
        share = demand.fee_share_target
        mean_fees = share / (1.0 - share) * subsidies
        sigma = 0.85
        fees = rng.lognormal(
            mean=np.log(np.maximum(mean_fees, 1.0)) - sigma**2 / 2.0, sigma=sigma
        )
        # A few near-empty blocks collect almost nothing.
        empty = rng.random(blocks_per_year) < 0.005
        fees[empty] = rng.uniform(0.0, 0.01 * COIN, size=int(empty.sum()))
        shares = 100.0 * fees / (fees + subsidies)
        rows.append(
            YearRevenue(
                year=year,
                block_count=blocks_per_year,
                mean=float(shares.mean()),
                std=float(shares.std(ddof=0)),
                min=float(shares.min()),
                p25=float(np.percentile(shares, 25)),
                median=float(np.median(shares)),
                p75=float(np.percentile(shares, 75)),
                max=float(shares.max()),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig 1: the April 2016 ordering-norm switch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EraBlock:
    """A generated block tagged with its fractional year."""

    year: float
    block: Block


class _EraCursor:
    """Mutable generation state shared with the checkpoint wrapper.

    :func:`iter_era_blocks` advances these fields as it yields, so the
    checkpointed caller can snapshot (RNG streams, identifier counters,
    chain tip) between blocks without the generator knowing about
    checkpoints at all.
    """

    __slots__ = ("streams", "rng", "builder", "addresses", "prev_hash", "height", "nonce")

    def __init__(self, seed: int) -> None:
        self.streams = RngStreams(seed)
        self.rng = self.streams.stream("era")
        self.builder = TransactionBuilder(namespace=f"era/{seed}")
        self.addresses = AddressFactory(namespace=f"era-users/{seed}")
        self.prev_hash = GENESIS_HASH
        self.height = 0
        self.nonce = 0


def iter_era_blocks(
    start_year: float = 2015.0,
    end_year: float = 2017.0,
    blocks_per_month: int = 12,
    txs_per_block: int = 120,
    seed: int = 1_2016,
    switch_year: float = NORM_SWITCH_YEAR,
    _cursor: Optional[_EraCursor] = None,
    _start_block: int = 0,
):
    """Stream era blocks one at a time (the Fig 1 hot path).

    Yields exactly the :class:`EraBlock` sequence of
    :func:`generate_era_blocks` without ever materialising the history:
    consumers that fold each block into an accumulator (per-block PPE,
    era CDFs) hold one block at a time instead of two years of chain.

    ``_cursor``/``_start_block`` are the resume hook for the
    checkpointed wrapper; external callers leave them unset.
    """
    cursor = _EraCursor(seed) if _cursor is None else _cursor
    pre_policy = PriorityPolicy()
    post_policy = FeeRatePolicy(package_selection=False)
    months = int(round((end_year - start_year) * 12))
    total_blocks = months * blocks_per_month
    for number in range(_start_block, total_blocks):
        month = number // blocks_per_month
        year = start_year + month / 12.0
        policy: OrderingPolicy = pre_policy if year < switch_year else post_policy
        entries = []
        for _ in range(txs_per_block):
            vsize = int(cursor.rng.integers(150, 2000))
            rate = float(cursor.rng.lognormal(np.log(20.0), 1.0))
            cursor.nonce += 1
            tx = cursor.builder.build(
                to_address=cursor.addresses.next(),
                value=int(cursor.rng.integers(10**4, 10**9)),
                fee=max(int(rate * vsize), 1),
                vsize=vsize,
                nonce=cursor.nonce,
            )
            entries.append(MempoolEntry(tx=tx, arrival_time=0.0))
        template = policy.build(entries, max_vsize=MAX_BLOCK_VSIZE, reserved_vsize=200)
        timestamp = (year - 2009.0) * 365.25 * 86400.0 + cursor.height
        coinbase = make_coinbase(
            reward_address=cursor.addresses.next(),
            value=coinbase_value(
                block_subsidy(_height_for_year(int(year))), template.total_fee
            ),
            marker="/era/",
            height=cursor.height,
            vsize=200,
        )
        block = build_block(
            height=cursor.height,
            prev_hash=cursor.prev_hash,
            timestamp=timestamp,
            coinbase=coinbase,
            transactions=template.transactions,
        )
        cursor.prev_hash = block.block_hash
        cursor.height += 1
        yield EraBlock(year=year, block=block)


def generate_era_blocks(
    start_year: float = 2015.0,
    end_year: float = 2017.0,
    blocks_per_month: int = 12,
    txs_per_block: int = 120,
    seed: int = 1_2016,
    switch_year: float = NORM_SWITCH_YEAR,
    checkpoint: Optional["CheckpointConfig"] = None,
) -> list[EraBlock]:
    """Blocks mined under the era-appropriate ordering norm.

    Before ``switch_year`` miners order by coin-age priority
    (:class:`PriorityPolicy`); from it onward they order by fee-rate.
    Each block draws a fresh synthetic mempool so PPE reflects ordering
    policy, not workload idiosyncrasies.

    ``checkpoint`` makes the generator crash-tolerant: the RNG stream,
    txid/address counters, chain state and completed blocks persist
    every ``checkpoint.every_blocks`` blocks, and an existing
    checkpoint resumes mid-history with output identical to an
    uninterrupted run (tests/test_checkpoint.py).

    The generation itself lives in :func:`iter_era_blocks`; without a
    checkpoint this is just ``list(iter_era_blocks(...))``, and
    streaming consumers should call the iterator directly instead of
    materialising the history here.
    """
    if checkpoint is None:
        return list(
            iter_era_blocks(
                start_year=start_year,
                end_year=end_year,
                blocks_per_month=blocks_per_month,
                txs_per_block=txs_per_block,
                seed=seed,
                switch_year=switch_year,
            )
        )

    from ..datasets.io import _decode_block, _encode_block
    from ..faults.checkpoint import (
        CheckpointError,
        SimulationInterrupted,
        load_checkpoint,
        write_checkpoint,
    )

    cursor = _EraCursor(seed)
    era_blocks: list[EraBlock] = []
    start_block = 0
    fingerprint = (
        f"era/{seed}/{start_year}/{end_year}/"
        f"{blocks_per_month}/{txs_per_block}/{switch_year}"
    )
    state = load_checkpoint(checkpoint.path)
    if state is not None:
        if state.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint.path} belongs to a different "
                "era-history configuration"
            )
        try:
            cursor.streams.load_state_dict(state["streams"])
            # Counters feed the txid/address digests; restoring them
            # keeps resumed identifiers identical to an
            # uninterrupted run.
            cursor.builder._counter = int(state["builder_counter"])
            cursor.addresses._counter = int(state["address_counter"])
            cursor.height = int(state["height"])
            cursor.nonce = int(state["nonce"])
            cursor.prev_hash = str(state["prev_hash"])
            start_block = int(state["next_block"])
            linking_hash = GENESIS_HASH
            for year, payload in zip(state["years"], state["blocks"]):
                block = _decode_block(payload, linking_hash)
                era_blocks.append(EraBlock(year=float(year), block=block))
                linking_hash = block.block_hash
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint {checkpoint.path}: {exc!r}"
            ) from exc

    iterator = iter_era_blocks(
        start_year=start_year,
        end_year=end_year,
        blocks_per_month=blocks_per_month,
        txs_per_block=txs_per_block,
        seed=seed,
        switch_year=switch_year,
        _cursor=cursor,
        _start_block=start_block,
    )
    processed = 0
    for number, era_block in enumerate(iterator, start=start_block):
        era_blocks.append(era_block)
        processed += 1
        abort = (
            checkpoint.abort_after_blocks is not None
            and processed >= checkpoint.abort_after_blocks
        )
        if abort or processed % checkpoint.every_blocks == 0:
            write_checkpoint(
                checkpoint.path,
                {
                    "version": 1,
                    "fingerprint": fingerprint,
                    "next_block": number + 1,
                    "height": cursor.height,
                    "nonce": cursor.nonce,
                    "prev_hash": cursor.prev_hash,
                    "builder_counter": cursor.builder._counter,
                    "address_counter": cursor.addresses._counter,
                    "streams": cursor.streams.state_dict(),
                    "years": [eb.year for eb in era_blocks],
                    "blocks": [_encode_block(eb.block) for eb in era_blocks],
                },
            )
        if abort:
            raise SimulationInterrupted(
                f"aborted after {processed} era blocks "
                f"(checkpoint at {checkpoint.path})"
            )
    return era_blocks


def split_by_switch(
    era_blocks: Sequence[EraBlock], switch_year: float = NORM_SWITCH_YEAR
) -> tuple[list[Block], list[Block]]:
    """(pre-switch blocks, post-switch blocks)."""
    pre = [eb.block for eb in era_blocks if eb.year < switch_year]
    post = [eb.block for eb in era_blocks if eb.year >= switch_year]
    return pre, post


def halving_heights(max_height: Optional[int] = None) -> list[int]:
    """Heights at which the subsidy halves (for documentation plots)."""
    top = max_height if max_height is not None else 4 * HALVING_INTERVAL
    return list(range(HALVING_INTERVAL, top + 1, HALVING_INTERVAL))
