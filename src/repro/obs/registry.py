"""Process-local metrics: counters, gauges, and timed spans.

The audit pipeline's trustworthiness rests on the fidelity of the
mempool/engine substrate (§4.2 consumes exactly what it emits: arrival
times, fee-rates, commit positions), so the hot paths are threaded with
lightweight instrumentation.  Everything here is zero-dependency and
process-local; tracing is *off* by default and every recording call is
a near-free early return until it is switched on via
``REPRO_AUDIT_TRACE=1``, :func:`enable`, or the ``repro-audit run
--trace`` flag.

Three instrument kinds:

* **counters** — monotone event tallies (``obs.counter("mempool.rbf_replacements")``);
* **gauges** — last-seen values; cross-process merges keep the maximum,
  so peak-style gauges survive aggregation;
* **spans** — ``with obs.span("engine.mine_block"):`` blocks folded into
  (count, total seconds, max seconds) per name.

A registry exports a JSON-ready :func:`snapshot`; :func:`delta` diffs
two snapshots (how a parallel worker reports its contribution) and
:func:`merge` folds a snapshot back into a live registry (how the
battery runner aggregates worker contributions).  :func:`render_report`
turns a snapshot into the text table behind ``repro-audit obs``.
"""

from __future__ import annotations

import os
import time
from typing import Optional

#: Environment switch: set to 1 to start processes with tracing on.
TRACE_ENV = "REPRO_AUDIT_TRACE"

SNAPSHOT_VERSION = 1


class _NullSpan:
    """Shared no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Times one ``with`` block and folds it into its registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "ObsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry._observe_span(
            self._name, time.perf_counter() - self._start
        )
        return False


class ObsRegistry:
    """Mutable store of counters, gauges, and span statistics."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get(TRACE_ENV, "") not in ("", "0")
        self.enabled = bool(enabled)
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total_seconds, max_seconds]
        self._spans: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def counter(self, name: str, value: int = 1) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` only if it exceeds the current value."""
        if not self.enabled:
            return
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def span(self, name: str):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _observe_span(self, name: str, seconds: float) -> None:
        stats = self._spans.get(name)
        if stats is None:
            self._spans[name] = [1, seconds, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds
            if seconds > stats[2]:
                stats[2] = seconds

    # ------------------------------------------------------------------
    # Export / aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of everything recorded so far."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "spans": {
                name: {
                    "count": stats[0],
                    "total_seconds": stats[1],
                    "max_seconds": stats[2],
                }
                for name, stats in sorted(self._spans.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._spans.clear()

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters and span counts/totals add; gauges and span maxima keep
        the larger value.
        """
        for name, value in snap.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            current = self._gauges.get(name)
            if current is None or float(value) > current:
                self._gauges[name] = float(value)
        for name, payload in snap.get("spans", {}).items():
            stats = self._spans.get(name)
            if stats is None:
                self._spans[name] = [
                    int(payload["count"]),
                    float(payload["total_seconds"]),
                    float(payload["max_seconds"]),
                ]
            else:
                stats[0] += int(payload["count"])
                stats[1] += float(payload["total_seconds"])
                if float(payload["max_seconds"]) > stats[2]:
                    stats[2] = float(payload["max_seconds"])


def delta(before: dict, after: dict) -> dict:
    """What was recorded between two snapshots of the same registry.

    Counters and span counts/totals subtract; gauges and span maxima
    report the ``after`` value (a maximum cannot be un-observed).
    Zero-delta names are dropped.
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    spans = {}
    for name, payload in after.get("spans", {}).items():
        prior = before.get("spans", {}).get(
            name, {"count": 0, "total_seconds": 0.0}
        )
        count = payload["count"] - prior["count"]
        if count <= 0:
            continue
        spans[name] = {
            "count": count,
            "total_seconds": payload["total_seconds"] - prior["total_seconds"],
            "max_seconds": payload["max_seconds"],
        }
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: v for k, v in counters.items() if v},
        "gauges": dict(after.get("gauges", {})),
        "spans": spans,
    }


def render_report(snap: dict) -> str:
    """The human-readable metrics/span table behind ``repro-audit obs``."""
    lines = ["repro.obs report", "================"]
    counters = snap.get("counters", {})
    lines.append(f"counters ({len(counters)}):")
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>12}")
    gauges = snap.get("gauges", {})
    lines.append(f"gauges ({len(gauges)}):")
    if gauges:
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:>14g}")
    spans = snap.get("spans", {})
    lines.append(f"spans ({len(spans)}):")
    if spans:
        width = max(len(name) for name in spans)
        lines.append(
            f"  {'name':<{width}}  {'count':>9}  {'total_s':>10}  "
            f"{'mean_ms':>9}  {'max_ms':>9}"
        )
        for name in sorted(spans):
            payload = spans[name]
            count = payload["count"]
            total = payload["total_seconds"]
            mean_ms = 1000.0 * total / count if count else 0.0
            lines.append(
                f"  {name:<{width}}  {count:>9}  {total:>10.3f}  "
                f"{mean_ms:>9.3f}  {1000.0 * payload['max_seconds']:>9.3f}"
            )
    return "\n".join(lines)
