"""Invariant contracts: self-checks on the hot-path state machines.

The audit is only as trustworthy as the substrate's bookkeeping — a
drifting ``total_vsize`` silently skews every congestion bin, and a
confirmed transaction lingering in the pending set corrupts the very
commit positions the PPE/SPPE metrics rank.  This module centralises
the *gate* (``REPRO_AUDIT_CHECK=1``, or :func:`force`, which the test
suite's conftest uses to keep checks always-on under pytest) and the
cross-structure checks that do not belong to a single class.

:meth:`repro.mempool.mempool.Mempool.check_invariants` owns the
mempool's own contract; the engine calls
:func:`check_engine_block_state` at every block boundary.  Violations
raise :class:`InvariantViolation` — a subclass of ``AssertionError``,
because a violated invariant is a programming error, never an input
error.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chain.block import Block

#: Environment switch: set to 1 to run invariant checks in any process.
CHECK_ENV = "REPRO_AUDIT_CHECK"

#: Programmatic override (tests): True/False wins over the environment.
_FORCED: Optional[bool] = None


class InvariantViolation(AssertionError):
    """Internal bookkeeping diverged from recomputed ground truth."""


def invariants_enabled() -> bool:
    """True when state machines should self-check after mutations."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(CHECK_ENV, "") not in ("", "0")


def force(value: Optional[bool]) -> None:
    """Override the environment gate (None restores env behaviour)."""
    global _FORCED
    _FORCED = value


def check_engine_block_state(
    pending: dict,
    pending_spenders: dict,
    committed: dict,
    block: "Block",
) -> None:
    """Engine contract at a block boundary (after committing ``block``).

    * no committed txid may still be pending;
    * every conflict-index entry must point at a pending transaction;
    * nothing the block just committed may survive in the pending set.
    """
    overlap = pending.keys() & committed.keys()
    if overlap:
        sample = sorted(overlap)[:3]
        raise InvariantViolation(
            f"{len(overlap)} committed txid(s) still pending "
            f"(e.g. {', '.join(sample)})"
        )
    for outpoint, txid in pending_spenders.items():
        if txid not in pending:
            raise InvariantViolation(
                f"conflict index maps {outpoint!r} to non-pending tx {txid}"
            )
    for tx in block.transactions:
        if tx.txid in pending:
            raise InvariantViolation(
                f"tx {tx.txid} committed at height {block.height} "
                "but still pending"
            )
