"""repro.obs — observability and self-checks for the substrate.

Two halves, both zero-dependency and off by default:

* **metrics/tracing** (:mod:`repro.obs.registry`): process-local
  counters, gauges, and timed spans threaded through the mempool,
  engine, GBT, runner, and dataset-cache hot paths.  Enabled via
  ``REPRO_AUDIT_TRACE=1`` or ``repro-audit run --trace``; rendered by
  ``repro-audit obs``.
* **invariant checking** (:mod:`repro.obs.invariants`): recompute-and-
  compare contracts on the mempool and engine state machines, enabled
  via ``REPRO_AUDIT_CHECK=1`` and always-on under pytest.

Usage from instrumented modules::

    from .. import obs

    obs.counter("mempool.rbf_replacements")
    with obs.span("engine.mine_block"):
        ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

import os

from .invariants import (
    CHECK_ENV,
    InvariantViolation,
    check_engine_block_state,
    force,
    invariants_enabled,
)
from .registry import (
    SNAPSHOT_VERSION,
    TRACE_ENV,
    ObsRegistry,
    delta,
    render_report,
)

#: The process-wide registry every instrumented module records into.
_REGISTRY = ObsRegistry()


def get_registry() -> ObsRegistry:
    return _REGISTRY


def is_enabled() -> bool:
    return _REGISTRY.enabled


def enable(reset: bool = False) -> None:
    """Turn tracing on (also for child processes, via the environment)."""
    if reset:
        _REGISTRY.reset()
    _REGISTRY.enabled = True
    os.environ[TRACE_ENV] = "1"


def disable() -> None:
    _REGISTRY.enabled = False
    os.environ.pop(TRACE_ENV, None)


@contextmanager
def tracing(reset: bool = False) -> Iterator[ObsRegistry]:
    """Enable tracing for a block, restoring the previous state after."""
    was_enabled = _REGISTRY.enabled
    had_env = os.environ.get(TRACE_ENV)
    enable(reset=reset)
    try:
        yield _REGISTRY
    finally:
        if not was_enabled:
            _REGISTRY.enabled = False
        if had_env is None:
            os.environ.pop(TRACE_ENV, None)
        else:
            os.environ[TRACE_ENV] = had_env


def counter(name: str, value: int = 1) -> None:
    _REGISTRY.counter(name, value)


def gauge(name: str, value: float) -> None:
    _REGISTRY.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    _REGISTRY.gauge_max(name, value)


def span(name: str):
    return _REGISTRY.span(name)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset() -> None:
    _REGISTRY.reset()


def merge(snap: Optional[dict]) -> None:
    if snap:
        _REGISTRY.merge(snap)


__all__ = [
    "CHECK_ENV",
    "InvariantViolation",
    "ObsRegistry",
    "SNAPSHOT_VERSION",
    "TRACE_ENV",
    "check_engine_block_state",
    "counter",
    "delta",
    "disable",
    "enable",
    "force",
    "gauge",
    "gauge_max",
    "get_registry",
    "invariants_enabled",
    "is_enabled",
    "merge",
    "render_report",
    "reset",
    "snapshot",
    "span",
    "tracing",
]
