"""repro — reproduction of Messias et al., "Selfish & Opaque Transaction
Ordering in the Bitcoin Blockchain: The Case for Chain Neutrality"
(ACM IMC 2021).

The package has two halves:

* a Bitcoin measurement *substrate* — chain data model, mempool, P2P
  gossip, mining pools with pluggable (mis)ordering policies, and a
  deterministic simulator that regenerates analogues of the paper's
  datasets A, B and C;
* the paper's *audit toolkit* — PPE/SPPE position metrics, pairwise
  norm-violation detection, binomial differential-prioritization tests,
  and the dark-fee (accelerated transaction) detector.

Quickstart::

    from repro import Auditor, build_dataset_c

    dataset = build_dataset_c(scale=0.1)
    auditor = Auditor(dataset)
    print(auditor.ppe_summary())
    for row in auditor.self_interest_table():
        if row.test.accelerates():
            print(f"{row.target_pool} accelerates {row.owner_pool}")
"""

from .core import (
    Auditor,
    CpfpFilter,
    DetectionReport,
    Norm,
    NormBasedFeeEstimator,
    PrioritizationTestResult,
    ScamRow,
    SelfInterestRow,
    block_ppe,
    chain_ppe,
    detection_sweep,
    prioritization_test,
    sppe,
)
from .datasets import (
    Dataset,
    TxRecord,
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
    load_dataset,
    save_dataset,
)
from .simulation import (
    Scenario,
    dataset_a_scenario,
    dataset_b_scenario,
    dataset_c_scenario,
    honest_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "Auditor",
    "CpfpFilter",
    "DetectionReport",
    "Norm",
    "NormBasedFeeEstimator",
    "PrioritizationTestResult",
    "ScamRow",
    "SelfInterestRow",
    "block_ppe",
    "chain_ppe",
    "detection_sweep",
    "prioritization_test",
    "sppe",
    "Dataset",
    "TxRecord",
    "build_dataset_a",
    "build_dataset_b",
    "build_dataset_c",
    "load_dataset",
    "save_dataset",
    "Scenario",
    "dataset_a_scenario",
    "dataset_b_scenario",
    "dataset_c_scenario",
    "honest_scenario",
    "__version__",
]
