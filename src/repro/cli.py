"""Command-line interface: regenerate the paper's experiments.

Usage::

    repro-audit list
    repro-audit run fig7 table2 --scale 0.1
    repro-audit run everything --scale 0.25 --jobs 4 --out experiments.txt
    repro-audit run fig7 --scale 0.1 --trace --trace-out obs_metrics.json
    repro-audit obs obs_metrics.json
    repro-audit bench --scale 0.2 --jobs 4 --out BENCH_runner.json
    repro-audit dataset C --scale 0.1 --out dataset_c.json.gz
    repro-audit faults --scale 0.05 --loss 0 0.05 0.5 --downtime 0 0.25

Datasets are simulated once and cached under ``--cache-dir`` (default
``~/.cache/repro-audit``); warm runs load them from disk instead of
re-simulating.  ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.base import DEFAULT_SCALE
from .analysis.experiments import ALL_RUNNERS, EXPERIMENTS, EXTENSIONS
from .datasets.builder import build_dataset_a, build_dataset_b, build_dataset_c
from .datasets.cache import DEFAULT_CACHE_DIR
from .datasets.io import save_dataset


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description=(
            "Reproduce the tables and figures of 'Selfish & Opaque "
            "Transaction Ordering in the Bitcoin Blockchain' (IMC 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, 'all' (paper artefacts) or "
        "'everything' (artefacts + extensions/ablations)",
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"simulation scale (default {DEFAULT_SCALE})",
    )
    run_parser.add_argument(
        "--out", type=str, default=None, help="also write the report to a file"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; experiments fan out over a pool when >1 "
        "(the report stays byte-identical to a sequential run)",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help="enable repro.obs tracing: record substrate metrics/spans "
        "(mempool, engine, GBT, runner, cache) and export them as JSON; "
        "the experiment report itself is byte-identical to an untraced run",
    )
    run_parser.add_argument(
        "--trace-out",
        type=str,
        default="obs_metrics.json",
        help="where --trace writes the metrics snapshot "
        "(default obs_metrics.json; render it with 'repro-audit obs')",
    )
    _add_cache_arguments(run_parser)

    obs_parser = sub.add_parser(
        "obs",
        help="render a metrics/span report from a --trace export",
        description=(
            "Render the counters, gauges, and span timings recorded by "
            "'repro-audit run --trace' (an obs_metrics.json file) as a "
            "readable report."
        ),
    )
    obs_parser.add_argument("path", help="metrics JSON written by run --trace")

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark cold/warm x sequential/parallel experiment runs",
        description=(
            "Time the experiment battery over the cold/warm x "
            "sequential/parallel grid on fresh cache directories and "
            "write the measurements as JSON (BENCH_runner.json)."
        ),
    )
    bench_parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids, 'all' (paper artefacts, the default) or "
        "'everything' (artefacts + extensions/ablations)",
    )
    bench_parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="simulation scale for the benchmark (default 0.2, the "
        "smallest scale at which every paper-battery shape check passes)",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the parallel cells"
    )
    bench_parser.add_argument(
        "--out",
        type=str,
        default="BENCH_runner.json",
        help="where to write the JSON measurements",
    )
    bench_parser.add_argument(
        "--suite",
        choices=["runner", "metrics", "full"],
        default="runner",
        help="'runner' times the experiment battery grid, 'metrics' the "
        "scalar-vs-vectorized audit kernels, 'full' both",
    )
    bench_parser.add_argument(
        "--metrics-scale",
        type=float,
        default=0.3,
        help="dataset scale for the metrics suite (default 0.3)",
    )

    dataset_parser = sub.add_parser(
        "dataset", help="build a dataset analogue and save it to disk"
    )
    dataset_parser.add_argument("which", choices=["A", "B", "C"])
    dataset_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    dataset_parser.add_argument("--out", type=str, required=True)
    dataset_parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also export flat CSV tables into this directory",
    )

    faults_parser = sub.add_parser(
        "faults",
        help="sweep audit detection power under measurement faults",
        description=(
            "Sweep the prioritization test's detection power over a "
            "transaction-loss x observer-downtime grid and report the "
            "power cliff (power-under-faults experiment)."
        ),
    )
    faults_parser.add_argument(
        "--scale", type=float, default=None, help="simulation scale"
    )
    faults_parser.add_argument(
        "--loss",
        type=float,
        nargs="+",
        default=None,
        help="transaction loss rates to probe (default: built-in grid)",
    )
    faults_parser.add_argument(
        "--downtime",
        type=float,
        nargs="+",
        default=None,
        help="observer downtime fractions to probe",
    )
    faults_parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="simulation seeds (one clean run each)",
    )
    faults_parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="independent fault seeds per grid cell",
    )
    faults_parser.add_argument(
        "--alpha", type=float, default=None, help="test size (default 0.01)"
    )
    faults_parser.add_argument(
        "--out", type=str, default=None, help="also write the report to a file"
    )
    return parser


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=str(DEFAULT_CACHE_DIR),
        help=f"persistent dataset cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate datasets; never touch the disk cache",
    )


def _resolve_ids(requested: Sequence[str]) -> Optional[list[str]]:
    ids = list(requested)
    if ids == ["all"]:
        return list(EXPERIMENTS)
    if ids == ["everything"]:
        return list(ALL_RUNNERS)
    unknown = [eid for eid in ids if eid not in ALL_RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_RUNNERS)}", file=sys.stderr)
        return None
    return ids


def _run_command(args: argparse.Namespace) -> int:
    from .analysis.runner import run_battery

    ids = _resolve_ids(args.experiments)
    if ids is None:
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    if args.trace:
        from . import obs

        with obs.tracing(reset=True):
            battery = run_battery(
                ids, scale=args.scale, jobs=args.jobs, cache_dir=cache_dir
            )
            trace_snapshot = obs.snapshot()
    else:
        battery = run_battery(
            ids, scale=args.scale, jobs=args.jobs, cache_dir=cache_dir
        )
        trace_snapshot = None
    report = battery.report()
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.out}")
    print("\n" + battery.timing_table())
    if cache_dir is not None:
        print(f"dataset cache [{cache_dir}]: {battery.cache_stats().summary()}")
    if trace_snapshot is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace_snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"trace metrics written to {args.trace_out} "
            f"({len(trace_snapshot['counters'])} counters, "
            f"{len(trace_snapshot['spans'])} spans); "
            f"render with: repro-audit obs {args.trace_out}"
        )
    raised = battery.failed()
    if raised:
        print(
            f"\n{len(raised)} experiment(s) raised: "
            + ", ".join(o.experiment_id for o in raised),
            file=sys.stderr,
        )
    failing = battery.failing_checks()
    if failing:
        print(
            f"\n{len(failing)} experiment(s) had failing shape checks: "
            + ", ".join(o.experiment_id for o in failing),
            file=sys.stderr,
        )
    return 1 if (raised or failing) else 0


def _bench_command(args: argparse.Namespace) -> int:
    from .analysis.runner import run_bench, run_metrics_bench

    exit_code = 0
    if args.suite in ("runner", "full"):
        ids = _resolve_ids(args.experiments)
        if ids is None:
            return 2
        document = run_bench(ids, scale=args.scale, jobs=args.jobs)
    else:
        document = {"benchmark": "metrics-only"}
    if args.suite in ("metrics", "full"):
        metrics = run_metrics_bench(scale=args.metrics_scale)
        document["metrics"] = metrics
        if not metrics["all_identical"]:
            print(
                "FAIL: vectorized metrics differ from the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
        if not metrics["vectorized_never_slower"]:
            print(
                "FAIL: vectorized path slower than the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
    text = json.dumps(document, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(text)
    print(f"\nbenchmark written to {args.out}")
    return exit_code


def _obs_command(args: argparse.Namespace) -> int:
    from .obs import render_report

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            snap = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics from {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(snap, dict) or "counters" not in snap:
        print(
            f"error: {args.path} is not a repro.obs metrics snapshot",
            file=sys.stderr,
        )
        return 2
    print(render_report(snap))
    return 0


def _dataset_command(args: argparse.Namespace) -> int:
    builders = {
        "A": build_dataset_a,
        "B": build_dataset_b,
        "C": build_dataset_c,
    }
    dataset = builders[args.which](scale=args.scale)
    path = save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(f"dataset {args.which} written to {path}")
    print(f"blocks={summary['blocks']} txs={summary['transactions_issued']}")
    if args.csv:
        from .datasets.export import export_csv

        counts = export_csv(dataset, args.csv)
        for name, count in counts.items():
            print(f"  {args.csv}/{name}: {count} rows")
    return 0


def _faults_command(args: argparse.Namespace) -> int:
    from .analysis import ext_faults

    kwargs: dict = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.loss is not None:
        kwargs["loss_grid"] = tuple(args.loss)
    if args.downtime is not None:
        kwargs["downtime_grid"] = tuple(args.downtime)
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    if args.reps is not None:
        kwargs["reps"] = args.reps
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    try:
        sweep = ext_faults.sweep_power_under_faults(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = ext_faults.render_sweep(sweep)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        for experiment_id in EXTENSIONS:
            print(f"{experiment_id}  (extension)")
        return 0
    if args.command == "run":
        return _run_command(args)
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "obs":
        return _obs_command(args)
    if args.command == "dataset":
        return _dataset_command(args)
    if args.command == "faults":
        return _faults_command(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
