"""Command-line interface: regenerate the paper's experiments.

Usage::

    repro-audit list
    repro-audit run fig7 table2 --scale 0.1
    repro-audit run everything --scale 0.25 --jobs 4 --out experiments.txt
    repro-audit run fig7 --scale 0.1 --trace --trace-out obs_metrics.json
    repro-audit obs obs_metrics.json
    repro-audit bench --scale 0.2 --jobs 4 --out BENCH_runner.json
    repro-audit bench --suite datasets --datasets-scale 1.0
    repro-audit dataset C --scale 0.1 --out dataset_c.json.gz --columnar dataset_c.npz
    repro-audit faults --scale 0.05 --loss 0 0.05 0.5 --downtime 0 0.25
    repro-audit adversaries --scale 0.08 --csv detection_matrix.csv
    repro-audit serve --dataset dataset_c.json.gz --wal-dir ./wal --port 8730

Datasets are simulated once and cached under ``--cache-dir`` (default
``~/.cache/repro-audit``); warm runs load them from disk instead of
re-simulating.  ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.base import DEFAULT_SCALE
from .analysis.experiments import ALL_RUNNERS, EXPERIMENTS, EXTENSIONS
from .datasets.builder import build_dataset_a, build_dataset_b, build_dataset_c
from .datasets.cache import DEFAULT_CACHE_DIR
from .datasets.io import atomic_write_text, save_dataset


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description=(
            "Reproduce the tables and figures of 'Selfish & Opaque "
            "Transaction Ordering in the Bitcoin Blockchain' (IMC 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, 'all' (paper artefacts) or "
        "'everything' (artefacts + extensions/ablations)",
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"simulation scale (default {DEFAULT_SCALE})",
    )
    run_parser.add_argument(
        "--out", type=str, default=None, help="also write the report to a file"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; experiments fan out over a pool when >1 "
        "(the report stays byte-identical to a sequential run)",
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment wall-clock limit in seconds; an experiment "
        "exceeding it is killed and its cell marked failed (the rest of "
        "the battery continues, per the failure-isolation contract)",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help="enable repro.obs tracing: record substrate metrics/spans "
        "(mempool, engine, GBT, runner, cache) and export them as JSON; "
        "the experiment report itself is byte-identical to an untraced run",
    )
    run_parser.add_argument(
        "--trace-out",
        type=str,
        default="obs_metrics.json",
        help="where --trace writes the metrics snapshot "
        "(default obs_metrics.json; render it with 'repro-audit obs')",
    )
    _add_cache_arguments(run_parser)

    obs_parser = sub.add_parser(
        "obs",
        help="render a metrics/span report from a --trace export",
        description=(
            "Render the counters, gauges, and span timings recorded by "
            "'repro-audit run --trace' (an obs_metrics.json file) as a "
            "readable report."
        ),
    )
    obs_parser.add_argument("path", help="metrics JSON written by run --trace")

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark cold/warm x sequential/parallel experiment runs",
        description=(
            "Time the experiment battery over the cold/warm x "
            "sequential/parallel grid on fresh cache directories and "
            "write the measurements as JSON (BENCH_runner.json)."
        ),
    )
    bench_parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids, 'all' (paper artefacts, the default) or "
        "'everything' (artefacts + extensions/ablations)",
    )
    bench_parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="simulation scale for the benchmark (default 0.2, the "
        "smallest scale at which every paper-battery shape check passes)",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the parallel cells"
    )
    bench_parser.add_argument(
        "--out",
        type=str,
        default="BENCH_runner.json",
        help="where to write the JSON measurements",
    )
    bench_parser.add_argument(
        "--suite",
        default="runner",
        help="comma-separated subset of {runner, metrics, service, "
        "engine, adversaries, datasets}, or 'full' for all of them: "
        "'runner' times the experiment battery grid, 'metrics' the "
        "scalar-vs-vectorized audit kernels, 'service' the streaming "
        "audit service query storm, 'engine' the scalar-vs-vectorized "
        "block-production loop, 'adversaries' the ordering-attack zoo "
        "on both substrates plus the detection-matrix sweep, 'datasets' "
        "the columnar-store grid (sharded cold builds, warm mmap loads, "
        "interchange byte-identity, zero-copy ChainArrays packing)",
    )
    bench_parser.add_argument(
        "--metrics-scale",
        type=float,
        default=0.3,
        help="dataset scale for the metrics suite (default 0.3)",
    )
    bench_parser.add_argument(
        "--engine-scale",
        type=float,
        default=0.3,
        help="dataset scale for the engine suite (default 0.3, where "
        "the dataset-C speedup gate applies; smaller scales only check "
        "byte identity)",
    )
    bench_parser.add_argument(
        "--service-scale",
        type=float,
        default=0.2,
        help="dataset scale for the service query-storm cell (default 0.2)",
    )
    bench_parser.add_argument(
        "--adversaries-scale",
        type=float,
        default=0.08,
        help="dataset scale for the adversary-zoo suite (default 0.08, "
        "the detection-matrix sweep scale)",
    )
    bench_parser.add_argument(
        "--datasets-scale",
        type=float,
        default=1.0,
        help="dataset scale for the datasets suite (default 1.0: the "
        "full-size A/B/C battery the columnar contract is stated at)",
    )
    bench_parser.add_argument(
        "--datasets-jobs",
        type=int,
        default=4,
        help="shard workers for the datasets suite's cold builds "
        "(default 4)",
    )

    dataset_parser = sub.add_parser(
        "dataset", help="build a dataset analogue and save it to disk"
    )
    dataset_parser.add_argument("which", choices=["A", "B", "C"])
    dataset_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    dataset_parser.add_argument("--out", type=str, required=True)
    dataset_parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also export flat CSV tables into this directory",
    )
    dataset_parser.add_argument(
        "--columnar",
        type=str,
        default=None,
        help="also export the columnar npz (memory-mappable; loads "
        "zero-copy into the vectorized audit kernels) to this path",
    )

    faults_parser = sub.add_parser(
        "faults",
        help="sweep audit detection power under measurement faults",
        description=(
            "Sweep the prioritization test's detection power over a "
            "transaction-loss x observer-downtime grid and report the "
            "power cliff (power-under-faults experiment)."
        ),
    )
    faults_parser.add_argument(
        "--scale", type=float, default=None, help="simulation scale"
    )
    faults_parser.add_argument(
        "--loss",
        type=float,
        nargs="+",
        default=None,
        help="transaction loss rates to probe (default: built-in grid)",
    )
    faults_parser.add_argument(
        "--downtime",
        type=float,
        nargs="+",
        default=None,
        help="observer downtime fractions to probe",
    )
    faults_parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="simulation seeds (one clean run each)",
    )
    faults_parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="independent fault seeds per grid cell",
    )
    faults_parser.add_argument(
        "--alpha", type=float, default=None, help="test size (default 0.01)"
    )
    faults_parser.add_argument(
        "--out", type=str, default=None, help="also write the report to a file"
    )

    adversaries_parser = sub.add_parser(
        "adversaries",
        help="score the audit toolbox against the ordering-attack zoo",
        description=(
            "Run every adversary-zoo lineup (FIFO/bucketed builders, "
            "call auction, MEV sandwich, censorship-for-rent, selfish "
            "mining, maximal self-interest) across seeds x intensities "
            "and print the adversary x test detection matrix: power per "
            "adversarial cell, false-positive rate on the honest row, "
            "at a fixed alpha.  Exits non-zero if the honest row's "
            "false-positive rate exceeds alpha anywhere."
        ),
    )
    adversaries_parser.add_argument(
        "--scale", type=float, default=None, help="simulation scale"
    )
    adversaries_parser.add_argument(
        "--kinds",
        type=str,
        nargs="+",
        default=None,
        help="adversary kinds to score (default: the whole zoo)",
    )
    adversaries_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, help="simulation seeds"
    )
    adversaries_parser.add_argument(
        "--intensities",
        type=float,
        nargs="+",
        default=None,
        help="intensity knob settings for kinds that expose one",
    )
    adversaries_parser.add_argument(
        "--alpha", type=float, default=None, help="test size (default 0.01)"
    )
    adversaries_parser.add_argument(
        "--pool", type=str, default=None, help="the pool playing the adversary"
    )
    adversaries_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; sweep cells shard over a pool when >1 "
        "(the matrix stays identical to a sequential sweep)",
    )
    adversaries_parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also export the detection matrix as CSV to this path",
    )
    adversaries_parser.add_argument(
        "--out", type=str, default=None, help="also write the report to a file"
    )
    _add_cache_arguments(adversaries_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="run the crash-safe streaming audit service over HTTP",
        description=(
            "Serve the streaming auditor: blocks arrive one at a time via "
            "POST /ingest (write-ahead journalled, so kill -9 resumes to "
            "identical state); answers from /query/tx, /query/pool and "
            "/audit always carry a data-quality annotation."
        ),
    )
    serve_parser.add_argument(
        "--dataset",
        type=str,
        required=True,
        help="saved dataset file (repro-audit dataset …) supplying the "
        "observer context; its chain is ignored — blocks must be ingested",
    )
    serve_parser.add_argument(
        "--wal-dir",
        type=str,
        required=True,
        help="directory for the write-ahead journal and its checkpoints",
    )
    serve_parser.add_argument("--host", type=str, default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    serve_parser.add_argument(
        "--port-file",
        type=str,
        default=None,
        help="atomically write the bound port here (supervisors poll it)",
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded ingest queue depth; a full queue answers 503 with "
        "retry_after instead of dropping blocks (default 64)",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="compact the journal into a checkpoint every N applied "
        "blocks (default 64)",
    )
    serve_parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-append fsync (testing only: trades the machine-"
        "crash guarantee for speed)",
    )
    return parser


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=str(DEFAULT_CACHE_DIR),
        help=f"persistent dataset cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate datasets; never touch the disk cache",
    )


def _resolve_ids(requested: Sequence[str]) -> Optional[list[str]]:
    ids = list(requested)
    if ids == ["all"]:
        return list(EXPERIMENTS)
    if ids == ["everything"]:
        return list(ALL_RUNNERS)
    unknown = [eid for eid in ids if eid not in ALL_RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_RUNNERS)}", file=sys.stderr)
        return None
    return ids


def _run_command(args: argparse.Namespace) -> int:
    from .analysis.runner import run_battery

    ids = _resolve_ids(args.experiments)
    if ids is None:
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    if args.trace:
        from . import obs

        with obs.tracing(reset=True):
            battery = run_battery(
                ids,
                scale=args.scale,
                jobs=args.jobs,
                cache_dir=cache_dir,
                timeout=args.timeout,
            )
            trace_snapshot = obs.snapshot()
    else:
        battery = run_battery(
            ids,
            scale=args.scale,
            jobs=args.jobs,
            cache_dir=cache_dir,
            timeout=args.timeout,
        )
        trace_snapshot = None
    report = battery.report()
    print(report)
    if args.out:
        atomic_write_text(args.out, report + "\n")
        print(f"\nreport written to {args.out}")
    print("\n" + battery.timing_table())
    if cache_dir is not None:
        print(f"dataset cache [{cache_dir}]: {battery.cache_stats().summary()}")
    if trace_snapshot is not None:
        # Atomic like the dataset writers: a crash mid-export must not
        # leave a truncated snapshot behind for 'repro-audit obs'.
        atomic_write_text(
            args.trace_out,
            json.dumps(trace_snapshot, indent=2, sort_keys=True) + "\n",
        )
        print(
            f"trace metrics written to {args.trace_out} "
            f"({len(trace_snapshot['counters'])} counters, "
            f"{len(trace_snapshot['spans'])} spans); "
            f"render with: repro-audit obs {args.trace_out}"
        )
    raised = battery.failed()
    if raised:
        print(
            f"\n{len(raised)} experiment(s) raised: "
            + ", ".join(o.experiment_id for o in raised),
            file=sys.stderr,
        )
    failing = battery.failing_checks()
    if failing:
        print(
            f"\n{len(failing)} experiment(s) had failing shape checks: "
            + ", ".join(o.experiment_id for o in failing),
            file=sys.stderr,
        )
    return 1 if (raised or failing) else 0


def _bench_command(args: argparse.Namespace) -> int:
    from .analysis.runner import (
        run_adversaries_bench,
        run_bench,
        run_engine_bench,
        run_metrics_bench,
    )

    known = {"runner", "metrics", "service", "engine", "adversaries", "datasets"}
    suites = (
        set(known)
        if args.suite == "full"
        else {part.strip() for part in args.suite.split(",") if part.strip()}
    )
    unknown = suites - known
    if unknown or not suites:
        print(
            f"error: unknown bench suite(s) {sorted(unknown)}; "
            f"pick from {sorted(known)} or 'full'",
            file=sys.stderr,
        )
        return 2

    exit_code = 0
    if "runner" in suites:
        ids = _resolve_ids(args.experiments)
        if ids is None:
            return 2
        document = run_bench(ids, scale=args.scale, jobs=args.jobs)
    else:
        document = {"benchmark": "+".join(sorted(suites)) + "-only"}
    if "metrics" in suites:
        metrics = run_metrics_bench(scale=args.metrics_scale)
        document["metrics"] = metrics
        if not metrics["all_identical"]:
            print(
                "FAIL: vectorized metrics differ from the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
        if not metrics["vectorized_never_slower"]:
            print(
                "FAIL: vectorized path slower than the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
    if "engine" in suites:
        engine = run_engine_bench(scale=args.engine_scale)
        document["engine"] = engine
        if not engine["all_identical"]:
            print(
                "FAIL: fast engine datasets differ from the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
        if not engine["all_fast_path_engaged"]:
            print(
                "FAIL: the fast engine path fell back to the scalar loop",
                file=sys.stderr,
            )
            exit_code = 1
        if not engine["speedup_ok"]:
            print(
                "FAIL: fast engine below the dataset-C speedup gate "
                f"({engine['cells']['dataset-C']['speedup']}x < "
                f"{engine['gate']['min_speedup']}x)",
                file=sys.stderr,
            )
            exit_code = 1
    if "adversaries" in suites:
        adversaries = run_adversaries_bench(scale=args.adversaries_scale)
        document["adversaries"] = adversaries
        if not adversaries["all_identical"]:
            print(
                "FAIL: adversary-zoo datasets differ between the fast "
                "engine and the scalar oracle",
                file=sys.stderr,
            )
            exit_code = 1
        if not adversaries["fallback_exercised"]:
            print(
                "FAIL: a zoo template policy was compiled instead of "
                "exercising the fallback path",
                file=sys.stderr,
            )
            exit_code = 1
        if not adversaries["honest_fpr_ok"]:
            print(
                "FAIL: honest-lineup false-positive rate exceeds alpha",
                file=sys.stderr,
            )
            exit_code = 1
    if "datasets" in suites:
        from .analysis.runner import run_datasets_bench

        datasets = run_datasets_bench(
            scale=args.datasets_scale, jobs=args.datasets_jobs
        )
        document["datasets"] = datasets
        gates = datasets["gates"]
        if not gates["byte_identical"]:
            print(
                "FAIL: columnar interchange bytes differ from gzip-JSON",
                file=sys.stderr,
            )
            exit_code = 1
        if not gates["mmap_engaged"]:
            print(
                "FAIL: ChainArrays fell back to the object-graph pack "
                "on a columnar-backed dataset",
                file=sys.stderr,
            )
            exit_code = 1
        if not gates["battery_ok"]:
            print(
                "FAIL: the experiment battery raised on columnar-cached "
                "datasets",
                file=sys.stderr,
            )
            exit_code = 1
    if "service" in suites:
        from .service.bench import run_service_bench

        document["service"] = run_service_bench(scale=args.service_scale)
    text = json.dumps(document, indent=2, sort_keys=True)
    atomic_write_text(args.out, text + "\n")
    print(text)
    print(f"\nbenchmark written to {args.out}")
    return exit_code


def _obs_command(args: argparse.Namespace) -> int:
    from .obs import render_report

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            snap = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics from {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(snap, dict) or "counters" not in snap:
        print(
            f"error: {args.path} is not a repro.obs metrics snapshot",
            file=sys.stderr,
        )
        return 2
    print(render_report(snap))
    return 0


def _dataset_command(args: argparse.Namespace) -> int:
    builders = {
        "A": build_dataset_a,
        "B": build_dataset_b,
        "C": build_dataset_c,
    }
    dataset = builders[args.which](scale=args.scale)
    path = save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(f"dataset {args.which} written to {path}")
    print(f"blocks={summary['blocks']} txs={summary['transactions_issued']}")
    if args.csv:
        from .datasets.export import export_csv

        counts = export_csv(dataset, args.csv)
        for name, count in counts.items():
            print(f"  {args.csv}/{name}: {count} rows")
    if args.columnar:
        from .datasets.export import export_columnar

        columnar_path = export_columnar(dataset, args.columnar)
        print(
            f"columnar store written to {columnar_path} "
            f"({columnar_path.stat().st_size} bytes)"
        )
    return 0


def _faults_command(args: argparse.Namespace) -> int:
    from .analysis import ext_faults

    kwargs: dict = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.loss is not None:
        kwargs["loss_grid"] = tuple(args.loss)
    if args.downtime is not None:
        kwargs["downtime_grid"] = tuple(args.downtime)
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    if args.reps is not None:
        kwargs["reps"] = args.reps
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    try:
        sweep = ext_faults.sweep_power_under_faults(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = ext_faults.render_sweep(sweep)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def _adversaries_command(args: argparse.Namespace) -> int:
    from .analysis import ext_adversaries
    from .datasets.cache import DatasetCache

    kwargs: dict = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.kinds is not None:
        kwargs["kinds"] = tuple(args.kinds)
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    if args.intensities is not None:
        kwargs["intensities"] = tuple(args.intensities)
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    if args.pool is not None:
        kwargs["target_pool"] = args.pool
    if args.jobs is not None and args.jobs > 1:
        kwargs["jobs"] = args.jobs
    if not args.no_cache:
        kwargs["cache"] = DatasetCache(args.cache_dir)
    try:
        matrix = ext_adversaries.sweep_detection_matrix(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = ext_adversaries.render_matrix(matrix)
    print(report)
    if args.csv:
        atomic_write_text(args.csv, matrix.to_csv())
        print(f"\ndetection matrix CSV written to {args.csv}")
    if args.out:
        atomic_write_text(args.out, report + "\n")
        print(f"report written to {args.out}")
    loud = [
        cell
        for cell in matrix.row("honest")
        if cell.rate > matrix.alpha
    ]
    if loud:
        print(
            "\nFAIL: honest-lineup false-positive rate exceeds "
            f"alpha={matrix.alpha:g} for: "
            + ", ".join(f"{c.test}={c.rate:.3f}" for c in loud),
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    from .service.server import AuditService, make_http_server

    try:
        service = AuditService.from_dataset_file(
            args.dataset,
            wal_dir=args.wal_dir,
            queue_size=args.queue_size,
            checkpoint_every=args.checkpoint_every,
            fsync=not args.no_fsync,
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot load dataset {args.dataset}: {exc}", file=sys.stderr)
        return 2
    server = make_http_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    if args.port_file:
        atomic_write_text(args.port_file, f"{port}\n")
    replayed = service.recover()
    print(
        f"serving audit of {args.dataset} on http://{host}:{port} "
        f"(recovered {replayed} journalled blocks, "
        f"applied height {service.applied_height})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        for experiment_id in EXTENSIONS:
            print(f"{experiment_id}  (extension)")
        return 0
    if args.command == "run":
        return _run_command(args)
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "obs":
        return _obs_command(args)
    if args.command == "dataset":
        return _dataset_command(args)
    if args.command == "faults":
        return _faults_command(args)
    if args.command == "adversaries":
        return _adversaries_command(args)
    if args.command == "serve":
        return _serve_command(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
