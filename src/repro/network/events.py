"""A deterministic discrete-event scheduler.

Everything in the simulator — transaction broadcasts, gossip hops, block
discoveries, snapshot timers — is an event on this single queue.  Events
with equal timestamps fire in insertion order, which makes simulation
runs bit-for-bit reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

#: An event handler receives the scheduler so it can schedule follow-ups.
Handler = Callable[["EventScheduler"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    handler: Handler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already has)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventScheduler:
    """Min-heap event loop with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, handler: Handler) -> EventHandle:
        """Enqueue ``handler`` to fire at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = _ScheduledEvent(time=time, sequence=next(self._sequence), handler=handler)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, handler: Handler) -> EventHandle:
        """Enqueue ``handler`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, handler)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  False when drained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.handler(self)
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; return the count executed.

        The clock is advanced to ``end_time`` afterwards even if the
        queue drained earlier, so periodic observers see a full window.
        """
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                return executed
        self._now = max(self._now, end_time)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue entirely (or up to ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
