"""P2P network assembly and gossip-flooding.

The network wires :class:`FullNode` objects into a random topology
(using networkx for generation, honouring per-node peer limits) and
floods transactions and blocks along edges with per-hop latency drawn
from a :class:`~repro.network.latency.LatencyModel`.  Flooding is
duplicate-suppressed by each node's inventory sets, so every broadcast
costs O(edges) events.

This evented network is the *reference* substrate — it is exercised
directly by tests and examples.  Large scenario runs use the vectorised
fast path in :mod:`repro.simulation.engine`, which reproduces the same
observable skews at a fraction of the cost; an integration test checks
the two agree on small inputs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import networkx as nx
import numpy as np

from ..chain.block import Block
from ..chain.transaction import Transaction
from .events import EventScheduler
from .latency import BlockRelayLatency, LatencyModel, LogNormalLatency
from .node import FullNode

#: Fault hook: (kind, sender, receiver, ident, now) -> True to drop the
#: delivery.  ``kind`` is "tx" or "block", ``ident`` the txid/hash.
DropFilter = Callable[[str, str, str, str, float], bool]


class P2PNetwork:
    """A set of interconnected full nodes with gossip semantics."""

    def __init__(
        self,
        nodes: Sequence[FullNode],
        rng: np.random.Generator,
        tx_latency: Optional[LatencyModel] = None,
        block_latency: Optional[LatencyModel] = None,
    ) -> None:
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.nodes = list(nodes)
        self._by_name = {node.name: node for node in nodes}
        self._rng = rng
        self._tx_latency = tx_latency or LogNormalLatency()
        self._block_latency = block_latency or BlockRelayLatency()
        self._drop_filter: Optional[DropFilter] = None

    def node(self, name: str) -> FullNode:
        return self._by_name[name]

    def set_drop_filter(self, drop_filter: Optional[DropFilter]) -> None:
        """Install a per-hop fault hook consulted before each delivery.

        The filter sees ``(kind, sender, receiver, ident, now)`` and
        returns True to silently drop that single hop — modelling lossy
        links, eclipse attacks and partitions without touching node
        logic.  Gossip redundancy means a dropped hop is usually healed
        by another path; a partition mask that drops *every* hop into a
        node set is not.
        """
        self._drop_filter = drop_filter

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect_random(self, target_degree: int = 8) -> None:
        """Wire nodes into a random graph of roughly ``target_degree``.

        Uses a Watts-Strogatz-style construction via networkx and then
        applies the links subject to each node's ``max_peers``, matching
        how real nodes cap outbound plus inbound connections.
        """
        count = len(self.nodes)
        if count < 2:
            return
        if target_degree < 1 or target_degree >= count:
            raise ValueError(
                f"target_degree must be between 1 and {count - 1} "
                f"(one less than the node count), got {target_degree}"
            )
        degree = target_degree
        if degree % 2 == 1:
            degree = max(degree - 1, 2) if count > 2 else 1
        if count <= 3 or degree < 2:
            graph = nx.complete_graph(count)
        else:
            seed = int(self._rng.integers(0, 2**31 - 1))
            graph = nx.connected_watts_strogatz_graph(count, degree, p=0.3, seed=seed)
        for left, right in graph.edges():
            self.nodes[left].connect(self.nodes[right])
        self._ensure_connected()

    def _ensure_connected(self) -> None:
        """Link any isolated components so gossip always reaches everyone."""
        graph = self.graph()
        components = list(nx.connected_components(graph))
        for component in components[1:]:
            anchor = self._by_name[next(iter(components[0]))]
            other = self._by_name[next(iter(component))]
            anchor.peers.append(other)
            other.peers.append(anchor)

    def graph(self) -> nx.Graph:
        """The current topology as a networkx graph over node names."""
        graph = nx.Graph()
        graph.add_nodes_from(node.name for node in self.nodes)
        for node in self.nodes:
            for peer in node.peers:
                graph.add_edge(node.name, peer.name)
        return graph

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def broadcast_transaction(
        self, tx: Transaction, origin: FullNode, scheduler: EventScheduler
    ) -> None:
        """Inject ``tx`` at ``origin`` now and flood it to all peers."""
        if origin.accept_transaction(tx, scheduler.now):
            self._relay_tx(tx, origin, scheduler)

    def _relay_tx(self, tx: Transaction, sender: FullNode, scheduler: EventScheduler) -> None:
        for peer in sender.peers:
            if peer.has_seen_tx(tx.txid):
                continue
            delay = self._tx_latency.delay(self._rng)

            def deliver(sched: EventScheduler, peer: FullNode = peer, sender: FullNode = sender) -> None:
                if self._drop_filter is not None and self._drop_filter(
                    "tx", sender.name, peer.name, tx.txid, sched.now
                ):
                    return
                if peer.accept_transaction(tx, sched.now):
                    self._relay_tx(tx, peer, sched)

            scheduler.schedule_in(delay, deliver)

    def broadcast_block(
        self, block: Block, origin: FullNode, scheduler: EventScheduler
    ) -> None:
        """Announce a freshly mined block from ``origin``."""
        if origin.accept_block(block, scheduler.now):
            self._relay_block(block, origin, scheduler)

    def _relay_block(
        self, block: Block, sender: FullNode, scheduler: EventScheduler
    ) -> None:
        for peer in sender.peers:
            delay = self._block_latency.delay(self._rng)

            def deliver(sched: EventScheduler, peer: FullNode = peer, sender: FullNode = sender) -> None:
                if self._drop_filter is not None and self._drop_filter(
                    "block", sender.name, peer.name, block.block_hash, sched.now
                ):
                    return
                if peer.accept_block(block, sched.now):
                    self._relay_block(block, peer, sched)

            scheduler.schedule_in(delay, deliver)

    # ------------------------------------------------------------------
    # Observation helpers
    # ------------------------------------------------------------------
    def schedule_snapshots(
        self, scheduler: EventScheduler, end_time: float
    ) -> None:
        """Drive every observer node's snapshot timer until ``end_time``."""
        observers = [node for node in self.nodes if node.config.observer]

        def tick(sched: EventScheduler) -> None:
            for node in observers:
                node.maybe_snapshot(sched.now)
            if sched.now < end_time and observers:
                sched.schedule_in(observers[0].config.snapshot_interval, tick)

        if observers:
            scheduler.schedule(scheduler.now, tick)


def build_network(
    nodes: Iterable[FullNode],
    rng: np.random.Generator,
    target_degree: int = 8,
    tx_latency: Optional[LatencyModel] = None,
    block_latency: Optional[LatencyModel] = None,
) -> P2PNetwork:
    """Create a connected network over ``nodes``."""
    network = P2PNetwork(
        list(nodes), rng, tx_latency=tx_latency, block_latency=block_latency
    )
    network.connect_random(target_degree)
    return network
