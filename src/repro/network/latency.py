"""Propagation-delay models for transaction and block gossip.

Propagation delay is what makes different nodes see the same transaction
at different times — the reason the paper's violation test tightens its
time constraint with an ε of 10 seconds or 10 minutes (§4.2.1).  The
models here are deliberately simple: per-hop delays drawn from a
long-tailed distribution calibrated to published Bitcoin propagation
measurements (median tx propagation on the order of seconds, with a tail
of slow peers reaching tens of seconds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class LatencyModel:
    """Interface: draw a per-hop delay in seconds."""

    def delay(self, rng: np.random.Generator) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every hop takes exactly ``seconds`` — useful in tests."""

    seconds: float = 0.5

    def delay(self, rng: np.random.Generator) -> float:
        return self.seconds


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal per-hop delay, the standard P2P gossip model.

    Defaults give a median of ~0.4 s and a 99th percentile of a few
    seconds per hop; across 2-4 gossip hops this yields the several-
    second network-wide spread observed in Bitcoin.
    """

    median_seconds: float = 0.4
    sigma: float = 0.9
    max_seconds: float = 60.0

    def delay(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(mean=np.log(self.median_seconds), sigma=self.sigma))
        return min(value, self.max_seconds)


@dataclass(frozen=True)
class SlowPeerLatency(LatencyModel):
    """Mostly fast hops with an occasional very slow peer.

    With probability ``slow_probability`` the hop behaves like a stalled
    or distant peer, adding ``slow_extra_seconds`` on top of the base
    delay.  This produces the rare large observer-vs-miner skews that
    survive even the paper's 10-second ε.
    """

    base: LatencyModel = LogNormalLatency()
    slow_probability: float = 0.01
    slow_extra_seconds: float = 30.0

    def delay(self, rng: np.random.Generator) -> float:
        delay = self.base.delay(rng)
        if rng.random() < self.slow_probability:
            delay += float(rng.exponential(self.slow_extra_seconds))
        return delay


@dataclass(frozen=True)
class BlockRelayLatency(LatencyModel):
    """Block propagation: faster than tx gossip thanks to compact blocks."""

    median_seconds: float = 0.3
    sigma: float = 0.6
    max_seconds: float = 20.0

    def delay(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(mean=np.log(self.median_seconds), sigma=self.sigma))
        return min(value, self.max_seconds)
