"""P2P substrate: event scheduling, latency, nodes, gossip."""

from .events import EventHandle, EventScheduler
from .latency import (
    BlockRelayLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    SlowPeerLatency,
)
from .node import FullNode, NodeConfig, make_observer
from .p2p import P2PNetwork, build_network

__all__ = [
    "EventHandle",
    "EventScheduler",
    "BlockRelayLatency",
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "SlowPeerLatency",
    "FullNode",
    "NodeConfig",
    "make_observer",
    "P2PNetwork",
    "build_network",
]
