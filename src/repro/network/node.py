"""Full nodes: relay, mempool maintenance, and observation.

A :class:`FullNode` mirrors the roles the paper's measurement nodes
play: it admits transactions subject to its configured minimum fee-rate
(dataset A's node kept the 1 sat/vB default, dataset B's node accepted
everything), relays them to peers, removes transactions committed by
blocks it learns about, and — in observer mode — records 15-second
mempool snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from .. import obs
from ..chain.block import Block
from ..chain.constants import DEFAULT_MIN_RELAY_FEE_RATE
from ..chain.transaction import Transaction
from ..mempool.mempool import Mempool
from ..mempool.snapshots import SnapshotRecorder, SnapshotStore


@dataclass
class NodeConfig:
    """Configuration knobs the paper varies between its two nodes."""

    name: str
    max_peers: int = 8
    min_fee_rate: float = DEFAULT_MIN_RELAY_FEE_RATE
    observer: bool = False
    snapshot_interval: float = 15.0


class FullNode:
    """A Bitcoin node participating in gossip.

    The node tracks which transactions and blocks it has already seen so
    flooding terminates, exactly like the inventory sets in the real
    protocol.
    """

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.mempool = Mempool(min_fee_rate=config.min_fee_rate)
        self.peers: list["FullNode"] = []
        self._seen_txids: set[str] = set()
        self._seen_blocks: set[str] = set()
        self._recorder: Optional[SnapshotRecorder] = (
            SnapshotRecorder(config.snapshot_interval) if config.observer else None
        )
        self.blocks_seen = 0
        #: First admission time per txid — survives mempool removal, so
        #: measurement pipelines can join arrivals with commits.
        self.arrival_log: dict[str, float] = {}
        # Fault profile: [start, end) windows the node is offline, plus
        # crash instants after which it restarts with a wiped mempool.
        self._offline_windows: Tuple[Tuple[float, float], ...] = ()
        self._pending_crashes: list[float] = []
        self.crash_count = 0

    # ------------------------------------------------------------------
    # Fault profile
    # ------------------------------------------------------------------
    def set_fault_profile(
        self,
        offline_windows: Iterable[Tuple[float, float]] = (),
        crash_times: Sequence[float] = (),
    ) -> None:
        """Install downtime windows and crash/restart times.

        While offline the node neither receives gossip nor records
        snapshots — deliveries simply never arrive.  A crash wipes the
        mempool and inventory sets (a restarted node resyncs from its
        peers' *future* gossip; what it held in memory is gone), but
        keeps ``arrival_log``, which models the on-disk measurement log.
        """
        self._offline_windows = tuple(
            (float(start), float(end)) for start, end in offline_windows
        )
        self._pending_crashes = sorted(float(t) for t in crash_times)

    def is_offline(self, now: float) -> bool:
        """True while ``now`` falls inside an offline window."""
        return any(start <= now < end for start, end in self._offline_windows)

    def _service_crashes(self, now: float) -> None:
        while self._pending_crashes and self._pending_crashes[0] <= now:
            self._pending_crashes.pop(0)
            self.mempool.clear()
            self._seen_txids.clear()
            self._seen_blocks.clear()
            self.crash_count += 1
            obs.counter("node.crashes")

    @property
    def name(self) -> str:
        return self.config.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FullNode({self.name!r}, peers={len(self.peers)})"

    # ------------------------------------------------------------------
    # Peering
    # ------------------------------------------------------------------
    def connect(self, peer: "FullNode") -> bool:
        """Create a bidirectional link if both sides have capacity."""
        if peer is self or peer in self.peers:
            return False
        if len(self.peers) >= self.config.max_peers:
            return False
        if len(peer.peers) >= peer.config.max_peers:
            return False
        self.peers.append(peer)
        peer.peers.append(self)
        return True

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def accept_transaction(self, tx: Transaction, now: float) -> bool:
        """Handle a transaction announcement.

        Returns True when the transaction is new to this node *and*
        passed admission — i.e. when it should be relayed onward.  A
        transaction below the node's fee-rate threshold is dropped and
        not relayed, which is how norm III propagates through the
        network: low-fee transactions simply never reach most miners.
        """
        self._service_crashes(now)
        if self.is_offline(now):
            return False
        if tx.txid in self._seen_txids:
            return False
        self._seen_txids.add(tx.txid)
        result = self.mempool.offer(tx, now)
        if result.accepted:
            self.arrival_log.setdefault(tx.txid, now)
            obs.counter("node.tx.accepted")
        else:
            obs.counter("node.tx.rejected")
        return result.accepted

    def accept_block(self, block: Block, now: float) -> bool:
        """Handle a block announcement; True if new (relay onward)."""
        self._service_crashes(now)
        if self.is_offline(now):
            return False
        if block.block_hash in self._seen_blocks:
            return False
        self._seen_blocks.add(block.block_hash)
        self.blocks_seen += 1
        obs.counter("node.blocks.accepted")
        self.mempool.remove_confirmed(tx.txid for tx in block.transactions)
        return True

    def has_seen_tx(self, txid: str) -> bool:
        return txid in self._seen_txids

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def maybe_snapshot(self, now: float) -> bool:
        """Record a snapshot if this node observes and one is due."""
        if self._recorder is None:
            return False
        self._service_crashes(now)
        if self.is_offline(now):
            return False
        if not self._recorder.due(now):
            return False
        self._recorder.capture(self.mempool, now)
        obs.counter("node.snapshots.recorded")
        return True

    def snapshot_store(self) -> SnapshotStore:
        """All snapshots recorded so far (observer nodes only)."""
        if self._recorder is None:
            raise ValueError(f"node {self.name} is not an observer")
        return self._recorder.store()


def make_observer(
    name: str,
    min_fee_rate: float = DEFAULT_MIN_RELAY_FEE_RATE,
    max_peers: int = 8,
    snapshot_interval: float = 15.0,
) -> FullNode:
    """Convenience constructor for a measurement node.

    ``make_observer("A")`` reproduces the paper's dataset-A node
    (8 peers, default threshold); dataset B's node corresponds to
    ``make_observer("B", min_fee_rate=0.0, max_peers=125)``.
    """
    return FullNode(
        NodeConfig(
            name=name,
            max_peers=max_peers,
            min_fee_rate=min_fee_rate,
            observer=True,
            snapshot_interval=snapshot_interval,
        )
    )
