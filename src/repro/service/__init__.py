"""Long-running audit service: streaming accumulators behind HTTP.

The batch pipeline audits a *finished* dataset; this package keeps the
same audits running against a chain that is still growing:

* :mod:`repro.service.wal` — a write-ahead journal of applied blocks
  with CRC-framed fsync'd appends, torn-tail recovery, and atomic
  checkpoint compaction, so ``kill -9`` mid-block resumes to
  byte-identical accumulator state;
* :mod:`repro.service.server` — the HTTP facade: bounded ingest queue
  with explicit backpressure (429/503-style reject-with-retry-after,
  never a silent drop), per-request deadlines, health/readiness
  endpoints wired into :mod:`repro.obs`, and quality annotations on
  every answer;
* :mod:`repro.service.client` — an idempotent retry-with-backoff
  client helper used by the chaos harness and the CLI replay;
* :mod:`repro.service.bench` — the query-storm benchmark cell.

The analytical core is :class:`repro.core.audit.StreamingAuditor`; the
service adds only durability and transport.
"""

from .client import AuditClient, ServiceUnavailable
from .server import AuditService, make_http_server
from .wal import BlockJournal, WalCorruptionError

__all__ = [
    "AuditClient",
    "AuditService",
    "BlockJournal",
    "ServiceUnavailable",
    "WalCorruptionError",
    "make_http_server",
]
