"""Write-ahead journal of applied blocks with checkpoint compaction.

Durability contract
-------------------
Every block the service *applies* is first appended to the journal and
fsync'd; only then does it fold into the accumulators.  On restart the
journal is replayed through the same fold path, so recovered state is
byte-identical to the pre-crash state — the fold is deterministic and
the journal preserves application order.

Frame format (little-endian)::

    MAGIC "RAWJ" | u32 version          -- file header, written once
    u32 length | payload | u32 crc32    -- one frame per applied block

The payload is the compact-JSON encoding of ``{"h": height, "p": pool,
"b": block}`` with the block in the dataset wire format
(:mod:`repro.datasets.io`), so journal entries and dataset files can
never drift apart.

Failure handling:

* a **torn tail** (crash mid-append) is detected by the length/CRC
  framing, truncated away, and counted — everything before it is kept;
* **corruption anywhere else** (bad magic, CRC mismatch followed by
  more data) raises :class:`WalCorruptionError` — silently auditing on
  top of a damaged journal is the one unacceptable outcome;
* **compaction** folds the journal into an atomic fsync'd checkpoint
  (:func:`repro.faults.checkpoint.write_checkpoint`) and truncates the
  journal, bounding replay time.  A crash between those two steps is
  benign: replay skips entries at or below the checkpoint height, which
  also makes re-delivery of already-applied blocks idempotent.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Optional, Union

from .. import obs
from ..chain.block import Block
from ..datasets.io import _decode_block, _encode_block
from ..faults.checkpoint import CheckpointError, load_checkpoint, write_checkpoint

MAGIC = b"RAWJ"
VERSION = 1
_HEADER = MAGIC + struct.pack("<I", VERSION)
_U32 = struct.Struct("<I")

#: A frame larger than this is treated as corruption, not a real block.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WalCorruptionError(RuntimeError):
    """The journal is damaged beyond a torn tail; refuse to audit on it."""


def encode_entry(height: int, pool: str, block: Block) -> dict:
    """Journal payload for one applied block (dataset wire format)."""
    return {"h": height, "p": pool, "b": _encode_block(block)}


def decode_entry_block(entry: dict, prev_hash: str) -> Block:
    """Rebuild the Block of a journal entry on top of ``prev_hash``."""
    return _decode_block(entry["b"], prev_hash)


class BlockJournal:
    """Append-only WAL + checkpoint pair under one directory."""

    def __init__(self, directory: Union[str, Path], fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / "blocks.wal"
        self.checkpoint_path = self.directory / "blocks.ckpt.gz"
        self._fsync = fsync
        self._handle = None
        #: Frames dropped as a torn tail during the last recovery.
        self.torn_frames_dropped = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_for_append(self):
        if self._handle is None:
            if not self.wal_path.exists():
                self._write_header()
            self._handle = open(self.wal_path, "ab")
        return self._handle

    def _write_header(self) -> None:
        with open(self.wal_path, "wb") as handle:
            handle.write(_HEADER)
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, entry: dict) -> None:
        """Durably append one entry; returns only after the fsync."""
        payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        frame = (
            _U32.pack(len(payload))
            + payload
            + _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)
        )
        handle = self._open_for_append()
        handle.write(frame)
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())
        obs.counter("service.wal.appends")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _read_frames(self) -> list[dict]:
        """All intact frames; truncates a torn tail in place."""
        self.torn_frames_dropped = 0
        if not self.wal_path.exists():
            return []
        data = self.wal_path.read_bytes()
        if len(data) < len(_HEADER):
            # The file exists but even the header is torn: recover to
            # an empty journal rather than guessing at frame offsets.
            self._truncate_to(0, kept=0)
            return []
        if data[: len(MAGIC)] != MAGIC:
            raise WalCorruptionError(
                f"{self.wal_path}: bad magic {data[:4]!r}"
            )
        version = _U32.unpack_from(data, len(MAGIC))[0]
        if version != VERSION:
            raise WalCorruptionError(
                f"{self.wal_path}: unsupported WAL version {version}"
            )
        entries: list[dict] = []
        offset = len(_HEADER)
        good_end = offset
        while offset < len(data):
            frame = self._parse_frame(data, offset)
            if frame is None:
                break  # torn tail: everything before good_end is kept
            entry, offset = frame
            entries.append(entry)
            good_end = offset
        if good_end < len(data):
            self.torn_frames_dropped = 1
            obs.counter("service.wal.torn_tail_dropped")
            self._truncate_to(good_end, kept=len(entries))
        return entries

    def _parse_frame(self, data: bytes, offset: int):
        """One frame at ``offset``, or None when the tail is torn."""
        if offset + _U32.size > len(data):
            return None
        (length,) = _U32.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return None
        end = offset + _U32.size + length + _U32.size
        if end > len(data):
            return None
        payload = data[offset + _U32.size : offset + _U32.size + length]
        (crc,) = _U32.unpack_from(data, end - _U32.size)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if end < len(data):
                # Bad CRC *followed by more data* is not a torn append —
                # the middle of the journal rotted.
                raise WalCorruptionError(
                    f"{self.wal_path}: CRC mismatch at offset {offset} "
                    "with trailing data"
                )
            return None
        try:
            entry = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            if end < len(data):
                raise WalCorruptionError(
                    f"{self.wal_path}: undecodable frame at offset {offset}"
                )
            return None
        return entry, end

    def _truncate_to(self, size: int, kept: int) -> None:
        self.close()
        if size == 0:
            self._write_header()
            return
        with open(self.wal_path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def recover(self) -> list[dict]:
        """Checkpointed entries + surviving journal frames, in order.

        Journal frames at or below the checkpoint height are skipped —
        the compaction crash window re-delivers them — so replaying the
        returned list is always gap-free and duplicate-free.
        """
        try:
            checkpoint = load_checkpoint(self.checkpoint_path)
        except CheckpointError as exc:
            raise WalCorruptionError(str(exc)) from exc
        entries: list[dict] = []
        applied = -1
        if checkpoint is not None:
            if checkpoint.get("version") != VERSION:
                raise WalCorruptionError(
                    f"{self.checkpoint_path}: unsupported checkpoint version"
                )
            entries = list(checkpoint["entries"])
            applied = entries[-1]["h"] if entries else -1
        for entry in self._read_frames():
            if entry["h"] <= applied:
                continue  # idempotent replay across the compaction window
            if entry["h"] != applied + 1:
                raise WalCorruptionError(
                    f"{self.wal_path}: journal gap — expected height "
                    f"{applied + 1}, found {entry['h']}"
                )
            entries.append(entry)
            applied = entry["h"]
        obs.counter("service.wal.recovered_entries", len(entries))
        return entries

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, entries: list[dict]) -> None:
        """Fold ``entries`` (every applied block) into the checkpoint.

        The checkpoint lands atomically and fsync'd *before* the journal
        truncates; a crash between the two only widens the idempotent
        replay window.
        """
        write_checkpoint(
            self.checkpoint_path,
            {"version": VERSION, "entries": entries},
            fsync=True,
        )
        self._truncate_to(0, kept=0)
        obs.counter("service.checkpoints")
