"""Idempotent retrying client for the streaming audit service.

The server's ingest protocol is designed so a client that *always
retries* is safe:

* duplicates ack with 200 — resending an applied block is a no-op;
* gaps answer 409 with the height the server expects — a client that
  restarted (or raced a server restart) resynchronises from ``/status``
  instead of guessing;
* overload answers 503 with ``retry_after`` — the client backs off
  exponentially (honouring the server's hint as a floor) and resends
  the *same* block;
* a refused connection means the server is down or restarting — the
  same backoff loop covers it, which is exactly what the chaos harness
  leans on while it ``kill -9``'s the server mid-stream.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Iterable, Optional

from ..chain.block import Block
from ..datasets.dataset import Dataset
from .wal import encode_entry

#: Errors that mean "server unreachable right now" — always retryable.
_CONNECTION_ERRORS = (
    ConnectionError,
    http.client.HTTPException,
    TimeoutError,
    OSError,
)


class ServiceUnavailable(RuntimeError):
    """Retries exhausted without the server accepting the request."""


class AuditClient:
    """Small HTTP client with deadline, backoff, and resync helpers."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        max_retries: int = 40,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            parsed = json.loads(data) if data else {}
            return response.status, parsed
        finally:
            connection.close()

    def _sleep_for(self, attempt: int, hint: Optional[float]) -> None:
        delay = min(self.backoff_cap, self.backoff * (2**attempt))
        if hint is not None:
            delay = max(delay, float(hint))
        time.sleep(delay)

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict]:
        """One request with retry-on-unreachable and retry-on-503.

        Other status codes (including 409 gaps) return to the caller —
        they are protocol answers, not transport failures.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries):
            try:
                status, payload = self._request_once(method, path, body)
            except _CONNECTION_ERRORS as exc:
                last_error = exc
                self._sleep_for(attempt, None)
                continue
            if status == 503:
                self._sleep_for(attempt, payload.get("retry_after"))
                continue
            return status, payload
        raise ServiceUnavailable(
            f"{method} {path}: no answer after {self.max_retries} retries "
            f"(last error: {last_error})"
        )

    # ------------------------------------------------------------------
    # Protocol helpers
    # ------------------------------------------------------------------
    def wait_ready(self, deadline_seconds: float = 30.0) -> None:
        """Block until /readyz answers 200 (or raise)."""
        deadline = time.monotonic() + deadline_seconds
        attempt = 0
        while time.monotonic() < deadline:
            try:
                status, _ = self._request_once("GET", "/readyz")
                if status == 200:
                    return
            except _CONNECTION_ERRORS:
                pass
            self._sleep_for(min(attempt, 6), None)
            attempt += 1
        raise ServiceUnavailable("service never became ready")

    def status(self) -> dict:
        code, payload = self.request("GET", "/status")
        if code != 200:
            raise ServiceUnavailable(f"/status answered {code}")
        return payload

    def ingest(self, height: int, pool: str, block: Block) -> dict:
        """Send one block; duplicate acks count as success."""
        code, payload = self.request(
            "POST", "/ingest", encode_entry(height, pool, block)
        )
        if code in (200, 202):
            return payload
        if code == 409:
            return payload  # caller resynchronises from expected_height
        raise ServiceUnavailable(f"/ingest answered {code}: {payload}")

    def stream(
        self, feed: Iterable[tuple[int, str, Block]], resync: bool = True
    ) -> int:
        """Replay a (height, pool, block) feed until fully applied.

        The feed must be in chain order.  On a 409 gap the client skips
        forward/backward to the server's expected height (the feed is
        indexed once up front), which makes the stream restartable at
        any point — including across server crashes.
        """
        blocks = list(feed)
        by_height = {height: (height, pool, block) for height, pool, block in blocks}
        if not blocks:
            return 0
        sent = 0
        cursor = blocks[0][0]
        last = blocks[-1][0]
        while cursor <= last:
            if cursor not in by_height:
                raise ValueError(f"feed is missing height {cursor}")
            height, pool, block = by_height[cursor]
            answer = self.ingest(height, pool, block)
            if answer.get("status") == "gap":
                if not resync:
                    raise ServiceUnavailable(f"gap at {height}: {answer}")
                expected = answer["expected_height"]
                if expected > last:
                    break
                cursor = max(expected, blocks[0][0])
                continue
            sent += 1
            cursor = height + 1
        return sent

    def wait_applied(self, height: int, deadline_seconds: float = 60.0) -> dict:
        """Wait until the server has *folded* (not just queued) ``height``."""
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            status = self.status()
            if status.get("applied_height", -1) >= height:
                return status
            time.sleep(0.02)
        raise ServiceUnavailable(f"height {height} never applied")

    def query_tx(self, txid: str) -> dict:
        quoted = urllib.parse.quote(txid, safe="")
        code, payload = self.request("GET", f"/query/tx/{quoted}")
        if code != 200:
            raise ServiceUnavailable(f"/query/tx answered {code}")
        return payload

    def query_pool(self, pool: str) -> dict:
        # Pool names carry spaces and '&' ("1THash & 58Coin"): quote.
        quoted = urllib.parse.quote(pool, safe="")
        code, payload = self.request("GET", f"/query/pool/{quoted}")
        if code != 200:
            raise ServiceUnavailable(f"/query/pool answered {code}")
        return payload

    def audit(self) -> dict:
        code, payload = self.request("GET", "/audit")
        if code != 200:
            raise ServiceUnavailable(f"/audit answered {code}")
        return payload

    def checkpoint(self) -> None:
        self.request("POST", "/control/checkpoint")


def stream_dataset(client: AuditClient, dataset: Dataset) -> int:
    """Replay a whole dataset's chain through ``client``."""
    from ..core.audit import stream_blocks

    return client.stream(stream_blocks(dataset))
