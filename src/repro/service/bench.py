"""Query-storm benchmark for the streaming audit service.

One BENCH cell: bring up an in-process service (real HTTP transport,
ephemeral port), replay a dataset through ingest, then hammer the query
endpoints and report sustained queries/sec.  Rides along in
``BENCH_runner.json`` next to the runner grid so throughput regressions
of the service path are visible in the same artefact.
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Optional

from ..core.audit import stream_blocks
from ..datasets.builder import build_dataset_a
from .client import AuditClient
from .server import AuditService, make_http_server


def run_service_bench(
    scale: float = 0.2,
    queries: int = 300,
    queue_size: int = 64,
    dataset=None,
    wal_dir: Optional[str] = None,
) -> dict:
    """Ingest throughput + query-storm throughput of one service run."""
    if dataset is None:
        dataset = build_dataset_a(scale=scale)
    with tempfile.TemporaryDirectory(dir=wal_dir) as tmp:
        service = AuditService(
            dataset, wal_dir=tmp, queue_size=queue_size, fsync=True
        )
        service.recover()
        server = make_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = AuditClient(host, port)
        try:
            client.wait_ready()
            feed = list(stream_blocks(dataset))
            ingest_start = time.perf_counter()
            client.stream(feed)
            client.wait_applied(feed[-1][0])
            ingest_seconds = time.perf_counter() - ingest_start

            committed = [
                txid
                for txid, record in dataset.tx_records.items()
                if record.commit_height is not None
            ]
            pools = [est.pool for est in dataset.hash_rates()[:4]]
            storm_start = time.perf_counter()
            for index in range(queries):
                kind = index % 3
                if kind == 0 and committed:
                    client.query_tx(committed[index % len(committed)])
                elif kind == 1 and pools:
                    client.query_pool(pools[index % len(pools)])
                else:
                    client.status()
            storm_seconds = time.perf_counter() - storm_start
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
    return {
        "benchmark": "service-query-storm",
        "scale": scale,
        "blocks": len(feed),
        "ingest_seconds": round(ingest_seconds, 4),
        "ingest_blocks_per_second": round(len(feed) / ingest_seconds, 2),
        "queries": queries,
        "storm_seconds": round(storm_seconds, 4),
        "queries_per_second": round(queries / storm_seconds, 2),
    }
