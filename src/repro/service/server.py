"""The streaming audit service: HTTP facade over a StreamingAuditor.

Robustness posture (the binding constraint for a long-running audit):

* **Crash safety** — every applied block goes through the
  :class:`~repro.service.wal.BlockJournal` (fsync'd append *before* the
  fold), so ``kill -9`` anywhere resumes to byte-identical accumulator
  state by replaying the journal through the same fold path.
* **Backpressure, never silent drops** — ingest lands in a bounded
  queue; a full queue answers 503 with an explicit ``retry_after``
  instead of shedding blocks silently.  Duplicates ack cheaply and
  gaps are rejected with the expected height, which together make
  client retries idempotent.
* **Deadlines** — queries take the accumulator lock with a timeout and
  answer 503 ``deadline_exceeded`` rather than queueing unboundedly
  behind a slow fold.
* **Qualified answers only** — every data-bearing response carries an
  ``annotation`` block with the measured
  :class:`~repro.faults.quality.DataQualityReport` and stream progress;
  a gappy observer (injected via ``repro.faults``) degrades answers, it
  never silently un-qualifies them.

The per-question payloads (:func:`tx_answer`, :func:`pool_answer`,
:func:`audit_answer`) are pure functions of an :class:`Auditor`, shared
verbatim by the chaos harness to compare a recovered service against
the batch oracle.
"""

from __future__ import annotations

import json
import math
import queue
import threading
import urllib.parse
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from .. import obs
from ..core.audit import Auditor, StreamingAuditor
from ..core.ppe import summarize_ppe
from ..core.ppe import predictions_for
from ..datasets.dataset import Dataset
from ..datasets.io import load_dataset
from .wal import BlockJournal, decode_entry_block, encode_entry

#: Suggested client wait when the ingest queue is full, in seconds.
RETRY_AFTER_SECONDS = 0.1

#: Default per-request deadline for accumulator-locked queries.
DEFAULT_DEADLINE_SECONDS = 10.0


class DeadlineExceeded(RuntimeError):
    """The request could not take the accumulator lock in time."""


# ----------------------------------------------------------------------
# Canonical answer payloads (shared with the batch-oracle comparisons)
# ----------------------------------------------------------------------
def _json_float(value: float) -> Optional[float]:
    """NaN → None: JSON round-trips every other float exactly via repr."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _test_payload(test) -> dict:
    return {
        "pool": test.pool,
        "theta0": _json_float(test.theta0),
        "x": test.x,
        "y": test.y,
        "p_accelerate": _json_float(test.p_accelerate),
        "p_decelerate": _json_float(test.p_decelerate),
        "coverage": _json_float(test.coverage),
    }


def tx_answer(auditor: Auditor, txid: str) -> dict:
    """Everything the audit knows about one transaction.

    Pure function of auditor state: the chaos harness evaluates it on
    the batch oracle and on the recovered service and requires equality.
    """
    dataset = auditor.dataset
    record = dataset.tx_records.get(txid)
    location = dataset.chain.location_of(txid)
    answer: dict = {
        "txid": txid,
        "observed": record is not None and record.observed,
        "committed": location is not None,
    }
    if record is not None:
        answer["fee_rate"] = _json_float(record.fee_rate)
        answer["labels"] = sorted(record.labels)
    if location is None:
        return answer
    height = location.height
    pool = dataset.pool_of(height)
    answer["commit_height"] = height
    answer["commit_position"] = location.position
    answer["pool"] = pool
    prediction = next(
        (
            p
            for p in predictions_for(dataset.chain[height])
            if p.txid == txid
        ),
        None,
    )
    if prediction is not None:
        # CPFP children carry no prediction: their off-norm position is
        # legitimate, so the answer simply omits the error fields.
        answer["predicted_rank"] = _json_float(prediction.predicted_rank)
        answer["observed_rank"] = _json_float(prediction.observed_rank)
        answer["signed_error"] = _json_float(prediction.signed_error)
    if pool is not None:
        answer["test"] = _test_payload(
            auditor.prioritization_test_for(pool, [txid])
        )
    return answer


def pool_answer(auditor: Auditor, pool: str) -> dict:
    """One pool's neutrality evidence at the current chain state."""
    dataset = auditor.dataset
    blocks = {est.pool: est.blocks for est in dataset.hash_rates()}
    summary = summarize_ppe(auditor.ppe_by_pool([pool])[pool])
    answer: dict = {
        "pool": pool,
        "blocks": blocks.get(pool, 0),
        "share": _json_float(dataset.hash_rate_of(pool)),
        "ppe": {
            "block_count": summary.block_count,
            "mean": _json_float(summary.mean),
            "median": _json_float(summary.median),
            "percentile_80": _json_float(summary.percentile_80),
        },
    }
    txids = dataset.inferred_self_interest_txids_indexed(pool)
    answer["self_interest"] = {
        "tx_count": len(txids),
        "test": _test_payload(auditor.prioritization_test_for(pool, txids)),
        "sppe": _json_float(auditor.sppe_value(pool, txids)),
    }
    return answer


def audit_answer(auditor: Auditor, snapshot_count: int = 10) -> dict:
    """The full :meth:`Auditor.audit` report as a canonical JSON dict."""
    report = auditor.audit(snapshot_count=snapshot_count)
    return {
        "quality": report.quality.summary(),
        "ppe": None if report.ppe is None else asdict(report.ppe),
        "delay": None if report.delay is None else asdict(report.delay),
        "violations": [asdict(stats) for stats in report.violations],
        "self_interest": [
            {
                "owner_pool": row.owner_pool,
                "target_pool": row.target_pool,
                "test": _test_payload(row.test),
                "sppe": _json_float(row.sppe),
                "tx_count": row.tx_count,
            }
            for row in report.self_interest
        ],
        "scam": [
            {
                "pool": row.pool,
                "test": _test_payload(row.test),
                "sppe": _json_float(row.sppe),
            }
            for row in report.scam
        ],
        "congested_fraction": _json_float(report.congested_fraction),
        "notes": list(report.notes),
    }


# ----------------------------------------------------------------------
# The service core
# ----------------------------------------------------------------------
class AuditService:
    """Streaming auditor + WAL + bounded ingest queue, transport-free.

    All accumulator access is serialised by ``_state_lock``; the single
    applier thread holds it per fold, queries take it with a deadline.
    Admission control runs under the separate ``_admit_lock`` so a slow
    fold cannot block the cheap duplicate/gap/overload answers.
    """

    def __init__(
        self,
        dataset: Dataset,
        wal_dir: Union[str, Path],
        queue_size: int = 64,
        checkpoint_every: int = 64,
        fsync: bool = True,
    ) -> None:
        self.auditor = StreamingAuditor.from_dataset(dataset)
        self.journal = BlockJournal(wal_dir, fsync=fsync)
        self.checkpoint_every = checkpoint_every
        self.queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self.queue_capacity = queue_size
        self.ready = threading.Event()
        self._unpaused = threading.Event()
        self._unpaused.set()
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._applied_entries: list[dict] = []
        self._since_checkpoint = 0
        self._last_enqueued = -1
        self._applier: Optional[threading.Thread] = None

    @classmethod
    def from_dataset_file(cls, path: Union[str, Path], **kwargs) -> "AuditService":
        """Build from a saved dataset's *observer context*.

        The file's chain is deliberately ignored — blocks must arrive
        through ingest, which is what makes replay provable.
        """
        return cls(load_dataset(path), **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Replay the journal through the fold path; marks ready."""
        with obs.span("service.recover"):
            entries = self.journal.recover()
            with self._state_lock:
                for entry in entries:
                    self._fold_entry(entry)
        with self._admit_lock:
            self._last_enqueued = self.applied_height
        self.ready.set()
        self._applier = threading.Thread(
            target=self._apply_loop, name="audit-applier", daemon=True
        )
        self._applier.start()
        return len(entries)

    def stop(self) -> None:
        self._stop.set()
        self._unpaused.set()
        self.queue.put(None)  # wake the applier
        if self._applier is not None:
            self._applier.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    @property
    def applied_height(self) -> int:
        return self.auditor.applied_height

    def submit(self, entry: dict) -> tuple[str, dict]:
        """Admission control for one ingest entry; never blocks on folds.

        Returns (status, detail) where status is one of ``queued``,
        ``duplicate``, ``gap``, ``overloaded``, ``recovering``.
        """
        if not self.ready.is_set():
            return "recovering", {"retry_after": RETRY_AFTER_SECONDS}
        height = entry.get("h")
        if not isinstance(height, int):
            return "gap", {"expected_height": self._last_enqueued + 1}
        with self._admit_lock:
            expected = self._last_enqueued + 1
            if height <= self._last_enqueued:
                obs.counter("service.ingest.duplicate")
                return "duplicate", {"applied_height": self.applied_height}
            if height != expected:
                obs.counter("service.ingest.gap")
                return "gap", {"expected_height": expected}
            try:
                self.queue.put_nowait(entry)
            except queue.Full:
                obs.counter("service.ingest.shed")
                return "overloaded", {"retry_after": RETRY_AFTER_SECONDS}
            self._last_enqueued = height
            obs.counter("service.ingest.accepted")
            obs.gauge("service.queue_depth", self.queue.qsize())
            return "queued", {"expected_height": height + 1}

    def _apply_loop(self) -> None:
        while not self._stop.is_set():
            entry = self.queue.get()
            if entry is None or self._stop.is_set():
                break
            self._unpaused.wait()
            with self._state_lock:
                self._journal_and_fold(entry)

    def _journal_and_fold(self, entry: dict) -> None:
        """WAL first, fold second — the crash-safety ordering."""
        self.journal.append(entry)
        self._fold_entry(entry)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.journal.compact(self._applied_entries)
            self._since_checkpoint = 0

    def _fold_entry(self, entry: dict) -> None:
        with obs.span("service.fold"):
            block = decode_entry_block(entry, self.auditor.dataset.chain.tip_hash)
            self.auditor.fold_block(block, entry["p"])
            self._applied_entries.append(entry)

    # ------------------------------------------------------------------
    # Test/chaos hooks
    # ------------------------------------------------------------------
    def pause_applier(self) -> None:
        """Simulate a stalled consumer: queued entries stop draining."""
        self._unpaused.clear()

    def resume_applier(self) -> None:
        self._unpaused.set()

    def force_checkpoint(self) -> None:
        with self._locked_state(DEFAULT_DEADLINE_SECONDS):
            self.journal.compact(self._applied_entries)
            self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _locked_state(self, deadline: float):
        if not self._state_lock.acquire(timeout=deadline):
            obs.counter("service.deadline_exceeded")
            raise DeadlineExceeded(
                f"accumulator lock not acquired within {deadline:.3f}s"
            )
        lock = self._state_lock

        class _Release:
            def __enter__(self_inner):
                return None

            def __exit__(self_inner, *exc):
                lock.release()
                return False

        return _Release()

    def annotation(self) -> dict:
        """Quality + stream-progress context attached to every answer.

        Callers must hold the state lock (every query path below does).
        """
        quality = self.auditor.quality_report()
        return {
            "quality": quality.summary(),
            "stream": {
                "applied_height": self.applied_height,
                "blocks_applied": len(self._applied_entries),
                "queue_depth": self.queue.qsize(),
            },
        }

    def status(self) -> dict:
        return {
            "ready": self.ready.is_set(),
            "applied_height": self.applied_height,
            "expected_height": self._last_enqueued + 1,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue_capacity,
        }

    def query_tx(self, txid: str, deadline: float) -> dict:
        with self._locked_state(deadline), obs.span("service.query"):
            obs.counter("service.queries")
            return {
                "answer": tx_answer(self.auditor, txid),
                "annotation": self.annotation(),
            }

    def query_pool(self, pool: str, deadline: float) -> dict:
        with self._locked_state(deadline), obs.span("service.query"):
            obs.counter("service.queries")
            return {
                "answer": pool_answer(self.auditor, pool),
                "annotation": self.annotation(),
            }

    def query_audit(self, deadline: float, snapshot_count: int = 10) -> dict:
        with self._locked_state(deadline), obs.span("service.query"):
            obs.counter("service.queries")
            return {
                "answer": audit_answer(self.auditor, snapshot_count),
                "annotation": self.annotation(),
            }


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    service: AuditService  # injected via make_http_server
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # pragma: no cover - silence stdlib
        pass

    # -- helpers -------------------------------------------------------
    def _send(self, code: int, payload: dict, retry_after: Optional[float] = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _deadline(self) -> float:
        raw = self.headers.get("X-Deadline-Seconds")
        try:
            deadline = float(raw) if raw else DEFAULT_DEADLINE_SECONDS
        except ValueError:
            deadline = DEFAULT_DEADLINE_SECONDS
        return max(1e-3, deadline)

    def _read_json(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, OSError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- routes --------------------------------------------------------
    def do_GET(self):
        service = self.service
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send(200, {"status": "alive"})
            elif path == "/readyz":
                if service.ready.is_set():
                    self._send(200, {"status": "ready"})
                else:
                    self._send(
                        503,
                        {"status": "recovering"},
                        retry_after=RETRY_AFTER_SECONDS,
                    )
            elif path == "/status":
                self._send(200, service.status())
            elif path == "/obs":
                self._send(200, {"obs": obs.snapshot()})
            elif path.startswith("/query/tx/"):
                txid = urllib.parse.unquote(path[len("/query/tx/") :])
                self._send(200, service.query_tx(txid, self._deadline()))
            elif path.startswith("/query/pool/"):
                pool = urllib.parse.unquote(path[len("/query/pool/") :])
                self._send(200, service.query_pool(pool, self._deadline()))
            elif path == "/audit":
                self._send(200, service.query_audit(self._deadline()))
            else:
                self._send(404, {"error": f"no such path {path}"})
        except DeadlineExceeded as exc:
            self._send(
                503,
                {"status": "deadline_exceeded", "error": str(exc)},
                retry_after=RETRY_AFTER_SECONDS,
            )

    def do_POST(self):
        service = self.service
        path = self.path.split("?", 1)[0]
        try:
            if path == "/ingest":
                entry = self._read_json()
                if entry is None:
                    self._send(400, {"error": "malformed ingest payload"})
                    return
                status, detail = service.submit(entry)
                payload = {"status": status, **detail}
                if status in ("queued",):
                    self._send(202, payload)
                elif status == "duplicate":
                    self._send(200, payload)
                elif status == "gap":
                    self._send(409, payload)
                else:  # overloaded / recovering: explicit backpressure
                    self._send(
                        503, payload, retry_after=detail.get("retry_after")
                    )
            elif path == "/control/checkpoint":
                service.force_checkpoint()
                self._send(200, {"status": "checkpointed"})
            elif path == "/control/pause":
                service.pause_applier()
                self._send(200, {"status": "paused"})
            elif path == "/control/resume":
                service.resume_applier()
                self._send(200, {"status": "resumed"})
            else:
                self._send(404, {"error": f"no such path {path}"})
        except DeadlineExceeded as exc:
            self._send(
                503,
                {"status": "deadline_exceeded", "error": str(exc)},
                retry_after=RETRY_AFTER_SECONDS,
            )


def make_http_server(
    service: AuditService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server for ``service`` (port 0 = ephemeral)."""

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    server = ThreadingHTTPServer((host, port), BoundHandler)
    server.daemon_threads = True
    return server
