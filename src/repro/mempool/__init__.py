"""Mempool substrate: admission, ancestry/CPFP, and snapshotting."""

from .ancestry import (
    AncestryIndex,
    PackageStats,
    cpfp_fraction,
    cpfp_involved_txids,
    dependency_closure,
    find_cpfp_parent_txids,
    find_cpfp_txids,
)
from .mempool import AdmissionResult, Mempool, MempoolEntry, RejectionReason
from .snapshots import (
    CONGESTION_BINS,
    MempoolSnapshot,
    SizeSeries,
    SnapshotRecorder,
    SnapshotStore,
    SnapshotTx,
    congestion_bin,
    merge_stores,
)

__all__ = [
    "AncestryIndex",
    "PackageStats",
    "cpfp_fraction",
    "cpfp_involved_txids",
    "dependency_closure",
    "find_cpfp_parent_txids",
    "find_cpfp_txids",
    "AdmissionResult",
    "Mempool",
    "MempoolEntry",
    "RejectionReason",
    "CONGESTION_BINS",
    "MempoolSnapshot",
    "SizeSeries",
    "SnapshotRecorder",
    "SnapshotStore",
    "SnapshotTx",
    "congestion_bin",
    "merge_stores",
]
