"""Ancestor/descendant tracking and CPFP detection.

Two related notions live here:

* **In-mempool packages** — for a set of unconfirmed transactions, the
  ancestor sets and ancestor fee-rates that Bitcoin Core's block
  assembly actually ranks by.  A child paying a high fee can pull a
  cheap parent into a block ("child pays for parent").
* **In-block CPFP** — the paper's Appendix E definition: a committed
  transaction is a CPFP-tx iff it spends an output of another
  transaction *in the same block*.  The paper discards these when
  testing norm adherence because they are legitimate deviations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..chain.block import Block
from ..chain.transaction import Transaction
from .feerate import fee_rate_rank


@dataclass(frozen=True)
class PackageStats:
    """Aggregate fee/size of a transaction plus its unconfirmed ancestors."""

    txid: str
    ancestor_txids: frozenset[str]
    package_fee: int
    package_vsize: int

    @property
    def package_fee_rate(self) -> float:
        """The ancestor fee-rate Bitcoin Core's assembler sorts by.

        A float, so fit only for display and tolerant comparisons —
        ranking must go through :attr:`package_rank`, which survives the
        rationals that collide in float64.
        """
        return self.package_fee / self.package_vsize

    @property
    def package_rank(self) -> int:
        """Exact integer ordering key for the package fee-rate.

        Equivalent to comparing packages by integer cross-multiplication
        (``fee_a * vsize_b`` vs ``fee_b * vsize_a``); see
        :func:`repro.mempool.feerate.fee_rate_rank`.
        """
        return fee_rate_rank(self.package_fee, self.package_vsize)

    def outranks(self, other: "PackageStats") -> bool:
        """True when this package pays a strictly higher exact fee-rate."""
        return self.package_rank > other.package_rank

    @property
    def ancestor_count(self) -> int:
        return len(self.ancestor_txids)


class AncestryIndex:
    """Ancestor bookkeeping over a set of unconfirmed transactions.

    Only edges *within* the tracked set count: a parent already committed
    to the chain (or unknown) imposes no package obligation.
    """

    def __init__(self, transactions: Iterable[Transaction] = ()) -> None:
        self._txs: dict[str, Transaction] = {}
        # Reverse index: parent txid -> tracked txids spending it.  Keys
        # may name parents that are not (or not yet) tracked themselves;
        # queries intersect with the tracked set implicitly because only
        # tracked children are ever inserted.
        self._children: dict[str, set[str]] = {}
        for tx in transactions:
            self.add(tx)

    def add(self, tx: Transaction) -> None:
        """Track ``tx``; parent links resolve lazily at query time."""
        existing = self._txs.get(tx.txid)
        if existing is not None and existing.parent_txids != tx.parent_txids:
            # Re-adding under the same txid with different parents:
            # drop the stale reverse edges before indexing the new ones.
            self._unlink(existing)
        self._txs[tx.txid] = tx
        for parent in tx.parent_txids:
            self._children.setdefault(parent, set()).add(tx.txid)

    def remove(self, txid: str) -> None:
        """Stop tracking ``txid`` (e.g. it was committed)."""
        tx = self._txs.pop(txid, None)
        if tx is not None:
            self._unlink(tx)

    def _unlink(self, tx: Transaction) -> None:
        for parent in tx.parent_txids:
            children = self._children.get(parent)
            if children is not None:
                children.discard(tx.txid)
                if not children:
                    del self._children[parent]

    def __contains__(self, txid: str) -> bool:
        return txid in self._txs

    def __len__(self) -> int:
        return len(self._txs)

    def parents_of(self, txid: str) -> frozenset[str]:
        """In-set parents of ``txid``."""
        tx = self._txs.get(txid)
        if tx is None:
            return frozenset()
        return frozenset(p for p in tx.parent_txids if p in self._txs)

    def children_of(self, txid: str) -> frozenset[str]:
        """In-set children of ``txid`` (incremental reverse index; O(k)).

        Previously recomputed by an O(n) scan over every tracked
        transaction on each call, which made descendant walks quadratic;
        the reverse index is maintained by :meth:`add`/:meth:`remove`
        and cross-checked against the scan in a property test.
        """
        return frozenset(self._children.get(txid, ()))

    def children_of_by_scan(self, txid: str) -> frozenset[str]:
        """The pre-index O(n) computation, kept as the test oracle."""
        return frozenset(
            tx.txid for tx in self._txs.values() if txid in tx.parent_txids
        )

    def ancestors_of(self, txid: str) -> frozenset[str]:
        """All in-set ancestors of ``txid`` (excluding itself)."""
        ancestors: set[str] = set()
        queue = deque(self.parents_of(txid))
        while queue:
            parent = queue.popleft()
            if parent in ancestors:
                continue
            ancestors.add(parent)
            queue.extend(self.parents_of(parent) - ancestors)
        return frozenset(ancestors)

    def descendants_of(self, txid: str) -> frozenset[str]:
        """All in-set descendants of ``txid`` (excluding itself)."""
        descendants: set[str] = set()
        queue = deque(self.children_of(txid))
        while queue:
            child = queue.popleft()
            if child in descendants:
                continue
            descendants.add(child)
            queue.extend(self.children_of(child) - descendants)
        return frozenset(descendants)

    def package_stats(self, txid: str) -> PackageStats:
        """Fee/size aggregate of ``txid`` plus its unconfirmed ancestors."""
        tx = self._txs[txid]
        ancestors = self.ancestors_of(txid)
        fee = tx.fee + sum(self._txs[a].fee for a in ancestors)
        vsize = tx.vsize + sum(self._txs[a].vsize for a in ancestors)
        return PackageStats(
            txid=txid,
            ancestor_txids=ancestors,
            package_fee=fee,
            package_vsize=vsize,
        )

    def topological_order(self) -> list[Transaction]:
        """All tracked transactions, parents before children.

        Ties (no ordering constraint) preserve insertion order, keeping
        the result deterministic.
        """
        in_degree: dict[str, int] = {}
        for txid in self._txs:
            in_degree[txid] = len(self.parents_of(txid))
        children: dict[str, list[str]] = {txid: [] for txid in self._txs}
        for txid in self._txs:
            for parent in self.parents_of(txid):
                children[parent].append(txid)
        ready = deque(txid for txid, deg in in_degree.items() if deg == 0)
        ordered: list[Transaction] = []
        while ready:
            txid = ready.popleft()
            ordered.append(self._txs[txid])
            for child in children[txid]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(ordered) != len(self._txs):
            raise ValueError("dependency cycle among unconfirmed transactions")
        return ordered


def find_cpfp_txids(block: Block) -> frozenset[str]:
    """Txids in ``block`` that spend another transaction in the same block.

    Implements the paper's Appendix E definition of a CPFP-tx.  Note the
    definition marks the *child*; the parent it pays for is identified by
    :func:`find_cpfp_parent_txids`.
    """
    in_block = {tx.txid for tx in block.transactions}
    return frozenset(
        tx.txid for tx in block.transactions if tx.parent_txids & in_block
    )


def find_cpfp_parent_txids(block: Block) -> frozenset[str]:
    """Txids in ``block`` that are spent by another transaction in it."""
    in_block = {tx.txid for tx in block.transactions}
    parents: set[str] = set()
    for tx in block.transactions:
        parents.update(tx.parent_txids & in_block)
    return frozenset(parents)


def cpfp_involved_txids(block: Block) -> frozenset[str]:
    """Union of CPFP children and their in-block parents.

    The paper's in-block ordering analysis (PPE) excludes both sides of a
    CPFP relationship, since neither is expected to sit at its solo
    fee-rate position.
    """
    return find_cpfp_txids(block) | find_cpfp_parent_txids(block)


def cpfp_fraction(blocks: Sequence[Block]) -> float:
    """Fraction of committed transactions that are CPFP-txs.

    Table 1 reports this per dataset (19-26% in the paper's data).
    """
    total = 0
    cpfp = 0
    for block in blocks:
        total += len(block.transactions)
        cpfp += len(find_cpfp_txids(block))
    return cpfp / total if total else 0.0


def dependency_closure(
    transactions: Mapping[str, Transaction], txid: str
) -> frozenset[str]:
    """Ancestor closure of ``txid`` within an arbitrary tx mapping."""
    closure: set[str] = set()
    queue = deque([txid])
    while queue:
        current = queue.popleft()
        tx = transactions.get(current)
        if tx is None:
            continue
        for parent in tx.parent_txids:
            if parent in transactions and parent not in closure:
                closure.add(parent)
                queue.append(parent)
    return frozenset(closure)
