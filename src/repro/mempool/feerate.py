"""Exact fee-rate ordering for template builders and eviction planning.

A fee-rate is the rational number ``fee / vsize``.  Ranking by the
float64 quotient is faithful only while the products involved stay
inside the 53-bit mantissa; large fees or vsizes can collapse two
*distinct* rationals onto one float, at which point the order falls
through to tie-break keys — and template output starts depending on
incidental details (arrival times, txids, the code path taken) instead
of on the rates themselves.  Every ordering-sensitive consumer in the
production path (both template builders, boosted-head sorts, the
mempool eviction planner) therefore ranks through this module.

:func:`fee_rate_rank` embeds ``fee / vsize`` into the integers by
scaling with ``2**FEE_RATE_RANK_SHIFT`` before the floor division.  For
two rationals ``a/b != c/d`` with ``b, d < 2**64`` the scaled values
differ by at least ``2**128 / (b * d) > 1``, so their floors differ:
the embedding is strictly monotone and maps equal rationals (and only
equal rationals) to equal integers.  Comparing ranks is therefore
exactly the integer cross-multiplication test ``a*d <=> c*b``, packaged
as a plain sortable key.
"""

from __future__ import annotations

#: Scaling shift used by :func:`fee_rate_rank`.  Wide enough (two full
#: 64-bit operands) that the floor division can never conflate two
#: distinct rationals with realistic numerators and denominators.
FEE_RATE_RANK_SHIFT = 128


def fee_rate_rank(fee: int, vsize: int) -> int:
    """Integer key ordered exactly like the rational ``fee / vsize``.

    Sort ascending for cheapest-first, negate for richest-first.  The
    key is exact: ranks compare equal iff the underlying rationals are
    equal (for ``vsize < 2**64``), unlike the float64 quotient.
    """
    if vsize <= 0:
        raise ValueError(f"vsize must be positive, got {vsize}")
    return (fee << FEE_RATE_RANK_SHIFT) // vsize


def fee_rate_exceeds(fee_a: int, vsize_a: int, fee_b: int, vsize_b: int) -> bool:
    """``fee_a/vsize_a > fee_b/vsize_b``, by integer cross-multiplication."""
    return fee_a * vsize_b > fee_b * vsize_a


def fee_rate_at_least(fee_a: int, vsize_a: int, fee_b: int, vsize_b: int) -> bool:
    """``fee_a/vsize_a >= fee_b/vsize_b``, by integer cross-multiplication."""
    return fee_a * vsize_b >= fee_b * vsize_a
