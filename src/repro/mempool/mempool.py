"""The mempool: a node's buffer of unconfirmed transactions.

The mempool is where the paper's three norms act: norm III filters what
enters (minimum fee-rate), norms I and II govern how miners drain it.
This implementation keeps the entry metadata the audit needs — most
importantly the *arrival time* at this node, which differs across nodes
and is the reason the paper tightens its violation test with an ε slack.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from .. import obs
from ..chain.constants import DEFAULT_MIN_RELAY_FEE_RATE
from ..chain.transaction import Transaction
from ..obs.invariants import InvariantViolation, invariants_enabled
from .feerate import fee_rate_at_least, fee_rate_exceeds, fee_rate_rank


@dataclass(frozen=True)
class MempoolEntry:
    """A transaction plus node-local bookkeeping."""

    tx: Transaction
    arrival_time: float

    @property
    def txid(self) -> str:
        return self.tx.txid

    @property
    def fee_rate(self) -> float:
        return self.tx.fee_rate

    @property
    def vsize(self) -> int:
        return self.tx.vsize


class RejectionReason:
    """Why a transaction was refused admission."""

    BELOW_MIN_FEE_RATE = "below-min-fee-rate"
    ALREADY_PRESENT = "already-present"
    ALREADY_CONFIRMED = "already-confirmed"
    EXPIRED = "expired"
    #: Conflicts with a pending transaction and fails the RBF rules.
    INSUFFICIENT_REPLACEMENT = "insufficient-replacement"
    #: Pool is full and the transaction pays less than the eviction floor.
    MEMPOOL_FULL = "mempool-full"


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering a transaction to the mempool."""

    accepted: bool
    reason: Optional[str] = None
    #: Txids evicted by an accepted replace-by-fee transaction.
    replaced: tuple[str, ...] = ()


class Mempool:
    """Fee-rate aware unconfirmed-transaction pool.

    Parameters
    ----------
    min_fee_rate:
        Norm III threshold in sat/vB.  The paper's dataset-A node used
        the default (1 sat/vB); its dataset-B node was configured with 0
        to accept even zero-fee transactions.
    expiry_seconds:
        Entries older than this are dropped on :meth:`expire` (Bitcoin
        Core defaults to 14 days).
    """

    def __init__(
        self,
        min_fee_rate: float = DEFAULT_MIN_RELAY_FEE_RATE,
        expiry_seconds: float = 14 * 24 * 3600.0,
        allow_rbf: bool = True,
        max_vsize: Optional[int] = None,
    ) -> None:
        if min_fee_rate < 0:
            raise ValueError("min_fee_rate must be non-negative")
        if max_vsize is not None and max_vsize <= 0:
            raise ValueError("max_vsize must be positive when set")
        self.min_fee_rate = min_fee_rate
        self.expiry_seconds = expiry_seconds
        self.allow_rbf = allow_rbf
        #: Size cap in vbytes (Bitcoin Core's ``maxmempool``); when the
        #: pool overflows, the lowest fee-rate entries are evicted and
        #: an incoming transaction cheaper than what it would displace
        #: is rejected outright.
        self.max_vsize = max_vsize
        self._entries: dict[str, MempoolEntry] = {}
        self._total_vsize = 0
        self._total_fees = 0
        # Lazy max-heap over (-fee_rate, seq); stale items are skipped on pop.
        self._heap: list[tuple[float, int, str]] = []
        self._seq = itertools.count()
        self._rejections: dict[str, int] = {}
        # Outpoint -> spending txid, for conflict (double-spend) detection.
        self._spenders: dict[object, str] = {}
        # Mutations since the last (throttled) invariant check.
        self._ops_since_check = 0

    # ------------------------------------------------------------------
    # Admission / removal
    # ------------------------------------------------------------------
    def conflicts_of(self, tx: Transaction) -> list[str]:
        """Pending txids spending any of ``tx``'s inputs."""
        conflicting: list[str] = []
        for txin in tx.inputs:
            spender = self._spenders.get(txin.prevout)
            if spender is not None and spender != tx.txid:
                conflicting.append(spender)
        return conflicting

    def _rbf_acceptable(self, tx: Transaction, conflicts: list[str]) -> bool:
        """Simplified BIP-125: pay more total fee AND a higher fee-rate.

        The rate comparison is exact (integer cross-multiplication, see
        :mod:`repro.mempool.feerate`) so a replacement race cannot hinge
        on float rounding of near-tie fee-rates.
        """
        if not self.allow_rbf:
            return False
        displaced_fee = sum(self._entries[c].tx.fee for c in conflicts)
        if tx.fee <= displaced_fee:
            return False
        return all(
            fee_rate_exceeds(
                tx.fee, tx.vsize, self._entries[c].tx.fee, self._entries[c].vsize
            )
            for c in conflicts
        )

    def offer(self, tx: Transaction, now: float) -> AdmissionResult:
        """Apply admission policy and insert ``tx`` if it passes.

        A transaction conflicting with pending ones (spending the same
        outpoint) is admitted only under the replace-by-fee rules —
        strictly more total fee and a strictly higher fee-rate than
        what it displaces — in which case the conflicts are evicted and
        reported in the result.

        Admission is atomic: conflict evictions and size-cap evictions
        are *planned* first and applied only once acceptance is certain,
        so a rejected offer (e.g. ``MEMPOOL_FULL``) leaves the pool —
        including the would-be-displaced transactions — untouched.
        """
        try:
            if tx.txid in self._entries:
                return self._reject(RejectionReason.ALREADY_PRESENT)
            if tx.fee_rate < self.min_fee_rate:
                return self._reject(RejectionReason.BELOW_MIN_FEE_RATE)
            conflicts = self.conflicts_of(tx)
            if conflicts and not self._rbf_acceptable(tx, conflicts):
                return self._reject(RejectionReason.INSUFFICIENT_REPLACEMENT)
            evicted = self._plan_evictions(tx, exclude=frozenset(conflicts))
            if evicted is None:
                return self._reject(RejectionReason.MEMPOOL_FULL)
            # Acceptance is certain: commit the staged removals.
            for txid in conflicts:
                self.remove(txid)
            for txid in evicted:
                self.remove(txid)
            entry = MempoolEntry(tx=tx, arrival_time=now)
            self._entries[tx.txid] = entry
            self._total_vsize += tx.vsize
            self._total_fees += tx.fee
            for txin in tx.inputs:
                self._spenders[txin.prevout] = tx.txid
            heapq.heappush(self._heap, (-tx.fee_rate, next(self._seq), tx.txid))
            obs.counter("mempool.offer.accepted")
            if conflicts:
                obs.counter("mempool.rbf_replacements", len(conflicts))
            if evicted:
                obs.counter("mempool.evictions", len(evicted))
            obs.gauge_max("mempool.peak_vsize", self._total_vsize)
            return AdmissionResult(
                accepted=True, replaced=tuple(conflicts) + tuple(evicted)
            )
        finally:
            self._maybe_check_invariants()

    def _plan_evictions(
        self, tx: Transaction, exclude: frozenset[str] = frozenset()
    ) -> Optional[list[str]]:
        """Cheapest-first eviction plan admitting ``tx``; None = bounce.

        Pure planner: nothing is removed here.  ``exclude`` holds RBF
        conflicts already destined for eviction — their vsize counts as
        freed, and they are not eviction candidates themselves.  The
        incoming transaction must *strictly* out-pay everything the plan
        displaces; a transaction at or below the eviction floor bounces,
        as in Bitcoin Core's full-mempool behaviour.
        """
        if self.max_vsize is None:
            return []
        freed_by_conflicts = sum(self._entries[t].vsize for t in exclude)
        needed = (
            self._total_vsize - freed_by_conflicts + tx.vsize - self.max_vsize
        )
        if needed <= 0:
            return []
        cheapest_first = sorted(
            (e for e in self._entries.values() if e.txid not in exclude),
            key=lambda e: (fee_rate_rank(e.tx.fee, e.vsize), -e.arrival_time),
        )
        evicted: list[str] = []
        freed = 0
        for entry in cheapest_first:
            if freed >= needed:
                break
            if fee_rate_at_least(entry.tx.fee, entry.vsize, tx.fee, tx.vsize):
                return None  # would displace better-paying traffic
            evicted.append(entry.txid)
            freed += entry.vsize
        if freed < needed:
            return None
        return evicted

    def _reject(self, reason: str) -> AdmissionResult:
        self._rejections[reason] = self._rejections.get(reason, 0) + 1
        obs.counter(f"mempool.offer.rejected.{reason}")
        return AdmissionResult(accepted=False, reason=reason)

    def remove(self, txid: str) -> Optional[MempoolEntry]:
        """Remove and return an entry (no-op if absent).

        Stale heap residue is tolerated: pops skip entries no longer in
        the live map, which keeps removal O(1).
        """
        entry = self._entries.pop(txid, None)
        if entry is not None:
            self._total_vsize -= entry.vsize
            self._total_fees -= entry.tx.fee
            for txin in entry.tx.inputs:
                if self._spenders.get(txin.prevout) == txid:
                    del self._spenders[txin.prevout]
            obs.counter("mempool.removed")
            self._maybe_check_invariants()
        return entry

    def remove_confirmed(self, txids: Iterable[str]) -> int:
        """Drop all entries committed by a newly seen block."""
        removed = 0
        for txid in txids:
            if self.remove(txid) is not None:
                removed += 1
        if removed:
            obs.counter("mempool.confirmed_removed", removed)
        return removed

    def clear(self) -> int:
        """Drop every entry — a node crash/restart wipes the mempool.

        Rejection counters survive (they model operator-visible logs);
        everything held in memory is gone.  Returns the entry count
        dropped.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self._total_vsize = 0
        self._total_fees = 0
        self._heap.clear()
        self._spenders.clear()
        if dropped:
            obs.counter("mempool.cleared", dropped)
        self._maybe_check_invariants()
        return dropped

    def expire(self, now: float) -> list[MempoolEntry]:
        """Evict entries *strictly* older than ``expiry_seconds``.

        An entry exactly at the cutoff (age == ``expiry_seconds``)
        survives, matching Bitcoin Core's ``Expire`` (strict ``<`` on
        the entry time); returns the evicted entries.
        """
        cutoff = now - self.expiry_seconds
        stale = [e for e in self._entries.values() if e.arrival_time < cutoff]
        for entry in stale:
            self.remove(entry.txid)
        if stale:
            obs.counter("mempool.expired", len(stale))
        self._maybe_check_invariants()
        return stale

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, txid: str) -> bool:
        return txid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MempoolEntry]:
        return iter(list(self._entries.values()))

    def get(self, txid: str) -> Optional[MempoolEntry]:
        return self._entries.get(txid)

    def arrival_time(self, txid: str) -> Optional[float]:
        entry = self._entries.get(txid)
        return entry.arrival_time if entry is not None else None

    @property
    def total_vsize(self) -> int:
        """Aggregate vsize of queued transactions — the congestion gauge."""
        return self._total_vsize

    @property
    def total_fees(self) -> int:
        return self._total_fees

    @property
    def rejection_counts(self) -> dict[str, int]:
        return dict(self._rejections)

    def entries(self) -> list[MempoolEntry]:
        """All entries, unordered."""
        return list(self._entries.values())

    def entries_by_fee_rate(self) -> list[MempoolEntry]:
        """Entries ordered by descending fee-rate (norm ordering).

        Ties break by arrival order (earlier first), matching the
        first-seen tie-break miners effectively apply.
        """
        ordered = sorted(
            self._entries.values(),
            key=lambda e: (-e.fee_rate, e.arrival_time, e.txid),
        )
        return ordered

    def iter_best(self) -> Iterator[MempoolEntry]:
        """Yield entries from best fee-rate down, without consuming them.

        Iteration works on a snapshot of the heap, so the pool (and the
        shared ``_heap`` that later ``offer``/``remove`` calls rely on)
        is left intact and a second call yields the same sequence.  As
        a side effect the first advance compacts stale heap residue
        (items whose entry has since been removed) out of the live
        heap.  Entries removed *mid-iteration* are skipped; a txid is
        yielded at most once even if re-admission left duplicate heap
        items behind.
        """
        live = [item for item in self._heap if item[2] in self._entries]
        if len(live) != len(self._heap):
            # Compact: filtering broke the heap shape, so re-heapify a
            # copy for the pool and one for this iteration.
            compacted = list(live)
            heapq.heapify(compacted)
            self._heap = compacted
        heapq.heapify(live)
        seen: set[str] = set()
        while live:
            _, _, txid = heapq.heappop(live)
            if txid in seen:
                continue
            entry = self._entries.get(txid)
            if entry is not None:
                seen.add(txid)
                yield entry

    def filter(self, predicate: Callable[[MempoolEntry], bool]) -> list[MempoolEntry]:
        """Entries satisfying ``predicate``."""
        return [entry for entry in self._entries.values() if predicate(entry)]

    # ------------------------------------------------------------------
    # Invariant contract
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify bookkeeping against recomputed ground truth.

        The contract:

        * ``total_vsize``/``total_fees`` incremental counters equal the
          sums recomputed over the live entries;
        * the pool respects ``max_vsize`` and no entry sits below
          ``min_fee_rate``;
        * the conflict index (``_spenders``) maps exactly the outpoints
          spent by live entries, each to its unique spender;
        * every live entry is reachable through the fee-rate heap.

        O(n); raises :class:`InvariantViolation` on the first breach.
        The mempool calls this itself after mutations (throttled on
        large pools) whenever ``REPRO_AUDIT_CHECK=1`` — the test suite
        keeps it always-on via a conftest fixture.
        """
        entries = self._entries
        vsize = sum(e.vsize for e in entries.values())
        if vsize != self._total_vsize:
            raise InvariantViolation(
                f"total_vsize drifted: counter={self._total_vsize} "
                f"recomputed={vsize}"
            )
        fees = sum(e.tx.fee for e in entries.values())
        if fees != self._total_fees:
            raise InvariantViolation(
                f"total_fees drifted: counter={self._total_fees} "
                f"recomputed={fees}"
            )
        if self.max_vsize is not None and vsize > self.max_vsize:
            raise InvariantViolation(
                f"pool over max_vsize: {vsize} > {self.max_vsize}"
            )
        expected_spenders: dict[object, str] = {}
        for txid, entry in entries.items():
            if entry.txid != txid:
                raise InvariantViolation(
                    f"entry keyed {txid} holds tx {entry.txid}"
                )
            if entry.fee_rate < self.min_fee_rate:
                raise InvariantViolation(
                    f"entry {txid} below min_fee_rate: "
                    f"{entry.fee_rate} < {self.min_fee_rate}"
                )
            for txin in entry.tx.inputs:
                other = expected_spenders.get(txin.prevout)
                if other is not None:
                    raise InvariantViolation(
                        f"entries {other} and {txid} both spend "
                        f"{txin.prevout!r}"
                    )
                expected_spenders[txin.prevout] = txid
        if expected_spenders != self._spenders:
            missing = expected_spenders.keys() - self._spenders.keys()
            extra = self._spenders.keys() - expected_spenders.keys()
            raise InvariantViolation(
                "conflict index diverges from entries: "
                f"{len(missing)} outpoint(s) unindexed, "
                f"{len(extra)} stale; first unindexed: "
                f"{next(iter(missing), None)!r}, first stale: "
                f"{next(iter(extra), None)!r}"
            )
        heap_txids = {item[2] for item in self._heap}
        unreachable = entries.keys() - heap_txids
        if unreachable:
            raise InvariantViolation(
                f"{len(unreachable)} live entr(y/ies) missing from the "
                f"fee-rate heap (e.g. {sorted(unreachable)[:3]})"
            )

    def _maybe_check_invariants(self) -> None:
        """Self-check after a mutation when ``REPRO_AUDIT_CHECK=1``.

        The full check is O(n), so on pools past a few hundred entries
        it runs every 64th mutation instead of every one — enabling
        checks must not turn long simulations quadratic.
        """
        if not invariants_enabled():
            return
        self._ops_since_check += 1
        if len(self._entries) > 256 and self._ops_since_check < 64:
            return
        self._ops_since_check = 0
        self.check_invariants()
