"""Periodic mempool snapshots — the paper's primary measurement output.

Datasets A and B are sequences of mempool snapshots taken every 15
seconds by an observer full node.  Each snapshot records, per pending
transaction, the tuple the audit consumes: (txid, arrival time at the
observer, fee, vsize).  This module provides the snapshot record, the
recorder that a simulated observer drives, and a store with the query
operations used by the congestion and violation analyses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..chain.constants import MAX_BLOCK_VSIZE
from .mempool import Mempool


@dataclass(frozen=True)
class SnapshotTx:
    """A pending transaction as seen in one snapshot."""

    txid: str
    arrival_time: float
    fee: int
    vsize: int

    @property
    def fee_rate(self) -> float:
        return self.fee / self.vsize


@dataclass(frozen=True)
class MempoolSnapshot:
    """State of an observer's mempool at one instant."""

    time: float
    txs: tuple[SnapshotTx, ...]

    @property
    def tx_count(self) -> int:
        return len(self.txs)

    @property
    def total_vsize(self) -> int:
        """Aggregate pending vsize; >1 MB means the mempool is congested."""
        return sum(tx.vsize for tx in self.txs)

    @property
    def is_congested(self) -> bool:
        """True when pending transactions exceed one block's capacity."""
        return self.total_vsize > MAX_BLOCK_VSIZE

    def congestion_level(self) -> str:
        """The paper's four congestion bins (§4.1.2)."""
        return congestion_bin(self.total_vsize)

    def txids(self) -> frozenset[str]:
        return frozenset(tx.txid for tx in self.txs)


#: Bin labels in ascending congestion order, as defined in §4.1.2.
CONGESTION_BINS = ("<=1MB", "(1,2]MB", "(2,4]MB", ">4MB")


def congestion_bin(total_vsize: int) -> str:
    """Classify a mempool size into the paper's congestion bins."""
    mb = 1_000_000
    if total_vsize <= mb:
        return CONGESTION_BINS[0]
    if total_vsize <= 2 * mb:
        return CONGESTION_BINS[1]
    if total_vsize <= 4 * mb:
        return CONGESTION_BINS[2]
    return CONGESTION_BINS[3]


class SnapshotRecorder:
    """Capture :class:`MempoolSnapshot` objects from a live mempool."""

    def __init__(self, interval: float = 15.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._snapshots: list[MempoolSnapshot] = []
        self._last_time: Optional[float] = None

    def due(self, now: float) -> bool:
        """True if a snapshot should be taken at time ``now``."""
        if self._last_time is None:
            return True
        return now - self._last_time >= self.interval

    def capture(self, mempool: Mempool, now: float) -> MempoolSnapshot:
        """Record and return the current mempool state."""
        txs = tuple(
            SnapshotTx(
                txid=entry.txid,
                arrival_time=entry.arrival_time,
                fee=entry.tx.fee,
                vsize=entry.vsize,
            )
            for entry in mempool.entries()
        )
        snapshot = MempoolSnapshot(time=now, txs=txs)
        self._snapshots.append(snapshot)
        self._last_time = now
        return snapshot

    @property
    def snapshots(self) -> list[MempoolSnapshot]:
        return list(self._snapshots)

    def store(self) -> "SnapshotStore":
        return SnapshotStore(self._snapshots)


class SnapshotStore:
    """Time-indexed collection of snapshots with analysis queries."""

    def __init__(self, snapshots: Iterable[MempoolSnapshot]) -> None:
        self._snapshots = sorted(snapshots, key=lambda s: s.time)
        self._times = [s.time for s in self._snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[MempoolSnapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> MempoolSnapshot:
        return self._snapshots[index]

    @property
    def times(self) -> list[float]:
        return list(self._times)

    def at_or_before(self, time: float) -> Optional[MempoolSnapshot]:
        """Most recent snapshot taken at or before ``time``."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return None
        return self._snapshots[index]

    def sizes(self) -> list[int]:
        """Per-snapshot total pending vsize (Fig 3b/3c, Fig 9 series)."""
        return [snapshot.total_vsize for snapshot in self._snapshots]

    def congested_fraction(self) -> float:
        """Fraction of snapshots whose mempool exceeds 1 MB.

        The paper reports ~75% for dataset A and ~92% for dataset B.
        """
        if not self._snapshots:
            return 0.0
        congested = sum(1 for s in self._snapshots if s.is_congested)
        return congested / len(self._snapshots)

    def sample(self, count: int, rng) -> list[MempoolSnapshot]:
        """Sample ``count`` snapshots uniformly at random without replacement.

        §4.2.1 samples 30 snapshots this way for the violation analysis.
        ``rng`` is a :class:`numpy.random.Generator`.
        """
        if count >= len(self._snapshots):
            return list(self._snapshots)
        indexes = rng.choice(len(self._snapshots), size=count, replace=False)
        return [self._snapshots[i] for i in sorted(indexes)]

    def first_seen(self) -> dict[str, float]:
        """Earliest snapshot time at which each txid was observed pending.

        This is observer-visibility time — the timestamp of the first
        snapshot containing the transaction — not the transaction's own
        mempool ``arrival_time``, which can precede it by most of a
        snapshot interval.  The violation analysis compares what the
        auditor could actually have seen, so snapshot time is the
        correct semantics.
        """
        seen: dict[str, float] = {}
        for snapshot in self._snapshots:
            for tx in snapshot.txs:
                if tx.txid not in seen:
                    seen[tx.txid] = snapshot.time
        return seen


def merge_stores(stores: Sequence[SnapshotStore]) -> SnapshotStore:
    """Merge several stores into one time-ordered store."""
    merged: list[MempoolSnapshot] = []
    for store in stores:
        merged.extend(store)
    return SnapshotStore(merged)


class SizeSeries:
    """Lightweight per-tick mempool size series.

    Full snapshots carry every pending transaction and are expensive to
    materialise at a 15-second cadence over weeks of simulated time; the
    congestion analyses (Fig 3b/3c, Fig 4c, Fig 9, Fig 11) only need the
    aggregate pending vsize per tick.  ``SizeSeries`` stores exactly
    that, with the same query surface :class:`SnapshotStore` offers for
    sizes, so analysis code accepts either.
    """

    def __init__(
        self,
        times: Sequence[float],
        vsizes: Sequence[int],
        tx_counts: Optional[Sequence[int]] = None,
    ) -> None:
        self._times = [float(t) for t in times]
        self._vsizes = [int(v) for v in vsizes]
        if len(self._times) != len(self._vsizes):
            raise ValueError("times and vsizes must align")
        if any(b < a for a, b in zip(self._times, self._times[1:])):
            raise ValueError("times must be non-decreasing")
        self._tx_counts = (
            [int(c) for c in tx_counts] if tx_counts is not None else None
        )
        if self._tx_counts is not None and len(self._tx_counts) != len(self._times):
            raise ValueError("tx_counts must align with times")

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    def sizes(self) -> list[int]:
        return list(self._vsizes)

    def tx_counts(self) -> Optional[list[int]]:
        return list(self._tx_counts) if self._tx_counts is not None else None

    def size_at_or_before(self, time: float) -> Optional[int]:
        """Pending vsize at the last tick at or before ``time``."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return None
        return self._vsizes[index]

    def congested_fraction(self, threshold_vsize: int = MAX_BLOCK_VSIZE) -> float:
        """Fraction of ticks with pending vsize above ``threshold_vsize``."""
        if not self._vsizes:
            return 0.0
        congested = sum(1 for size in self._vsizes if size > threshold_vsize)
        return congested / len(self._vsizes)
