#!/usr/bin/env python3
"""Quickstart: build a dataset analogue and audit it.

Builds a scaled-down analogue of the paper's dataset C (the full year
2020, with the misbehaviour the paper uncovered injected as ground
truth), then runs the three headline audits:

1. in-block ordering conformance (PPE, Fig 7),
2. self-interest acceleration tests (Table 2),
3. dark-fee transaction detection (Table 4).

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import Auditor, build_dataset_c
from repro.analysis.tables import render_table
from repro.simulation.scenarios import BTC_COM_SERVICE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Building dataset C analogue at scale {scale} (one-time cost)...")
    dataset = build_dataset_c(scale=scale)
    summary = dataset.summary()
    print(
        f"  {summary['blocks']} blocks, "
        f"{summary['transactions_issued']} transactions issued, "
        f"{100 * summary['cpfp_fraction']:.1f}% CPFP children\n"
    )
    auditor = Auditor(dataset)

    # 1. Does ordering follow the fee-rate norm? (Fig 7)
    ppe = auditor.ppe_summary()
    print(
        f"Ordering conformance: mean PPE {ppe.mean:.2f}% "
        f"(80% of blocks below {ppe.percentile_80:.2f}%)"
    )
    print("  -> miners order mostly, but not exactly, by fee-rate\n")

    # 2. Who accelerates whose transactions? (Table 2)
    rows = auditor.self_interest_table()
    flagged = [row for row in rows if row.test.accelerates()]
    print("Differential prioritization of self-interest transactions:")
    print(
        render_table(
            ["txs of", "accelerated by", "x", "y", "p-value", "SPPE %"],
            [
                (
                    row.owner_pool,
                    row.target_pool,
                    row.test.x,
                    row.test.y,
                    row.test.p_accelerate,
                    row.sppe,
                )
                for row in flagged
            ],
        )
    )
    collusion = [r for r in flagged if r.owner_pool != r.target_pool]
    if collusion:
        pairs = ", ".join(
            f"{r.target_pool} boosts {r.owner_pool}" for r in collusion
        )
        print(f"  -> collusion detected: {pairs}")
    print()

    # 3. Dark-fee acceleration detection (Table 4).
    report = auditor.dark_fee_sweep("BTC.com", service_name=BTC_COM_SERVICE)
    print("Dark-fee detection (SPPE threshold sweep over BTC.com blocks):")
    print(
        render_table(
            ["SPPE >=", "# candidates", "# confirmed", "precision"],
            [
                (f"{row.threshold:g}%", row.candidate_count,
                 row.accelerated_count, row.precision)
                for row in report.rows
            ],
        )
    )
    print(
        f"  control: {report.control_accelerated}/{report.control_sample_size} "
        "accelerated in a random sample"
    )


if __name__ == "__main__":
    main()
