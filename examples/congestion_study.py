#!/usr/bin/env python3
"""Congestion study: does paying more actually help? (§4.1)

Reproduces the user-facing half of the paper on the dataset A and B
analogues: how congested the mempool is, how long transactions wait,
how users bid fees up under congestion, and whether that bidding works.

Run:  python examples/congestion_study.py [scale]
"""

import sys

import numpy as np

from repro import Auditor, build_dataset_a, build_dataset_b
from repro.analysis.tables import render_kv, render_table
from repro.core.congestion import FEE_BAND_LABELS
from repro.core.fee_estimator import NormBasedFeeEstimator
from repro.mempool.snapshots import CONGESTION_BINS


def study(name: str, dataset) -> None:
    auditor = Auditor(dataset)
    series = dataset.size_series
    sizes = np.asarray(series.sizes(), dtype=float)
    delays = auditor.delay_summary()
    print(
        render_kv(
            [
                ("congested (>1 MvB) fraction of time", series.congested_fraction()),
                ("peak backlog (x block size)", float(sizes.max()) / 1e6),
                ("txs committed next block", delays.next_block_fraction),
                ("txs waiting >= 3 blocks", delays.delayed_3plus_fraction),
                ("txs waiting >= 10 blocks", delays.delayed_10plus_fraction),
                ("worst wait (blocks)", delays.max_delay),
            ],
            title=f"Dataset {name}: congestion and delays (Figs 3-4)",
        )
    )

    grouped = auditor.fee_rates_by_congestion_level()
    print(
        render_table(
            ["congestion at issuance", "txs", "median fee (sat/vB)"],
            [
                (
                    label,
                    len(grouped[label]),
                    float(np.median(grouped[label])) if len(grouped[label]) else float("nan"),
                )
                for label in CONGESTION_BINS
            ],
            title=f"Dataset {name}: users bid up fees under congestion (Fig 4c)",
        )
    )

    by_band = auditor.delay_by_fee_band(include_censored=True)
    print(
        render_table(
            ["fee band", "txs", "median delay", "p90 delay"],
            [
                (
                    label,
                    len(by_band[label]),
                    float(np.median(by_band[label])) if len(by_band[label]) else float("nan"),
                    float(np.percentile(by_band[label], 90)) if len(by_band[label]) else float("nan"),
                )
                for label in FEE_BAND_LABELS
            ],
            title=f"Dataset {name}: ...and paying more works (Fig 5/12)",
        )
    )
    print()


def fee_advice(dataset) -> None:
    """What a norm-assuming wallet would recommend right now."""
    estimator = NormBasedFeeEstimator(window=24)
    blocks = list(dataset.chain)
    rows = [
        (f"within {target} block(s)",
         estimator.estimate(blocks, target).fee_rate_sat_vb)
        for target in (1, 3, 6, 10)
    ]
    print(
        render_table(
            ["confirmation target", "suggested fee (sat/vB)"],
            rows,
            title="Wallet-style fee suggestions from recent blocks",
        )
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"Building dataset A and B analogues at scale {scale}...\n")
    dataset_a = build_dataset_a(scale=scale)
    dataset_b = build_dataset_b(scale=scale)
    study("A (Feb-Mar 2019, default node)", dataset_a)
    study("B (June 2019, permissive node)", dataset_b)
    fee_advice(dataset_a)


if __name__ == "__main__":
    main()
