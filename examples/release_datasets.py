#!/usr/bin/env python3
"""Build and release the curated datasets, as the paper's authors did.

Produces, for each of the three dataset analogues:

* the canonical gzip-JSON archive (loadable with
  :func:`repro.datasets.load_dataset`, chain-validated on load), and
* flat CSV tables (transactions, blocks, mempool sizes, pools) that
  open anywhere.

Run:  python examples/release_datasets.py [scale] [output_dir]
"""

import sys
from pathlib import Path

from repro.datasets import (
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
    export_csv,
    load_dataset,
    save_dataset,
)


def release(name: str, dataset, out_dir: Path) -> None:
    archive = save_dataset(dataset, out_dir / f"dataset_{name}.json.gz")
    kb = archive.stat().st_size / 1024
    print(f"dataset {name}: {archive} ({kb:.0f} KiB)")

    csv_dir = out_dir / f"dataset_{name}_csv"
    counts = export_csv(dataset, csv_dir)
    for filename, rows in counts.items():
        print(f"  {csv_dir / filename}: {rows} rows")

    # Round-trip sanity: a release must load back bit-identically.
    restored = load_dataset(archive)
    assert restored.chain.tip_hash == dataset.chain.tip_hash
    assert restored.tx_count == dataset.tx_count
    print(f"  round-trip verified (tip {dataset.chain.tip_hash[:16]}…)\n")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("release")
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"Building dataset analogues at scale {scale} into {out_dir}/ ...\n")
    release("A", build_dataset_a(scale=scale), out_dir)
    release("B", build_dataset_b(scale=scale), out_dir)
    release("C", build_dataset_c(scale=scale), out_dir)
    print("Done. Load archives with repro.datasets.load_dataset(), or read")
    print("the CSVs with any tool (pandas, R, a spreadsheet).")


if __name__ == "__main__":
    main()
