#!/usr/bin/env python3
"""Dark-fee forensics: detect opaque acceleration and quantify its harm.

Three steps, mirroring and extending §5.4:

1. price a mempool snapshot against the acceleration service (Fig 14);
2. detect accelerated transactions in BTC.com's blocks via the SPPE
   threshold (Table 4) and — something the paper could not do — score
   the detector's recall against ground truth;
3. quantify the §6 harm: how much dark fees bias the fee estimates that
   honest wallets compute from committed transactions.

Run:  python examples/dark_fee_forensics.py [scale]
"""

import sys

import numpy as np

from repro import Auditor, build_dataset_a, build_dataset_c
from repro.analysis.tables import render_kv, render_table
from repro.core.fee_estimator import estimator_bias_from_dark_fees
from repro.mining.acceleration import AccelerationPricer
from repro.simulation.scenarios import BTC_COM_SERVICE


def price_snapshot(dataset) -> None:
    """Fig 14: quote every pending transaction in a congested snapshot."""
    snapshot = max(dataset.snapshots, key=lambda s: s.tx_count)
    pricer = AccelerationPricer()
    multiples = [
        pricer.quote(tx.txid, tx.fee).acceleration_fee / tx.fee
        for tx in snapshot.txs
        if tx.fee > 0
    ]
    multiples = np.asarray(multiples)
    print(
        render_kv(
            [
                ("pending transactions priced", multiples.size),
                ("median quote (x public fee)", float(np.median(multiples))),
                ("mean quote (x public fee)", float(multiples.mean())),
                ("99th percentile", float(np.percentile(multiples, 99))),
            ],
            title="Step 1 — acceleration quotes vs public fees (Fig 14)",
        )
    )
    print(
        "  had users offered these fees publicly, every miner would have\n"
        "  committed the transactions first — paying one pool privately\n"
        "  keeps the fee opaque to the rest of the network.\n"
    )


def detect(auditor: Auditor) -> frozenset:
    """Table 4 + recall scoring."""
    report = auditor.dark_fee_sweep(
        "BTC.com", service_name=BTC_COM_SERVICE, rng=np.random.default_rng(14)
    )
    scores = {
        s.threshold: s
        for s in auditor.dark_fee_scores("BTC.com", service_name=BTC_COM_SERVICE)
    }
    rows = []
    for row in report.rows:
        score = scores.get(row.threshold)
        rows.append(
            (
                f">={row.threshold:g}%",
                row.candidate_count,
                row.accelerated_count,
                row.precision,
                score.recall if score else float("nan"),
            )
        )
    print(
        render_table(
            ["SPPE", "# candidates", "# confirmed", "precision", "recall*"],
            rows,
            title="Step 2 — SPPE sweep over BTC.com blocks (Table 4 + recall)",
        )
    )
    print(
        "  *recall is measurable only because the simulator knows the\n"
        "   ground truth; the paper could only query the public checker.\n"
    )
    return auditor.dataset.accelerated_txids(BTC_COM_SERVICE)


def estimator_harm(auditor: Auditor, accelerated: frozenset) -> None:
    """The §6 concern: dark fees poison wallet fee estimation."""
    blocks = auditor.dataset.blocks_of("BTC.com")
    rows = []
    for target in (1, 3, 10):
        naive, corrected = estimator_bias_from_dark_fees(
            blocks, accelerated, target_blocks=target, window=60
        )
        bias = (
            (corrected.fee_rate_sat_vb - naive.fee_rate_sat_vb)
            / corrected.fee_rate_sat_vb
            * 100.0
            if corrected.fee_rate_sat_vb
            else 0.0
        )
        rows.append(
            (
                f"{target} block(s)",
                naive.fee_rate_sat_vb,
                corrected.fee_rate_sat_vb,
                f"{bias:.1f}%",
            )
        )
    print(
        render_table(
            ["confirmation target", "naive est. (sat/vB)", "dark-fee-free est.", "underestimate"],
            rows,
            title="Step 3 — fee-estimator bias from opaque fees (§6)",
        )
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Building datasets at scale {scale}...\n")
    dataset_a = build_dataset_a(scale=scale)
    dataset_c = build_dataset_c(scale=scale)
    auditor = Auditor(dataset_c)

    price_snapshot(dataset_a)
    accelerated = detect(auditor)
    estimator_harm(auditor, accelerated)


if __name__ == "__main__":
    main()
