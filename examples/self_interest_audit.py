#!/usr/bin/env python3
"""Deep self-interest audit: the full owner x miner acceleration matrix.

The paper's §5.2 asks, for each pool's self-interest transactions and
each large miner, whether that miner commits them disproportionately
often.  This example renders the full matrix of observed-vs-expected
shares and both directional p-values, then summarises which edges the
evidence supports — including cross-pool (collusion) edges.

It also demonstrates the windowed variant of the test (§5.1.3): the run
is split into halves, per-window p-values are combined with Fisher's
method, showing how the audit copes with drifting hash rates.

Run:  python examples/self_interest_audit.py [scale]
"""

import sys

from repro import Auditor, build_dataset_c
from repro.analysis.tables import render_table
from repro.core.stattests import (
    STRONG_EVIDENCE_P,
    prioritization_test,
    windowed_prioritization_test,
)


def acceleration_matrix(auditor: Auditor, owners, targets) -> None:
    """Render observed share / theta0 per (owner, target) pair."""
    rows = []
    for owner in owners:
        txids = auditor.dataset.inferred_self_interest_txids(owner)
        if not txids:
            continue
        cells = [owner]
        for target in targets:
            result = auditor.prioritization_test_for(target, txids)
            if result.y == 0:
                cells.append("-")
                continue
            marker = "**" if result.accelerates(STRONG_EVIDENCE_P) else "  "
            cells.append(
                f"{result.observed_share:.2f}/{result.theta0:.2f}{marker}"
            )
        rows.append(tuple(cells))
    print(
        render_table(
            ["txs of \\ miner"] + list(targets),
            rows,
            title=(
                "Observed share of c-blocks vs expected (theta0); "
                "** = acceleration at p < 0.001"
            ),
        )
    )


def windowed_check(auditor: Auditor, owner: str, target: str) -> None:
    """Split the run into halves and combine p-values via Fisher."""
    dataset = auditor.dataset
    txids = dataset.inferred_self_interest_txids(owner)
    records = [
        dataset.tx_records[t]
        for t in txids
        if dataset.tx_records[t].commit_height is not None
    ]
    if not records:
        return
    midpoint = dataset.block_count // 2
    windows = []
    for lo, hi in ((0, midpoint), (midpoint, dataset.block_count)):
        heights = {
            r.commit_height for r in records if lo <= r.commit_height < hi
        }
        window_blocks = [
            dataset.block_pools[h] for h in range(lo, hi) if h in dataset.block_pools
        ]
        theta0 = (
            window_blocks.count(target) / len(window_blocks)
            if window_blocks
            else 0.0
        )
        miners = [dataset.block_pools[h] for h in sorted(heights)]
        if 0.0 < theta0 < 1.0 and miners:
            windows.append((theta0, miners))
    if len(windows) < 2:
        return
    combined = windowed_prioritization_test(target, windows)
    single = prioritization_test(
        target,
        auditor.dataset.hash_rate_of(target),
        auditor.dataset.c_block_miners(txids),
    ).p_accelerate
    print(
        f"\nWindowed test ({owner} txs @ {target}): "
        f"single-window p={single:.2e}, Fisher-combined p={combined:.2e}"
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"Building dataset C analogue at scale {scale}...")
    dataset = build_dataset_c(scale=scale)
    auditor = Auditor(dataset)

    top = [e.pool for e in dataset.hash_rates() if e.pool != "unknown"]
    owners = top[:10]
    targets = [p for p in top if dataset.hash_rate_of(p) >= 0.035]

    acceleration_matrix(auditor, owners, targets)

    print("\nSPPE corroboration for flagged owner/miner pairs:")
    for row in auditor.self_interest_table(owner_pools=owners):
        if row.test.accelerates(STRONG_EVIDENCE_P):
            print(
                f"  {row.target_pool:>18} lifts {row.owner_pool:<18}"
                f" SPPE={row.sppe:6.1f}%  (x={row.test.x}, y={row.test.y})"
            )

    windowed_check(auditor, "F2Pool", "F2Pool")
    windowed_check(auditor, "SlushPool", "ViaBTC")


if __name__ == "__main__":
    main()
