#!/usr/bin/env python3
"""Evented P2P substrate demo: gossip, mining, observation, skew.

Everything the audit later measures happens here in miniature, on the
fully evented reference network (no vectorised shortcuts): transactions
flood a random peer graph, two observer nodes with different
configurations watch their mempools (like the paper's dataset-A and
dataset-B nodes), a pool mines blocks from *its own* view, and the
arrival-time skew between nodes — the reason the paper's violation
test needs an ε — is printed at the end.

Run:  python examples/p2p_network_demo.py
"""

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.mining.pool import MiningPool
from repro.network.events import EventScheduler
from repro.network.node import FullNode, NodeConfig, make_observer
from repro.network.p2p import build_network
from repro.chain.transaction import TransactionBuilder
from repro.chain.address import AddressFactory


def main() -> None:
    rng = np.random.default_rng(2021)

    # The cast: a default observer (dataset A style), a permissive
    # wide-peering observer (dataset B style), one miner, and relays.
    observer_a = make_observer("observer-A", min_fee_rate=1.0, max_peers=8)
    observer_b = make_observer("observer-B", min_fee_rate=0.0, max_peers=125)
    miner_node = FullNode(NodeConfig(name="miner", min_fee_rate=0.0))
    relays = [FullNode(NodeConfig(name=f"relay-{i}")) for i in range(10)]
    network = build_network(
        [observer_a, observer_b, miner_node] + relays, rng, target_degree=6
    )
    print(f"network: {len(network.nodes)} nodes, "
          f"{network.graph().number_of_edges()} links")

    scheduler = EventScheduler()
    network.schedule_snapshots(scheduler, end_time=1800.0)

    # Users broadcast 150 transactions over ~20 minutes, including a
    # handful of zero-fee ones only observer B will admit.
    builder = TransactionBuilder("demo")
    addresses = AddressFactory("demo-users")
    txs = []
    for index in range(150):
        fee_rate = float(rng.lognormal(np.log(20.0), 1.0))
        vsize = int(rng.integers(150, 1500))
        fee = 0 if index % 30 == 0 else max(int(fee_rate * vsize), 1)
        tx = builder.build(addresses.next(), value=10_000, fee=fee, vsize=vsize, nonce=index)
        txs.append(tx)
        origin = relays[index % len(relays)]

        def inject(s, tx=tx, origin=origin):
            network.broadcast_transaction(tx, origin, s)
            if tx.fee == 0:
                # Norm III in action: default relays refuse zero-fee
                # transactions, so they never propagate — a user must
                # hand them to a permissive node directly (as the
                # paper's dataset-B node was configured to accept).
                observer_b.accept_transaction(tx, s.now)

        scheduler.schedule(float(rng.uniform(0, 1200)), inject)

    # The miner finds blocks at t=600 and t=1500.
    pool = MiningPool(name="DemoPool", marker="/DemoPool/", hash_share=1.0)
    chain = Blockchain()

    def mine(s):
        block = pool.assemble_block(
            height=chain.height + 1,
            prev_hash=chain.tip_hash,
            timestamp=s.now,
            entries=miner_node.mempool.entries(),
        )
        chain.append(block)
        network.broadcast_block(block, miner_node, s)
        print(
            f"t={s.now:7.1f}s  mined block {block.height}: "
            f"{block.tx_count} txs, {block.total_fees} sat fees, "
            f"{block.vsize} vB"
        )

    scheduler.schedule(600.0, mine)
    scheduler.schedule(1500.0, mine)
    scheduler.run_until(1800.0)

    # What each observer saw.
    for observer in (observer_a, observer_b):
        store = observer.snapshot_store()
        counts = [s.tx_count for s in store]
        print(
            f"{observer.name}: {len(store)} snapshots, "
            f"peak pending {max(counts)} txs, final {counts[-1]}"
        )
    zero_fee = [tx for tx in txs if tx.fee == 0]
    print(
        f"zero-fee txs ever admitted: observer-A "
        f"{sum(observer_a.has_seen_tx(t.txid) for t in zero_fee)} "
        f"(default 1 sat/vB floor), observer-B "
        f"{sum(observer_b.has_seen_tx(t.txid) for t in zero_fee)} "
        "(no floor, direct submission)"
    )

    # Propagation skew: how differently did A and the miner see arrivals?
    skews = []
    for snapshot in observer_a.snapshot_store():
        for stx in snapshot.txs:
            miner_arrival = miner_node.mempool.arrival_time(stx.txid)
            if miner_arrival is not None:
                skews.append(abs(stx.arrival_time - miner_arrival))
    if skews:
        skews = np.asarray(skews)
        print(
            f"observer-vs-miner arrival skew: median {np.median(skews):.2f}s, "
            f"p99 {np.percentile(skews, 99):.2f}s "
            "(the reason the violation test uses an epsilon)"
        )


if __name__ == "__main__":
    main()
