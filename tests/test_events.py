"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.network.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(5.0, lambda s: fired.append("b"))
        scheduler.schedule(1.0, lambda s: fired.append("a"))
        scheduler.schedule(9.0, lambda s: fired.append("c"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for tag in "abc":
            scheduler.schedule(1.0, lambda s, t=tag: fired.append(t))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(3.0, lambda s: seen.append(s.now))
        scheduler.run()
        assert seen == [3.0]
        assert scheduler.now == 3.0

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler(start_time=10.0)
        with pytest.raises(ValueError):
            scheduler.schedule(5.0, lambda s: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_in(-1.0, lambda s: None)

    def test_schedule_in_is_relative(self):
        scheduler = EventScheduler(start_time=100.0)
        times = []
        scheduler.schedule_in(5.0, lambda s: times.append(s.now))
        scheduler.run()
        assert times == [105.0]

    def test_handlers_can_schedule_followups(self):
        scheduler = EventScheduler()
        fired = []

        def first(s):
            fired.append("first")
            s.schedule_in(1.0, lambda s2: fired.append("second"))

        scheduler.schedule(0.0, first)
        scheduler.run()
        assert fired == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda s: fired.append("x"))
        handle.cancel()
        scheduler.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda s: None)
        scheduler.schedule(2.0, lambda s: None)
        handle.cancel()
        assert scheduler.pending == 1


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda s: fired.append(1))
        scheduler.schedule(5.0, lambda s: fired.append(5))
        executed = scheduler.run_until(3.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.now == 3.0  # clock advanced to the boundary

    def test_run_until_inclusive(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(3.0, lambda s: fired.append(3))
        scheduler.run_until(3.0)
        assert fired == [3]

    def test_max_events_cap(self):
        scheduler = EventScheduler()
        fired = []
        for t in range(5):
            scheduler.schedule(float(t), lambda s, t=t: fired.append(t))
        scheduler.run(max_events=2)
        assert fired == [0, 1]

    def test_processed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda s: None)
        scheduler.run()
        assert scheduler.processed == 1

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False
