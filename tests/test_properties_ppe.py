"""Property-based tests for PPE/SPPE and the norm predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.norms import CpfpFilter, percentile_ranks, predict_block_positions
from repro.core.ppe import block_ppe, per_transaction_sppe, sppe

from conftest import TxFactory, make_test_block

fee_lists = st.lists(
    st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=40
)


def block_from_fees(fees):
    txf = TxFactory("prop-ppe")
    txs = [txf.tx(fee=fee, vsize=100, nonce=i) for i, fee in enumerate(fees)]
    return make_test_block(txs), txs


@given(fees=fee_lists)
def test_ppe_bounded(fees):
    block, _ = block_from_fees(fees)
    result = block_ppe(block, CpfpFilter.NONE)
    assert result is not None
    assert 0.0 <= result.ppe <= 100.0


@given(fees=fee_lists)
def test_sorted_block_has_zero_ppe(fees):
    block, _ = block_from_fees(sorted(fees, reverse=True))
    result = block_ppe(block, CpfpFilter.NONE)
    assert result.ppe == pytest.approx(0.0)


@given(fees=fee_lists)
def test_signed_errors_sum_to_zero_over_block(fees):
    # Percentile ranks are a permutation in both orders, so the signed
    # errors cancel exactly when summed over the whole block.
    block, _ = block_from_fees(fees)
    errors = per_transaction_sppe([block], CpfpFilter.NONE)
    assert sum(errors.values()) == pytest.approx(0.0, abs=1e-6)


@given(fees=fee_lists)
def test_predictions_are_rank_permutations(fees):
    block, _ = block_from_fees(fees)
    predictions = predict_block_positions(block, CpfpFilter.NONE)
    ranks = percentile_ranks(len(predictions))
    assert sorted(p.observed_rank for p in predictions) == pytest.approx(ranks)
    assert sorted(p.predicted_rank for p in predictions) == pytest.approx(ranks)


@given(fees=fee_lists)
def test_predicted_ranks_decrease_with_fee_rate(fees):
    block, _ = block_from_fees(fees)
    predictions = predict_block_positions(block, CpfpFilter.NONE)
    ordered = sorted(predictions, key=lambda p: -p.fee_rate)
    ranks = [p.predicted_rank for p in ordered]
    assert ranks == sorted(ranks)


@given(fees=st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=20))
def test_sppe_of_all_txs_is_zero_mean(fees):
    block, txs = block_from_fees(fees)
    result = sppe([block], [t.txid for t in txs], CpfpFilter.NONE)
    assert result.tx_count == len(txs)
    assert result.sppe == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=30)
@given(
    count=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reversed_sorted_block_signed_errors(count, seed):
    # For a block mined in *reverse* fee-rate order, a transaction with
    # predicted rank p sits at observed rank 100-p, so its signed error
    # is exactly 2p - 100 (top tx: -100, bottom tx: +100).
    txf = TxFactory(f"prop-sym-{seed}")
    txs = [
        txf.tx(fee=(count - i) * 1000 + seed, vsize=100, nonce=i)
        for i in range(count)
    ]  # distinct, strictly decreasing fee-rates
    backward = make_test_block(list(reversed(txs)))
    errors = per_transaction_sppe([backward], CpfpFilter.NONE)
    ranks = percentile_ranks(count)
    for predicted_rank, tx in zip(ranks, txs):
        assert errors[tx.txid] == pytest.approx(2 * predicted_rank - 100.0, abs=1e-6)
