"""Tests for the experiment framework plumbing and dataset builders."""

import pytest

from repro.analysis.base import (
    DataContext,
    ExperimentResult,
    ShapeCheck,
    check,
    paper_vs_measured_rows,
)
from repro.datasets.builder import (
    build_dataset,
    clear_memory_cache,
)
from repro.datasets.io import dataset_path
from repro.simulation.scenarios import honest_scenario


class TestShapeChecks:
    def test_check_constructor_coerces_bool(self):
        assert check("x", 1).passed is True
        assert check("x", 0).passed is False

    def test_result_report_contains_status_lines(self):
        result = ExperimentResult(
            experiment_id="demo",
            title="Demo",
            paper={"a": 1},
            measured={"a": 2},
            rendered="table",
            checks=[check("good", True), check("bad", False, "detail")],
        )
        report = result.report()
        assert "[PASS] good" in report
        assert "[FAIL] bad (detail)" in report
        assert not result.all_passed
        assert [c.description for c in result.failed_checks()] == ["bad"]

    def test_paper_vs_measured_rows_union(self):
        rows = paper_vs_measured_rows({"a": 1, "b": 2}, {"b": 3, "c": 4})
        as_dict = {row[0]: (row[1], row[2]) for row in rows}
        assert as_dict["a"] == (1, "-")
        assert as_dict["b"] == (2, 3)
        assert as_dict["c"] == ("-", 4)


class TestDataContext:
    def test_datasets_memoised_per_context(self):
        ctx = DataContext(scale=0.04)
        first = ctx.dataset_a()
        second = ctx.dataset_a()
        assert first is second

    def test_scale_recorded(self):
        assert DataContext(scale=0.5).scale == 0.5


class TestBuilderCaching:
    def test_memory_cache_round_trip(self):
        clear_memory_cache()
        scenario = honest_scenario(seed=404, blocks=15)
        first = build_dataset(scenario)
        # A fresh-but-identical scenario hits the memo.
        second = build_dataset(honest_scenario(seed=404, blocks=15))
        assert first is second
        clear_memory_cache()

    def test_disk_cache_round_trip(self, tmp_path):
        clear_memory_cache()
        scenario = honest_scenario(seed=405, blocks=15)
        first = build_dataset(scenario, cache_dir=tmp_path, use_memory_cache=False)
        cache_file = dataset_path(tmp_path, scenario.name, scenario.seed)
        assert cache_file.exists()
        second = build_dataset(
            honest_scenario(seed=405, blocks=15),
            cache_dir=tmp_path,
            use_memory_cache=False,
        )
        assert second.chain.tip_hash == first.chain.tip_hash
        assert second.tx_count == first.tx_count

    def test_different_seeds_do_not_collide(self):
        clear_memory_cache()
        a = build_dataset(honest_scenario(seed=1, blocks=15))
        b = build_dataset(honest_scenario(seed=2, blocks=15))
        assert a.chain.tip_hash != b.chain.tip_hash
        clear_memory_cache()


class TestEventedHelpers:
    def test_run_evented_scenario_convenience(self):
        from repro.chain.transaction import TransactionBuilder
        from repro.mining.pool import MiningPool
        from repro.simulation.evented import run_evented_scenario
        from repro.simulation.workload import PlannedTx

        builder = TransactionBuilder("evented-conv")
        plan = [
            PlannedTx(
                broadcast_time=float(i * 20),
                tx=builder.build("x", 1000, fee=1000 + i, vsize=200, nonce=i),
            )
            for i in range(20)
        ]
        pools = [MiningPool(name="Solo", marker="/Solo/", hash_share=1.0)]
        dataset = run_evented_scenario(
            plan, pools, duration=3600.0, block_interval=600.0
        )
        assert dataset.block_count >= 1
        committed = sum(1 for r in dataset.tx_records.values() if r.committed)
        assert committed > 10

    def test_evented_requires_pools(self):
        from repro.simulation.evented import EventedConfig, EventedSimulation
        from repro.simulation.rng import RngStreams

        with pytest.raises(ValueError):
            EventedSimulation(EventedConfig(duration=10.0), [], RngStreams(0))
