"""Unit tests for the norm-assuming fee estimator."""

import pytest

from repro.core.fee_estimator import (
    NormBasedFeeEstimator,
    estimator_bias_from_dark_fees,
)

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("fees")


def blocks_with_rates(txf, per_block_rates):
    blocks = []
    prev = "0" * 64
    nonce = 0
    for height, rates in enumerate(per_block_rates):
        txs = []
        for rate in rates:
            nonce += 1
            txs.append(txf.tx(fee=int(rate * 100), vsize=100, nonce=nonce))
        block = make_test_block(txs, height=height, prev_hash=prev, timestamp=float(height))
        blocks.append(block)
        prev = block.block_hash
    return blocks


class TestEstimator:
    def test_urgent_target_costs_more(self, txf):
        blocks = blocks_with_rates(txf, [[1, 10, 50, 100, 200]] * 5)
        estimator = NormBasedFeeEstimator()
        fast = estimator.estimate(blocks, target_blocks=1)
        slow = estimator.estimate(blocks, target_blocks=10)
        assert fast.fee_rate_sat_vb > slow.fee_rate_sat_vb

    def test_estimate_tracks_market_level(self, txf):
        cheap_blocks = blocks_with_rates(txf, [[2, 3, 4]] * 4)
        pricey_blocks = blocks_with_rates(txf, [[200, 300, 400]] * 4)
        estimator = NormBasedFeeEstimator()
        assert (
            estimator.estimate(pricey_blocks).fee_rate_sat_vb
            > estimator.estimate(cheap_blocks).fee_rate_sat_vb
        )

    def test_window_limits_lookback(self, txf):
        old = blocks_with_rates(txf, [[1000, 1000]] * 3)
        recent = blocks_with_rates(txf, [[5, 5]] * 3)
        # Rebuild `recent` to continue heights after `old`.
        blocks = old + blocks_with_rates(txf, [[5, 5]] * 3)
        estimator = NormBasedFeeEstimator(window=3)
        estimate = estimator.estimate(blocks, target_blocks=1)
        assert estimate.fee_rate_sat_vb < 100
        assert estimate.based_on_blocks == 3

    def test_empty_chain_returns_minimum(self):
        estimate = NormBasedFeeEstimator().estimate([], target_blocks=1)
        assert estimate.fee_rate_sat_vb == 1.0
        assert estimate.based_on_txs == 0

    def test_floor_at_min_relay(self, txf):
        blocks = blocks_with_rates(txf, [[0.01, 0.02]] * 3)
        estimate = NormBasedFeeEstimator().estimate(blocks)
        assert estimate.fee_rate_sat_vb >= 1.0

    def test_invalid_args(self, txf):
        with pytest.raises(ValueError):
            NormBasedFeeEstimator(window=0)
        with pytest.raises(ValueError):
            NormBasedFeeEstimator().estimate([], target_blocks=0)


class TestDarkFeeBias:
    def test_accelerated_txs_drag_estimate_down(self, txf):
        # Blocks full of healthy fees plus cheap accelerated interlopers.
        blocks = []
        accelerated = set()
        prev = "0" * 64
        nonce = 0
        for height in range(6):
            txs = []
            for rate in (60, 70, 80, 90):
                nonce += 1
                txs.append(txf.tx(fee=rate * 100, vsize=100, nonce=nonce))
            nonce += 1
            dark = txf.tx(fee=100, vsize=100, nonce=nonce)  # 1 sat/vB
            accelerated.add(dark.txid)
            block = make_test_block(
                [dark] + txs, height=height, prev_hash=prev, timestamp=float(height)
            )
            blocks.append(block)
            prev = block.block_hash
        naive, corrected = estimator_bias_from_dark_fees(
            blocks, frozenset(accelerated), target_blocks=10
        )
        assert corrected.fee_rate_sat_vb >= naive.fee_rate_sat_vb
        assert corrected.based_on_txs < naive.based_on_txs

    def test_no_dark_fees_no_bias(self, txf):
        blocks = blocks_with_rates(txf, [[10, 20, 30]] * 4)
        naive, corrected = estimator_bias_from_dark_fees(blocks, frozenset())
        assert naive.fee_rate_sat_vb == pytest.approx(corrected.fee_rate_sat_vb)
