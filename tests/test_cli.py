"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets.io import load_dataset


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        ids = [line.split()[0] for line in out.strip().splitlines()]
        assert "fig1" in ids and "table5" in ids and "fig14" in ids
        assert "ext_norms" in ids and "abl_epsilon" in ids
        assert "ext_faults" in ids
        # 16 paper artefacts + 9 extensions/ablations.
        assert len(ids) == 25


class TestRun:
    def test_cheap_experiment_runs(self, capsys):
        code = main(["run", "table5", "--scale", "0.05", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 5" in out
        assert "[PASS]" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_report_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(
            ["run", "fig1", "--scale", "0.05", "--no-cache", "--out", str(out_file)]
        )
        assert code == 0
        assert "Fig 1" in out_file.read_text()

    def test_parallel_report_file_matches_sequential(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        seq_file = tmp_path / "seq.txt"
        par_file = tmp_path / "par.txt"
        common = ["fig1", "table5", "--scale", "0.04", "--cache-dir", str(cache)]
        assert main(["run", *common, "--out", str(seq_file)]) == 0
        assert (
            main(["run", *common, "--jobs", "2", "--out", str(par_file)]) == 0
        )
        capsys.readouterr()
        assert par_file.read_bytes() == seq_file.read_bytes()

    def test_cache_stats_reported(self, tmp_path, capsys):
        from repro.analysis.runner import _reset_process_caches

        cache = tmp_path / "cache"
        args = ["run", "fig5", "--scale", "0.04", "--cache-dir", str(cache)]
        _reset_process_caches()
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "dataset cache" in cold and "1 build(s)" in cold
        # A fresh process (simulated by dropping in-memory memos) loads
        # the dataset from disk instead of re-simulating.
        _reset_process_caches()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s)" in warm and "0 build(s)" in warm
        _reset_process_caches()


class TestBench:
    def test_bench_writes_json_document(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "fig5",
                "--scale", "0.04",
                "--jobs", "2",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        cells = document["measurements"]
        for cell in (
            "cold_sequential",
            "warm_sequential",
            "cold_parallel",
            "warm_parallel",
        ):
            assert cells[cell]["wall_seconds"] > 0
        assert cells["cold_sequential"]["cache"]["builds"] >= 1
        assert cells["warm_sequential"]["cache"]["builds"] == 0
        assert document["speedups"]["warm_over_cold_sequential"] > 0
        identical = document["reports_byte_identical"]
        assert identical["parallel_vs_sequential_warm"]
        assert identical["warm_vs_cold_sequential"]


class TestDataset:
    def test_dataset_export(self, tmp_path, capsys):
        out_file = tmp_path / "a.json.gz"
        code = main(["dataset", "A", "--scale", "0.05", "--out", str(out_file)])
        assert code == 0
        dataset = load_dataset(out_file)
        assert dataset.block_count > 0


class TestFaults:
    def test_small_sweep_reports_power_and_cliff(self, tmp_path, capsys):
        out_file = tmp_path / "faults.txt"
        code = main(
            [
                "faults",
                "--scale", "0.04",
                "--loss", "0", "0.5",
                "--downtime", "0",
                "--seeds", "11",
                "--reps", "1",
                "--out", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Detection power vs loss" in out
        assert "power cliff" in out
        assert "Detection power vs loss" in out_file.read_text()
