"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets.io import load_dataset


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        ids = [line.split()[0] for line in out.strip().splitlines()]
        assert "fig1" in ids and "table5" in ids and "fig14" in ids
        assert "ext_norms" in ids and "abl_epsilon" in ids
        assert "ext_faults" in ids
        assert "ext_adversaries" in ids
        # 16 paper artefacts + 10 extensions/ablations.
        assert len(ids) == 26


class TestRun:
    def test_cheap_experiment_runs(self, capsys):
        code = main(["run", "table5", "--scale", "0.05", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 5" in out
        assert "[PASS]" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_report_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(
            ["run", "fig1", "--scale", "0.05", "--no-cache", "--out", str(out_file)]
        )
        assert code == 0
        assert "Fig 1" in out_file.read_text()

    def test_parallel_report_file_matches_sequential(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        seq_file = tmp_path / "seq.txt"
        par_file = tmp_path / "par.txt"
        common = ["fig1", "table5", "--scale", "0.04", "--cache-dir", str(cache)]
        assert main(["run", *common, "--out", str(seq_file)]) == 0
        assert (
            main(["run", *common, "--jobs", "2", "--out", str(par_file)]) == 0
        )
        capsys.readouterr()
        assert par_file.read_bytes() == seq_file.read_bytes()

    def test_cache_stats_reported(self, tmp_path, capsys):
        from repro.analysis.runner import _reset_process_caches

        cache = tmp_path / "cache"
        args = ["run", "fig5", "--scale", "0.04", "--cache-dir", str(cache)]
        _reset_process_caches()
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "dataset cache" in cold and "1 build(s)" in cold
        # A fresh process (simulated by dropping in-memory memos) loads
        # the dataset from disk instead of re-simulating.
        _reset_process_caches()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s)" in warm and "0 build(s)" in warm
        _reset_process_caches()


class TestTrace:
    def test_trace_writes_wellformed_metrics_json(self, tmp_path, capsys):
        from repro.analysis.runner import _reset_process_caches

        trace_file = tmp_path / "obs.json"
        _reset_process_caches()
        code = main(
            [
                "run", "fig5",
                "--scale", "0.04",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace",
                "--trace-out", str(trace_file),
            ]
        )
        _reset_process_caches()
        out = capsys.readouterr().out
        assert code == 0
        assert "trace metrics written to" in out
        snap = json.loads(trace_file.read_text())
        assert snap["version"] == 1
        counters = snap["counters"]
        # The traced battery must cover every instrumented layer: the
        # mempool state machine, the engine, GBT, the runner, and the
        # dataset cache (cold build on a fresh --cache-dir).
        for prefix in ("mempool.", "engine.", "gbt.", "runner.", "cache."):
            assert any(name.startswith(prefix) for name in counters), prefix
        assert counters["runner.experiments.ok"] == 1
        assert counters["cache.builds"] == 1
        assert snap["spans"]["engine.run"]["count"] >= 1
        assert snap["spans"]["runner.experiment"]["total_seconds"] > 0

    def test_traced_report_byte_identical_to_untraced(self, tmp_path, capsys):
        from repro.analysis.runner import _reset_process_caches

        cache = tmp_path / "cache"
        plain_file = tmp_path / "plain.txt"
        traced_file = tmp_path / "traced.txt"
        common = ["fig1", "--scale", "0.04", "--cache-dir", str(cache)]
        _reset_process_caches()
        assert main(["run", *common, "--out", str(plain_file)]) == 0
        _reset_process_caches()
        assert (
            main(
                [
                    "run", *common,
                    "--out", str(traced_file),
                    "--trace",
                    "--trace-out", str(tmp_path / "obs.json"),
                ]
            )
            == 0
        )
        _reset_process_caches()
        capsys.readouterr()
        assert traced_file.read_bytes() == plain_file.read_bytes()

    def test_obs_renders_trace_file(self, tmp_path, capsys):
        trace_file = tmp_path / "obs.json"
        assert (
            main(
                [
                    "run", "table5",
                    "--scale", "0.04",
                    "--no-cache",
                    "--trace",
                    "--trace-out", str(trace_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out
        assert "runner.experiments.ok" in out

    def test_obs_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["obs", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_obs_rejects_non_snapshot_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('["not", "a", "snapshot"]')
        code = main(["obs", str(bogus)])
        assert code == 2
        assert "not a repro.obs metrics snapshot" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_json_document(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "fig5",
                "--scale", "0.04",
                "--jobs", "2",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        cells = document["measurements"]
        for cell in (
            "cold_sequential",
            "warm_sequential",
            "cold_parallel",
            "warm_parallel",
        ):
            assert cells[cell]["wall_seconds"] > 0
        assert cells["cold_sequential"]["cache"]["builds"] >= 1
        assert cells["warm_sequential"]["cache"]["builds"] == 0
        # Bench always traces: every cell carries its obs metrics delta.
        for cell in cells.values():
            assert cell["obs"]["counters"]["runner.experiments.ok"] == 1
        assert cells["cold_sequential"]["obs"]["counters"]["cache.builds"] == 1
        assert document["speedups"]["warm_over_cold_sequential"] > 0
        identical = document["reports_byte_identical"]
        assert identical["parallel_vs_sequential_warm"]
        assert identical["warm_vs_cold_sequential"]


class TestRunTimeout:
    def test_generous_timeout_output_identical(self, tmp_path, capsys):
        bare = tmp_path / "bare.txt"
        guarded = tmp_path / "guarded.txt"
        common = ["run", "table5", "--scale", "0.04", "--no-cache"]
        assert main([*common, "--out", str(bare)]) == 0
        assert (
            main([*common, "--timeout", "300", "--out", str(guarded)]) == 0
        )
        capsys.readouterr()
        assert guarded.read_bytes() == bare.read_bytes()

    def test_hung_experiment_fails_cell_not_cli(self, capsys, monkeypatch):
        import time as time_module

        from repro.analysis.experiments import ALL_RUNNERS

        def hang(ctx):
            time_module.sleep(300)

        monkeypatch.setitem(ALL_RUNNERS, "table5", hang)
        # 10s: far below the 300s hang, far above fig1's cold build
        # even on a loaded machine.
        code = main(
            ["run", "table5", "fig1", "--scale", "0.04", "--no-cache",
             "--timeout", "10"]
        )
        out = capsys.readouterr().out
        assert code == 1  # a failed cell, not a hang or a crash
        assert "timed out after 10s (killed)" in out
        assert "Fig 1" in out  # the healthy cell still ran


class TestBenchServiceSuite:
    def test_service_suite_appends_query_storm_cell(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--suite", "service",
                "--service-scale", "0.06",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        cell = document["service"]
        assert cell["benchmark"] == "service-query-storm"
        assert cell["blocks"] > 0
        assert cell["queries_per_second"] > 0
        assert cell["ingest_blocks_per_second"] > 0


class TestServe:
    def test_missing_dataset_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--dataset", str(tmp_path / "nope.json.gz"),
                "--wal-dir", str(tmp_path / "wal"),
            ]
        )
        assert code == 2
        assert "cannot load dataset" in capsys.readouterr().err


class TestDataset:
    def test_dataset_export(self, tmp_path, capsys):
        out_file = tmp_path / "a.json.gz"
        code = main(["dataset", "A", "--scale", "0.05", "--out", str(out_file)])
        assert code == 0
        dataset = load_dataset(out_file)
        assert dataset.block_count > 0


class TestFaults:
    def test_small_sweep_reports_power_and_cliff(self, tmp_path, capsys):
        out_file = tmp_path / "faults.txt"
        code = main(
            [
                "faults",
                "--scale", "0.04",
                "--loss", "0", "0.5",
                "--downtime", "0",
                "--seeds", "11",
                "--reps", "1",
                "--out", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Detection power vs loss" in out
        assert "power cliff" in out
        assert "Detection power vs loss" in out_file.read_text()


class TestAdversaries:
    def test_small_zoo_prints_matrix_and_exports_csv(self, tmp_path, capsys):
        csv_file = tmp_path / "matrix.csv"
        out_file = tmp_path / "scorecard.txt"
        code = main(
            [
                "adversaries",
                "--scale", "0.04",
                "--kinds", "honest", "max-boost",
                "--seeds", "11",
                "--intensities", "1.0",
                "--csv", str(csv_file),
                "--out", str(out_file),
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Detection scorecard" in out
        assert "honest (FPR)" in out
        lines = csv_file.read_text().strip().splitlines()
        assert lines[0] == "kind,test,target_pool,runs,power,fpr,mean_p"
        assert len(lines) == 1 + 2 * 5  # two kinds x five detectors
        assert "Detection scorecard" in out_file.read_text()

    def test_unknown_kind_exits_2(self, capsys):
        code = main(["adversaries", "--kinds", "quantum", "--no-cache"])
        assert code == 2
        assert "unknown adversary kind" in capsys.readouterr().err
