"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.io import load_dataset


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        ids = [line.split()[0] for line in out.strip().splitlines()]
        assert "fig1" in ids and "table5" in ids and "fig14" in ids
        assert "ext_norms" in ids and "abl_epsilon" in ids
        assert "ext_faults" in ids
        # 16 paper artefacts + 9 extensions/ablations.
        assert len(ids) == 25


class TestRun:
    def test_cheap_experiment_runs(self, capsys):
        code = main(["run", "table5", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 5" in out
        assert "[PASS]" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_report_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(["run", "fig1", "--scale", "0.05", "--out", str(out_file)])
        assert code == 0
        assert "Fig 1" in out_file.read_text()


class TestDataset:
    def test_dataset_export(self, tmp_path, capsys):
        out_file = tmp_path / "a.json.gz"
        code = main(["dataset", "A", "--scale", "0.05", "--out", str(out_file)])
        assert code == 0
        dataset = load_dataset(out_file)
        assert dataset.block_count > 0


class TestFaults:
    def test_small_sweep_reports_power_and_cliff(self, tmp_path, capsys):
        out_file = tmp_path / "faults.txt"
        code = main(
            [
                "faults",
                "--scale", "0.04",
                "--loss", "0", "0.5",
                "--downtime", "0",
                "--seeds", "11",
                "--reps", "1",
                "--out", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Detection power vs loss" in out
        assert "power cliff" in out
        assert "Detection power vs loss" in out_file.read_text()
