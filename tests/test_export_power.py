"""Tests for CSV export and the power-analysis helpers."""

import csv

import numpy as np
import pytest

from repro.analysis.ext_power import detection_power, minimum_detectable_y
from repro.datasets.export import (
    BLOCKS_FILE,
    POOLS_FILE,
    SNAPSHOT_SIZES_FILE,
    TRANSACTIONS_FILE,
    export_csv,
)


class TestCsvExport:
    @pytest.fixture(scope="class")
    def exported(self, small_dataset_a, tmp_path_factory):
        directory = tmp_path_factory.mktemp("csv")
        counts = export_csv(small_dataset_a, directory)
        return small_dataset_a, directory, counts

    def test_all_files_written(self, exported):
        _, directory, counts = exported
        for name in (TRANSACTIONS_FILE, BLOCKS_FILE, SNAPSHOT_SIZES_FILE, POOLS_FILE):
            assert (directory / name).exists()
            assert counts[name] > 0

    def test_transaction_rows_match_dataset(self, exported):
        dataset, directory, counts = exported
        assert counts[TRANSACTIONS_FILE] == dataset.tx_count
        with (directory / TRANSACTIONS_FILE).open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == dataset.tx_count
        sample = rows[0]
        record = dataset.tx_records[sample["txid"]]
        assert int(sample["fee_sat"]) == record.fee
        assert int(sample["vsize"]) == record.vsize

    def test_block_rows_match_chain(self, exported):
        dataset, directory, counts = exported
        assert counts[BLOCKS_FILE] == dataset.block_count
        with (directory / BLOCKS_FILE).open() as handle:
            rows = list(csv.DictReader(handle))
        heights = [int(row["height"]) for row in rows]
        assert heights == list(range(dataset.block_count))
        assert all(row["pool"] for row in rows)

    def test_snapshot_sizes_cover_series(self, exported):
        dataset, directory, counts = exported
        assert counts[SNAPSHOT_SIZES_FILE] == len(dataset.size_series)

    def test_pools_table_shares_sum_to_one(self, exported):
        _, directory, _ = exported
        with (directory / POOLS_FILE).open() as handle:
            rows = list(csv.DictReader(handle))
        total = sum(float(row["hash_share"]) for row in rows)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_labels_serialised(self, exported):
        dataset, directory, _ = exported
        with (directory / TRANSACTIONS_FILE).open() as handle:
            rows = list(csv.DictReader(handle))
        labelled = [row for row in rows if row["labels"]]
        # Dataset A has CPFP traffic but also RBF labels at least.
        assert labelled


class TestDetectionPower:
    def test_null_rejection_rate_matches_alpha(self):
        # Under H0 (theta == theta0) the rejection rate is ~alpha.
        power = detection_power(
            0.1, 0.1, 200, alpha=0.01, trials=2000, rng=np.random.default_rng(0)
        )
        assert power < 0.05

    def test_power_grows_with_effect(self):
        rng = np.random.default_rng(1)
        weak = detection_power(0.1, 0.15, 100, rng=rng)
        strong = detection_power(0.1, 0.5, 100, rng=rng)
        assert strong > weak

    def test_power_grows_with_y(self):
        rng = np.random.default_rng(2)
        small = detection_power(0.1, 0.25, 20, rng=rng)
        large = detection_power(0.1, 0.25, 500, rng=rng)
        assert large >= small
        assert large > 0.95

    def test_minimum_detectable_y(self):
        assert minimum_detectable_y(0.07, 0.5) <= 50
        assert minimum_detectable_y(0.07, 0.05) is None  # theta <= theta0
