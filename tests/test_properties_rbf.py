"""Property-based tests: RBF conflict handling under random sequences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.transaction import TransactionBuilder
from repro.mempool.mempool import Mempool


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    operations=st.integers(10, 60),
    rbf=st.booleans(),
)
def test_mempool_never_holds_conflicting_transactions(seed, operations, rbf):
    """Whatever the offer sequence, no two pending txs share an outpoint."""
    rng = np.random.default_rng(seed)
    builder = TransactionBuilder(f"prop-rbf-{seed}")
    pool = Mempool(min_fee_rate=0.0, allow_rbf=rbf)
    history = []
    for step in range(operations):
        if history and rng.random() < 0.4:
            # Offer a replacement of an earlier transaction.
            original = history[int(rng.integers(len(history)))]
            tx = builder.replacement(
                original, fee=int(rng.integers(1, 100_000)), nonce=step
            )
        else:
            tx = builder.build(
                "dest",
                1000,
                fee=int(rng.integers(1, 100_000)),
                vsize=int(rng.integers(100, 1000)),
                nonce=step,
            )
            history.append(tx)
        pool.offer(tx, now=float(step))

        # Invariant: pending outpoints are unique.
        seen = set()
        for entry in pool.entries():
            for txin in entry.tx.inputs:
                assert txin.prevout not in seen
                seen.add(txin.prevout)
        # Invariant: accounting still balances.
        assert pool.total_fees == sum(e.tx.fee for e in pool.entries())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), bumps=st.integers(1, 8))
def test_replacement_chains_keep_best_fee(seed, bumps):
    """Repeated bumping leaves exactly one survivor: the highest valid bid."""
    rng = np.random.default_rng(seed)
    builder = TransactionBuilder(f"prop-chain-{seed}")
    pool = Mempool(min_fee_rate=0.0)
    original = builder.build("dest", 1000, fee=100, vsize=200, nonce=0)
    pool.offer(original, now=0.0)
    best_fee = 100
    for step in range(bumps):
        fee = int(rng.integers(1, 50_000))
        bump = builder.replacement(original, fee=fee, nonce=step + 1)
        result = pool.offer(bump, now=float(step + 1))
        if result.accepted:
            assert fee > best_fee
            best_fee = fee
        else:
            assert fee <= best_fee
    survivors = [
        e for e in pool.entries() if e.tx.inputs == original.inputs
    ]
    assert len(survivors) == 1
    assert survivors[0].tx.fee == best_fee
