"""Differential suite: the vectorized metrics core vs the scalar oracle.

Hypothesis drives randomly shaped chains, snapshots, and binomial-tail
cells through the comparison contract in :mod:`oracle`; the dataset
tests run the same contract over the cached scale-0.1 A/B/C analogues.
Degenerate inputs (empty transaction sets, single-transaction blocks,
all-equal fee-rates, NaN SPPE) get explicit cases.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.block import GENESIS_HASH
from repro.core.norms import CpfpFilter
from repro.core.ppe import chain_ppe, sppe
from repro.core.stattests import binom_tail_lower, binom_tail_upper
from repro.core.vectorized import (
    ChainArrays,
    binom_tail_lower_batch,
    binom_tail_lower_vec,
    binom_tail_upper_batch,
    binom_tail_upper_vec,
    chain_ppe_arrays,
    scalar_mode,
    sppe_arrays,
    windowed_prioritization_test_vec,
)
from repro.core.stattests import windowed_prioritization_test
from repro.datasets.builder import (
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
)
from repro.datasets.cache import DatasetCache

from conftest import TxFactory, make_test_block
from oracle import (
    assert_blocks_equivalent,
    assert_dataset_equivalent,
    assert_p_close,
    assert_pair_counts_equivalent,
    assert_tails_match,
    floats_equal,
)


# ----------------------------------------------------------------------
# Hypothesis: random chains
# ----------------------------------------------------------------------
@st.composite
def random_chain(draw):
    """(blocks, block_pools, all txids): 0-4 blocks, 0-10 txs each.

    Fee draws come from a small range so equal fee-rates (tie-breaking)
    occur often; a tx may spend the previous one in its block, creating
    in-block CPFP children the filter must drop identically.
    """
    factory = TxFactory("vec-oracle")
    block_count = draw(st.integers(min_value=0, max_value=4))
    blocks = []
    pools = {}
    txids = []
    prev_hash = GENESIS_HASH
    for height in range(block_count):
        tx_count = draw(st.integers(min_value=0, max_value=10))
        transactions = []
        for index in range(tx_count):
            fee = draw(st.integers(min_value=1, max_value=40)) * 100
            vsize = draw(st.sampled_from([100, 200, 250]))
            parents = ()
            if transactions and draw(st.booleans()):
                parents = (transactions[-1].txid,)
            tx = factory.tx(fee=fee, vsize=vsize, parents=parents)
            transactions.append(tx)
            txids.append(tx.txid)
        block = make_test_block(
            transactions, height=height, prev_hash=prev_hash,
            timestamp=float(height),
        )
        prev_hash = block.block_hash
        blocks.append(block)
        pool = draw(st.sampled_from(["pool-a", "pool-b", None]))
        if pool is not None:
            pools[height] = pool
    return blocks, pools, txids


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_chains_match_oracle(data):
    blocks, pools, txids = data.draw(random_chain())
    subset_size = data.draw(st.integers(min_value=0, max_value=len(txids)))
    targets = set(txids[:subset_size]) | {"txid-not-committed"}
    cpfp_filter = data.draw(st.sampled_from(list(CpfpFilter)))
    assert_blocks_equivalent(
        blocks, pools, cpfp_filter=cpfp_filter, target_txids=targets
    )


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_chain_pool_restriction_matches_oracle(data):
    blocks, pools, txids = data.draw(random_chain())
    arrays = ChainArrays.from_blocks(blocks, pools)
    targets = set(txids)
    for pool in ("pool-a", "pool-b", "pool-never-seen"):
        pool_blocks = [b for b in blocks if pools.get(b.height) == pool]
        scalar = sppe(pool_blocks, targets)
        vector = sppe_arrays(arrays, targets, pool=pool)
        assert scalar.tx_count == vector.tx_count
        assert floats_equal(scalar.sppe, vector.sppe)
        assert floats_equal(
            scalar.accelerated_fraction, vector.accelerated_fraction
        )


# ----------------------------------------------------------------------
# Hypothesis: random snapshots
# ----------------------------------------------------------------------
snapshot_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e3, allow_nan=False),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(rows=snapshot_rows, epsilon=st.sampled_from([0.0, 0.5, 10.0, 600.0]))
def test_random_snapshots_match_oracle(rows, epsilon):
    times = [row[0] for row in rows]
    rates = [row[1] for row in rows]
    heights = [row[2] for row in rows]
    assert_pair_counts_equivalent(
        times, rates, heights, epsilons=(epsilon, 0.0)
    )


def test_pair_counts_use_small_row_blocks():
    # Exercise the row-blocked path with more rows than one block.
    rng = np.random.default_rng(7)
    count = 700
    assert_pair_counts_equivalent(
        rng.uniform(0, 1000, count).tolist(),
        rng.uniform(0.1, 50, count).tolist(),
        rng.integers(0, 30, count).tolist(),
    )


# ----------------------------------------------------------------------
# Hypothesis + exhaustive: binomial tails
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=80),
    x_offset=st.integers(min_value=-1, max_value=81),
    p=st.one_of(
        st.sampled_from([0.0, 1.0]),
        st.floats(
            min_value=1e-9, max_value=1.0 - 1e-9,
            allow_nan=False, allow_infinity=False,
        ),
    ),
)
def test_tails_match_oracle(n, x_offset, p):
    assert_tails_match(min(x_offset, n + 1), n, p)


def _direct_sum_upper(x: int, n: int, p: float) -> float:
    """P(B ≥ x) by naive fsum of the exact pmf (small n only)."""
    return math.fsum(
        math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
        for k in range(max(x, 0), n + 1)
    )


def _direct_sum_lower(x: int, n: int, p: float) -> float:
    """P(B ≤ x) by naive fsum of the exact pmf (small n only)."""
    return math.fsum(
        math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
        for k in range(0, min(x, n) + 1)
    )


P_GRID = (0.0, 1e-6, 0.05, 0.25, 0.5, 0.731, 0.95, 1.0 - 1e-6, 1.0)


def test_tails_exhaustive_small_n_vs_direct_summation():
    """Every (x, n, p) cell with n ≤ 12 against naive summation.

    This pins the p = 0.0 / p = 1.0 short-circuits (the point-mass
    cases that used to ride through log-space) and every boundary x.
    """
    for n in range(0, 13):
        for x in range(-1, n + 2):
            for p in P_GRID:
                expected_upper = (
                    1.0 if x <= 0 else (0.0 if x > n else _direct_sum_upper(x, n, p))
                )
                expected_lower = (
                    0.0 if x < 0 else (1.0 if x >= n else _direct_sum_lower(x, n, p))
                )
                for impl in (binom_tail_upper, binom_tail_upper_vec):
                    got = impl(x, n, p)
                    assert got == pytest.approx(
                        expected_upper, rel=1e-10, abs=1e-300
                    ), f"upper {impl.__name__} x={x} n={n} p={p}"
                for impl in (binom_tail_lower, binom_tail_lower_vec):
                    got = impl(x, n, p)
                    assert got == pytest.approx(
                        expected_lower, rel=1e-10, abs=1e-300
                    ), f"lower {impl.__name__} x={x} n={n} p={p}"


def test_tails_degenerate_rates_are_exact():
    # p = 0: all mass at B = 0; p = 1: all mass at B = n.  Exact 0/1,
    # no log(0) anywhere near the result.
    for impl in (binom_tail_upper, binom_tail_upper_vec):
        assert impl(0, 10, 0.0) == 1.0
        assert impl(1, 10, 0.0) == 0.0
        assert impl(10, 10, 1.0) == 1.0
        assert impl(11, 10, 1.0) == 0.0
    for impl in (binom_tail_lower, binom_tail_lower_vec):
        assert impl(0, 10, 0.0) == 1.0
        assert impl(-1, 10, 0.0) == 0.0
        assert impl(9, 10, 1.0) == 0.0
        assert impl(10, 10, 1.0) == 1.0


def test_tails_reject_invalid_p():
    for impl in (
        binom_tail_upper,
        binom_tail_lower,
        binom_tail_upper_vec,
        binom_tail_lower_vec,
    ):
        with pytest.raises(ValueError):
            impl(1, 10, -0.1)
        with pytest.raises(ValueError):
            impl(1, 10, 1.1)


def test_batch_tails_match_elementwise():
    xs = list(range(0, 120, 3)) * 2
    upper = binom_tail_upper_batch(xs, 150, 0.21)
    lower = binom_tail_lower_batch(xs, 150, 0.21)
    for x, up, low in zip(xs, upper, lower):
        assert up == binom_tail_upper_vec(x, 150, 0.21)
        assert low == binom_tail_lower_vec(x, 150, 0.21)


def test_windowed_test_matches_oracle():
    windows = [
        (0.2, ["a", "b", "a", "c"]),
        (0.3, []),
        (0.25, ["a"] * 6 + ["c"] * 3),
        (0.1, ["b"]),
    ]
    for pool in ("a", "b", "zzz"):
        for direction in ("accelerate", "decelerate"):
            assert_p_close(
                windowed_prioritization_test(pool, windows, direction),
                windowed_prioritization_test_vec(pool, windows, direction),
                context=f"windowed {pool} {direction}",
            )


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------
def test_empty_chain():
    arrays = ChainArrays.from_blocks([], {})
    assert arrays.block_count == 0 and arrays.tx_count == 0
    assert chain_ppe_arrays(arrays) == []
    result = sppe_arrays(arrays, {"anything"})
    assert result.tx_count == 0
    assert math.isnan(result.sppe) and math.isnan(result.accelerated_fraction)


def test_empty_target_set_gives_nan_sppe():
    factory = TxFactory("vec-degenerate")
    block = make_test_block([factory.tx(fee=500)], height=0)
    arrays = assert_blocks_equivalent([block], {0: "p"}, target_txids=set())
    result = sppe_arrays(arrays, set())
    assert result.tx_count == 0 and math.isnan(result.sppe)


def test_single_tx_blocks_rank_zero():
    factory = TxFactory("vec-single")
    blocks = [
        make_test_block([factory.tx(fee=100 * (h + 1))], height=h)
        for h in range(3)
    ]
    arrays = assert_blocks_equivalent(blocks, {0: "p", 1: "p", 2: "q"})
    assert np.all(arrays.observed_rank == 0.0)
    assert np.all(arrays.predicted_rank == 0.0)
    assert all(b.ppe == 0.0 for b in chain_ppe_arrays(arrays))


def test_all_equal_fee_rates_zero_error():
    factory = TxFactory("vec-ties")
    txs = [factory.tx(fee=1000, vsize=200) for _ in range(8)]
    block = make_test_block(txs, height=0)
    arrays = assert_blocks_equivalent(
        [block], {0: "p"}, target_txids={t.txid for t in txs}
    )
    # The stable tie-break means the norm does not constrain equal
    # fee-rates: zero error everywhere, in both implementations.
    assert np.all(arrays.signed_error == 0.0)


def test_all_cpfp_block_keeps_empty_segment():
    factory = TxFactory("vec-cpfp")
    parent = factory.tx(fee=100)
    child = factory.tx(fee=9000, parents=(parent.txid,))
    block = make_test_block([parent, child], height=0)
    arrays = ChainArrays.from_blocks([block], {}, CpfpFilter.INVOLVED)
    assert arrays.block_count == 1
    assert arrays.counts[0] == 0  # both dropped, segment stays aligned
    assert chain_ppe_arrays(arrays) == chain_ppe([block], CpfpFilter.INVOLVED) == []


def test_unknown_pool_masks_empty():
    factory = TxFactory("vec-owner")
    block = make_test_block([factory.tx()], height=0)
    arrays = ChainArrays.from_blocks([block], {0: "known"})
    assert not arrays.block_mask("never-mined").any()
    assert not arrays.owner_mask(np.arange(arrays.tx_count), "never-mined").any()
    assert arrays.owner_id("never-mined") == -1


def test_scalar_mode_env(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT_SCALAR", raising=False)
    assert not scalar_mode()
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1")
    assert scalar_mode()
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "0")
    assert not scalar_mode()


# ----------------------------------------------------------------------
# Cached scale-0.1 datasets: the full contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def oracle_cache():
    return DatasetCache()


def test_dataset_a_scale01_matches_oracle(oracle_cache):
    assert_dataset_equivalent(build_dataset_a(scale=0.1, cache=oracle_cache))


def test_dataset_b_scale01_matches_oracle(oracle_cache):
    assert_dataset_equivalent(build_dataset_b(scale=0.1, cache=oracle_cache))


def test_dataset_c_scale01_matches_oracle(oracle_cache):
    assert_dataset_equivalent(build_dataset_c(scale=0.1, cache=oracle_cache))


def test_auditor_modes_agree_on_dataset_c(oracle_cache, monkeypatch):
    """Auditor-level cross-check: Table 2/3 + Fig 6/7 in both modes."""
    from repro.core.audit import Auditor

    dataset = build_dataset_c(scale=0.1, cache=oracle_cache)
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1")
    scalar_auditor = Auditor(dataset)
    scalar_table = scalar_auditor.self_interest_table()
    scalar_scam = scalar_auditor.scam_table()
    scalar_dark = scalar_auditor.dark_fee_sweep("BTC.com")
    scalar_grid = scalar_auditor.violation_stats_multi((0.0, 10.0), count=5)
    monkeypatch.delenv("REPRO_AUDIT_SCALAR")
    fast_auditor = Auditor(dataset)
    fast_table = fast_auditor.self_interest_table()
    assert len(scalar_table) == len(fast_table)
    for a, b in zip(scalar_table, fast_table):
        assert (a.owner_pool, a.target_pool, a.test, a.tx_count) == (
            b.owner_pool, b.target_pool, b.test, b.tx_count
        )
        assert floats_equal(a.sppe, b.sppe)
    fast_scam = fast_auditor.scam_table()
    for a, b in zip(scalar_scam, fast_scam):
        assert (a.pool, a.test) == (b.pool, b.test)
        assert floats_equal(a.sppe, b.sppe)
    assert scalar_dark == fast_auditor.dark_fee_sweep("BTC.com")
    assert scalar_grid == fast_auditor.violation_stats_multi(
        (0.0, 10.0), count=5
    )
