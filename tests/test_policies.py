"""Unit tests for ordering policies and misbehaviour wrappers."""

import numpy as np
import pytest

from repro.mempool.mempool import MempoolEntry
from repro.mining.gbt import is_topologically_valid
from repro.mining.policies import (
    CensorPolicy,
    FeeRatePolicy,
    JitterSource,
    MinFeeRatePolicy,
    NoisyPolicy,
    PriorityPolicy,
    PrioritizeSetPolicy,
    address_predicate,
    pseudo_coin_age,
    txid_set_predicate,
)

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("policies")


def entries(txf, specs):
    out = []
    for index, (fee, vsize) in enumerate(specs):
        out.append(
            MempoolEntry(tx=txf.tx(fee=fee, vsize=vsize), arrival_time=float(index))
        )
    return out


class TestFeeRatePolicy:
    def test_greedy_mode_sorted(self, txf):
        policy = FeeRatePolicy(package_selection=False)
        template = policy.build(entries(txf, [(100, 100), (300, 100), (200, 100)]))
        rates = [tx.fee_rate for tx in template.transactions]
        assert rates == sorted(rates, reverse=True)

    def test_package_mode_handles_dependencies(self, txf):
        parent = txf.tx(fee=5, vsize=100, nonce=1)
        child = txf.tx(fee=900, vsize=100, parents=(parent.txid,), nonce=2)
        policy = FeeRatePolicy(package_selection=True)
        template = policy.build(
            [
                MempoolEntry(tx=parent, arrival_time=0.0),
                MempoolEntry(tx=child, arrival_time=1.0),
            ]
        )
        assert is_topologically_valid(template.transactions)
        assert len(template) == 2


class TestPriorityPolicy:
    def test_orders_by_priority_not_fee(self, txf):
        policy = PriorityPolicy()
        entry_list = entries(txf, [(10_000, 100), (10, 100), (5000, 100)])
        template = policy.build(entry_list)
        priorities = [policy.priority(tx) for tx in template.transactions]
        assert priorities == sorted(priorities, reverse=True)

    def test_priority_uncorrelated_with_fee_rate(self, txf):
        # Build many transactions with identical priority inputs but
        # varying fees: ordering must not follow fees.
        policy = PriorityPolicy()
        entry_list = entries(txf, [(100 * (i + 1), 100) for i in range(30)])
        template = policy.build(entry_list)
        rates = [tx.fee_rate for tx in template.transactions]
        assert rates != sorted(rates, reverse=True)

    def test_pseudo_coin_age_deterministic_and_bounded(self):
        assert pseudo_coin_age("abc") == pseudo_coin_age("abc")
        assert 0.0 <= pseudo_coin_age("abc") < 1.0
        assert pseudo_coin_age("abc") != pseudo_coin_age("abd")

    def test_respects_budget(self, txf):
        policy = PriorityPolicy()
        template = policy.build(entries(txf, [(100, 400)] * 5), max_vsize=900)
        assert template.total_vsize <= 900


class TestPrioritizeSetPolicy:
    def test_boosted_set_goes_first(self, txf):
        cheap_special = txf.tx(fee=10, vsize=100, to_address="vip", nonce=1)
        rich_normal = txf.tx(fee=9000, vsize=100, nonce=2)
        policy = PrioritizeSetPolicy(
            base=FeeRatePolicy(package_selection=False),
            boost=address_predicate(frozenset({"vip"})),
        )
        template = policy.build(
            [
                MempoolEntry(tx=cheap_special, arrival_time=0.0),
                MempoolEntry(tx=rich_normal, arrival_time=0.0),
            ]
        )
        assert template.txids()[0] == cheap_special.txid

    def test_boosted_sorted_by_fee_rate_internally(self, txf):
        a = txf.tx(fee=10, vsize=100, to_address="vip", nonce=1)
        b = txf.tx(fee=500, vsize=100, to_address="vip", nonce=2)
        policy = PrioritizeSetPolicy(
            base=FeeRatePolicy(package_selection=False),
            boost=address_predicate(frozenset({"vip"})),
        )
        template = policy.build(
            [
                MempoolEntry(tx=a, arrival_time=0.0),
                MempoolEntry(tx=b, arrival_time=0.0),
            ]
        )
        assert template.txids() == [b.txid, a.txid]

    def test_budget_shared_between_head_and_tail(self, txf):
        vip = txf.tx(fee=10, vsize=400, to_address="vip", nonce=1)
        normal = txf.tx(fee=9000, vsize=400, nonce=2)
        policy = PrioritizeSetPolicy(
            base=FeeRatePolicy(package_selection=False),
            boost=address_predicate(frozenset({"vip"})),
        )
        template = policy.build(
            [
                MempoolEntry(tx=vip, arrival_time=0.0),
                MempoolEntry(tx=normal, arrival_time=0.0),
            ],
            max_vsize=500,
        )
        assert template.txids() == [vip.txid]
        assert template.total_vsize <= 500

    def test_txid_set_predicate_is_live(self, txf):
        book: set[str] = set()
        predicate = txid_set_predicate(lambda: frozenset(book))
        tx = txf.tx()
        entry = MempoolEntry(tx=tx, arrival_time=0.0)
        assert not predicate(entry)
        book.add(tx.txid)
        assert predicate(entry)


class TestCensorPolicy:
    def test_banned_transactions_excluded(self, txf):
        banned_tx = txf.tx(fee=10_000, vsize=100, to_address="evil", nonce=1)
        normal = txf.tx(fee=100, vsize=100, nonce=2)
        policy = CensorPolicy(
            base=FeeRatePolicy(package_selection=False),
            banned=address_predicate(frozenset({"evil"})),
        )
        template = policy.build(
            [
                MempoolEntry(tx=banned_tx, arrival_time=0.0),
                MempoolEntry(tx=normal, arrival_time=0.0),
            ]
        )
        assert template.txids() == [normal.txid]


class TestMinFeeRatePolicy:
    def test_floor_filters(self, txf):
        policy = MinFeeRatePolicy(base=FeeRatePolicy(package_selection=False), floor=1.0)
        template = policy.build(entries(txf, [(0, 100), (500, 100)]))
        assert len(template) == 1

    def test_zero_floor_admits_zero_fee(self, txf):
        policy = MinFeeRatePolicy(base=FeeRatePolicy(package_selection=False), floor=0.0)
        template = policy.build(entries(txf, [(0, 100)]))
        assert len(template) == 1


class TestNoisyPolicy:
    def _policy(self, jitter, seed=0):
        return NoisyPolicy(
            base_jitter_source=JitterSource(rng=np.random.default_rng(seed)),
            base=FeeRatePolicy(package_selection=False),
            jitter=jitter,
        )

    def test_zero_jitter_matches_base(self, txf):
        entry_list = entries(txf, [(i * 10 + 10, 100) for i in range(10)])
        noisy = self._policy(jitter=0.0).build(entry_list)
        clean = FeeRatePolicy(package_selection=False).build(entry_list)
        assert noisy.txids() == clean.txids()

    def test_jitter_perturbs_order_but_keeps_set(self, txf):
        entry_list = entries(txf, [(i * 10 + 10, 100) for i in range(30)])
        noisy = self._policy(jitter=3.0).build(entry_list)
        clean = FeeRatePolicy(package_selection=False).build(entry_list)
        assert set(noisy.txids()) == set(clean.txids())
        assert noisy.txids() != clean.txids()

    def test_jitter_keeps_topological_validity(self, txf):
        parent = txf.tx(fee=100, vsize=100, nonce=1)
        child = txf.tx(fee=110, vsize=100, parents=(parent.txid,), nonce=2)
        others = [txf.tx(fee=100 + i, vsize=100, nonce=10 + i) for i in range(10)]
        entry_list = [MempoolEntry(tx=t, arrival_time=0.0) for t in [parent, child] + others]
        for seed in range(5):
            template = self._policy(jitter=4.0, seed=seed).build(entry_list)
            assert is_topologically_valid(template.transactions)

    def test_identical_seeds_produce_identical_template_sequences(self, txf):
        """Seed-stability regression: jitter is a pure function of its seed.

        A :class:`JitterSource` is a live stream, so the guarantee that
        matters is *sequence* equality: two policies seeded identically
        must produce the same templates across a whole sequence of
        builds, not just the first one.
        """
        entry_list = entries(txf, [(i * 10 + 10, 100) for i in range(30)])
        first = self._policy(jitter=3.0, seed=7)
        second = self._policy(jitter=3.0, seed=7)
        for _ in range(5):
            assert first.build(entry_list).txids() == second.build(
                entry_list
            ).txids()
        assert (
            self._policy(jitter=3.0, seed=8).build(entry_list).txids()
            != self._policy(jitter=3.0, seed=7).build(entry_list).txids()
        )
