"""Property tests: random mempool op sequences vs the invariant oracle.

The state machine under test is :class:`Mempool` with every lever
engaged at once — RBF conflicts, a size cap, expiry, confirmation
sweeps, and crash wipes.  The oracle is :meth:`Mempool.check_invariants`
(recompute-and-compare bookkeeping) plus a handful of cross-checks the
checker cannot express, like admission atomicity on rejected offers and
agreement between the two fee-rate orderings.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chain.transaction import TransactionBuilder
from repro.mempool.mempool import Mempool


def _random_op_sequence(pool, builder, rng, operations):
    """Drive ``pool`` through a random op mix, checking after each op."""
    history = []
    for step in range(operations):
        roll = rng.random()
        now = float(step)
        if roll < 0.55 or not history:
            if history and rng.random() < 0.3:
                original = history[int(rng.integers(len(history)))]
                tx = builder.replacement(
                    original,
                    fee=int(rng.integers(1, 50_000)),
                    vsize=int(rng.integers(100, 600)),
                    nonce=step,
                )
            else:
                tx = builder.build(
                    "dest",
                    1000,
                    fee=int(rng.integers(1, 50_000)),
                    vsize=int(rng.integers(100, 600)),
                    nonce=step,
                )
                history.append(tx)
            before = (len(pool), pool.total_vsize, pool.total_fees)
            result = pool.offer(tx, now=now)
            if not result.accepted:
                # Atomicity: a rejected offer leaves the pool untouched.
                assert (
                    len(pool),
                    pool.total_vsize,
                    pool.total_fees,
                ) == before
        elif roll < 0.70:
            live = pool.entries()
            if live:
                victim = live[int(rng.integers(len(live)))]
                pool.remove(victim.txid)
        elif roll < 0.80:
            live = pool.entries()
            take = int(rng.integers(0, len(live) + 1))
            pool.remove_confirmed([e.txid for e in live[:take]])
        elif roll < 0.90:
            pool.expire(now=now + float(rng.integers(0, 2000)))
        else:
            if rng.random() < 0.3:
                pool.clear()
        pool.check_invariants()
    return history


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    operations=st.integers(20, 80),
    max_vsize=st.one_of(st.none(), st.integers(800, 4000)),
    min_fee_rate=st.sampled_from([0.0, 1.0]),
)
def test_random_op_sequences_preserve_invariants(
    seed, operations, max_vsize, min_fee_rate
):
    rng = np.random.default_rng(seed)
    builder = TransactionBuilder(f"prop-inv-{seed}")
    pool = Mempool(
        min_fee_rate=min_fee_rate,
        expiry_seconds=1000.0,
        max_vsize=max_vsize,
    )
    _random_op_sequence(pool, builder, rng, operations)
    pool.check_invariants()
    if max_vsize is not None:
        assert pool.total_vsize <= max_vsize


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(0, 40))
def test_orderings_agree_under_unique_fee_rates(seed, count):
    """entries_by_fee_rate() and iter_best() are two views of one order.

    With all-distinct fee-rates the tie-breaks never engage, so the two
    must produce exactly the same txid sequence — and produce it again
    on a second pass (iter_best is non-destructive).
    """
    rng = np.random.default_rng(seed)
    builder = TransactionBuilder(f"prop-order-{seed}")
    pool = Mempool(min_fee_rate=0.0)
    rates = rng.permutation(count)  # distinct integers => distinct rates
    for step in range(count):
        vsize = 100
        fee = int((rates[step] + 1) * vsize)  # fee_rate = rates[step] + 1
        pool.offer(
            builder.build("dest", 1000, fee=fee, vsize=vsize, nonce=step),
            now=float(step),
        )
    # Random churn: remove a few, so stale heap residue is in play.
    for victim in list(pool.entries()):
        if rng.random() < 0.25:
            pool.remove(victim.txid)
    sorted_view = [e.txid for e in pool.entries_by_fee_rate()]
    heap_view = [e.txid for e in pool.iter_best()]
    assert heap_view == sorted_view
    assert [e.txid for e in pool.iter_best()] == heap_view
    pool.check_invariants()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), operations=st.integers(10, 50))
def test_conflict_index_tracks_live_entries_exactly(seed, operations):
    """After any op mix, _spenders maps exactly the live inputs."""
    rng = np.random.default_rng(seed)
    builder = TransactionBuilder(f"prop-spenders-{seed}")
    pool = Mempool(min_fee_rate=0.0, expiry_seconds=500.0, max_vsize=3000)
    _random_op_sequence(pool, builder, rng, operations)
    expected = {
        txin.prevout: entry.txid
        for entry in pool.entries()
        for txin in entry.tx.inputs
    }
    assert pool._spenders == expected
