"""Checkpoint/resume: interrupted runs must equal uninterrupted ones."""

import gzip
import json

import pytest

from repro.datasets.io import save_dataset
from repro.faults import (
    CheckpointConfig,
    CheckpointError,
    SimulationInterrupted,
    load_checkpoint,
    write_checkpoint,
)
from repro.simulation.history import generate_era_blocks
from repro.simulation.scenarios import honest_scenario


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        payload = {"version": 1, "blocks": [1, 2, 3], "name": "x"}
        write_checkpoint(path, payload)
        assert load_checkpoint(path) == payload

    def test_missing_file_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt.gz") is None

    def test_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        write_checkpoint(path, {"a": 1})
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        write_checkpoint(path, {"generation": 1})
        write_checkpoint(path, {"generation": 2})
        assert load_checkpoint(path) == {"generation": 2}

    def test_truncated_checkpoint_raises(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        write_checkpoint(path, {"a": list(range(1000))})
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_non_gzip_garbage_raises(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        path.write_bytes(b"this is not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_non_dict_payload_raises(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_fsync_write_roundtrips_and_is_atomic(self, tmp_path):
        path = tmp_path / "state.ckpt.gz"
        payload = {"version": 1, "entries": list(range(500))}
        write_checkpoint(path, payload, fsync=True)
        assert load_checkpoint(path) == payload
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_crash_mid_write_preserves_previous_checkpoint(self, tmp_path):
        """A torn ``.tmp`` from a mid-write crash must not be loaded.

        The crash leaves the *previous* checkpoint untouched and the
        half-written bytes under the temp name; a later writer simply
        replaces the leftovers.
        """
        path = tmp_path / "state.ckpt.gz"
        write_checkpoint(path, {"generation": 1})
        # Simulate dying halfway through the next write: garbage .tmp.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(b"\x1f\x8b half a gzip stream")
        assert load_checkpoint(path) == {"generation": 1}
        write_checkpoint(path, {"generation": 2}, fsync=True)
        assert load_checkpoint(path) == {"generation": 2}
        assert not tmp.exists()

    def test_truncated_checkpoint_rejected_not_half_loaded(self, tmp_path):
        """Every truncation point fails loudly — never a partial dict."""
        path = tmp_path / "state.ckpt.gz"
        payload = {"blocks": list(range(2000)), "rng": {"state": 12345}}
        write_checkpoint(path, payload)
        data = path.read_bytes()
        for cut in (1, 10, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(path)


class TestCheckpointConfig:
    def test_validates_every_blocks(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(path=tmp_path / "c.gz", every_blocks=0)

    def test_validates_abort_after_blocks(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(path=tmp_path / "c.gz", abort_after_blocks=0)


def _dataset_bytes(dataset, path):
    return save_dataset(dataset, path).read_bytes()


class TestEngineResume:
    def test_interrupted_resume_matches_uninterrupted(self, tmp_path):
        baseline = honest_scenario(seed=13, blocks=40).run().dataset

        ckpt = tmp_path / "engine.ckpt.gz"
        with pytest.raises(SimulationInterrupted):
            honest_scenario(seed=13, blocks=40).run(
                checkpoint=CheckpointConfig(
                    path=ckpt, every_blocks=10, abort_after_blocks=15
                )
            )
        assert ckpt.exists()

        resumed = (
            honest_scenario(seed=13, blocks=40)
            .run(checkpoint=CheckpointConfig(path=ckpt, every_blocks=10))
            .dataset
        )
        assert _dataset_bytes(resumed, tmp_path / "resumed.json.gz") == (
            _dataset_bytes(baseline, tmp_path / "baseline.json.gz")
        )

    def test_wrong_scenario_fingerprint_rejected(self, tmp_path):
        ckpt = tmp_path / "engine.ckpt.gz"
        with pytest.raises(SimulationInterrupted):
            honest_scenario(seed=13, blocks=40).run(
                checkpoint=CheckpointConfig(
                    path=ckpt, every_blocks=10, abort_after_blocks=15
                )
            )
        with pytest.raises(CheckpointError):
            honest_scenario(seed=14, blocks=40).run(
                checkpoint=CheckpointConfig(path=ckpt, every_blocks=10)
            )


class TestHistoryResume:
    KWARGS = dict(
        start_year=2015.0,
        end_year=2016.0,
        blocks_per_month=6,
        txs_per_block=30,
        seed=5,
    )

    def test_interrupted_resume_matches_uninterrupted(self, tmp_path):
        baseline = generate_era_blocks(**self.KWARGS)

        ckpt = tmp_path / "history.ckpt.gz"
        with pytest.raises(SimulationInterrupted):
            generate_era_blocks(
                **self.KWARGS,
                checkpoint=CheckpointConfig(
                    path=ckpt, every_blocks=8, abort_after_blocks=20
                ),
            )
        assert ckpt.exists()

        resumed = generate_era_blocks(
            **self.KWARGS,
            checkpoint=CheckpointConfig(path=ckpt, every_blocks=8),
        )
        assert len(resumed) == len(baseline)
        assert [e.year for e in resumed] == [e.year for e in baseline]
        assert [e.block.block_hash for e in resumed] == [
            e.block.block_hash for e in baseline
        ]
        assert resumed == baseline

    def test_wrong_parameters_fingerprint_rejected(self, tmp_path):
        ckpt = tmp_path / "history.ckpt.gz"
        with pytest.raises(SimulationInterrupted):
            generate_era_blocks(
                **self.KWARGS,
                checkpoint=CheckpointConfig(
                    path=ckpt, every_blocks=8, abort_after_blocks=20
                ),
            )
        other = dict(self.KWARGS, seed=6)
        with pytest.raises(CheckpointError):
            generate_era_blocks(
                **other, checkpoint=CheckpointConfig(path=ckpt, every_blocks=8)
            )
