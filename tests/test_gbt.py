"""Unit tests for block-template construction (GBT)."""

import pytest

from repro.mempool.feerate import fee_rate_rank
from repro.mempool.mempool import Mempool, MempoolEntry
from repro.mining.gbt import (
    TemplateBudgetError,
    ancestor_package_template,
    compare_templates,
    greedy_feerate_template,
    is_topologically_valid,
    repair_topological_order,
    template_revenue,
)

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("gbt")


def entries_from(txf, specs):
    """specs: list of (fee, vsize) or (fee, vsize, parents)."""
    entries = []
    for spec in specs:
        fee, vsize = spec[0], spec[1]
        parents = spec[2] if len(spec) > 2 else ()
        entries.append(
            MempoolEntry(
                tx=txf.tx(fee=fee, vsize=vsize, parents=parents),
                arrival_time=float(len(entries)),
            )
        )
    return entries


class TestGreedyTemplate:
    def test_orders_by_fee_rate(self, txf):
        entries = entries_from(txf, [(100, 100), (900, 100), (500, 100)])
        template = greedy_feerate_template(entries)
        rates = [tx.fee_rate for tx in template.transactions]
        assert rates == sorted(rates, reverse=True)

    def test_respects_size_budget(self, txf):
        entries = entries_from(txf, [(1000, 400), (900, 400), (800, 400)])
        template = greedy_feerate_template(entries, max_vsize=900)
        assert template.total_vsize <= 900
        assert len(template) == 2

    def test_skips_oversized_but_continues(self, txf):
        entries = entries_from(txf, [(10_000, 800), (50, 100), (40, 100)])
        template = greedy_feerate_template(entries, max_vsize=850)
        txids = template.txids()
        # The big tx fits; the next one doesn't; the last one does not fit
        # either (850-800=50 < 100) — skip-and-continue semantics.
        assert len(txids) == 1

    def test_reserved_vsize_shrinks_budget(self, txf):
        entries = entries_from(txf, [(1000, 500)])
        template = greedy_feerate_template(entries, max_vsize=600, reserved_vsize=200)
        assert len(template) == 0

    def test_accounting(self, txf):
        entries = entries_from(txf, [(100, 200), (300, 300)])
        template = greedy_feerate_template(entries)
        assert template.total_fee == 400
        assert template.total_vsize == 500

    def test_empty_input(self):
        template = greedy_feerate_template([])
        assert len(template) == 0
        assert template.total_fee == 0


class TestAncestorPackageTemplate:
    def test_child_pulls_parent_in(self, txf):
        parent = txf.tx(fee=10, vsize=200, nonce=1)  # 0.05 sat/vB alone
        child = txf.tx(fee=2000, vsize=100, parents=(parent.txid,), nonce=2)
        filler = txf.tx(fee=300, vsize=300, nonce=3)  # 1 sat/vB
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
            MempoolEntry(tx=filler, arrival_time=2.0),
        ]
        template = ancestor_package_template(entries, max_vsize=400)
        txids = template.txids()
        # Package rate (2010/300 = 6.7) beats filler (1.0): parent+child win.
        assert txids == [parent.txid, child.txid]

    def test_greedy_would_strand_parent(self, txf):
        parent = txf.tx(fee=10, vsize=200, nonce=1)
        child = txf.tx(fee=2000, vsize=100, parents=(parent.txid,), nonce=2)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
        ]
        greedy = greedy_feerate_template(entries, max_vsize=400)
        # Greedy puts the child first — topologically invalid.
        assert not is_topologically_valid(greedy.transactions)

    def test_output_topologically_valid(self, txf):
        a = txf.tx(fee=50, vsize=100, nonce=1)
        b = txf.tx(fee=500, vsize=100, parents=(a.txid,), nonce=2)
        c = txf.tx(fee=700, vsize=100, parents=(b.txid,), nonce=3)
        entries = [MempoolEntry(tx=t, arrival_time=0.0) for t in (c, b, a)]
        template = ancestor_package_template(entries)
        assert is_topologically_valid(template.transactions)
        assert len(template) == 3

    def test_size_budget_respected_for_packages(self, txf):
        parent = txf.tx(fee=10, vsize=300, nonce=1)
        child = txf.tx(fee=5000, vsize=300, parents=(parent.txid,), nonce=2)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
        ]
        template = ancestor_package_template(entries, max_vsize=500)
        # The package does not fit as a whole; nothing is committed
        # (the parent alone has negligible rate but also fits... it is
        # selected only via its own score).
        assert child.txid not in template.txids()

    def test_matches_greedy_when_no_dependencies(self, txf):
        entries = entries_from(txf, [(100, 100), (900, 100), (500, 100), (300, 100)])
        package = ancestor_package_template(entries)
        greedy = greedy_feerate_template(entries)
        assert package.txids() == greedy.txids()

    def test_stale_rescore_path(self, txf):
        # Two children share one cheap parent: after the first package
        # commits the parent, the second child's package rate improves.
        parent = txf.tx(fee=10, vsize=100, nonce=1)
        child1 = txf.tx(fee=1000, vsize=100, parents=(parent.txid,), nonce=2)
        child2 = txf.tx(fee=900, vsize=100, parents=(parent.txid,), nonce=3)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child1, arrival_time=1.0),
            MempoolEntry(tx=child2, arrival_time=2.0),
        ]
        template = ancestor_package_template(entries)
        assert set(template.txids()) == {parent.txid, child1.txid, child2.txid}
        assert is_topologically_valid(template.transactions)
        assert template.total_fee == 1910


class TestRepairTopologicalOrder:
    def test_noop_on_valid_order(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        assert repair_topological_order([a, b]) == [a, b]

    def test_repairs_inversion(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        repaired = repair_topological_order([b, a])
        assert repaired == [a, b]

    def test_preserves_unconstrained_order(self, txf):
        txs = [txf.tx(nonce=i) for i in range(5)]
        assert repair_topological_order(txs) == txs

    def test_deep_chain(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        c = txf.tx(parents=(b.txid,), nonce=3)
        repaired = repair_topological_order([c, b, a])
        assert is_topologically_valid(repaired)
        assert len(repaired) == 3


class TestTemplateHelpers:
    def test_template_revenue(self, txf):
        entries = entries_from(txf, [(500, 100)])
        template = greedy_feerate_template(entries)
        assert template_revenue(template, subsidy=1000) == 1500

    def test_compare_templates(self, txf):
        rich = greedy_feerate_template(entries_from(txf, [(900, 100)]))
        poor = greedy_feerate_template(entries_from(txf, [(100, 100)]))
        assert compare_templates(rich, poor) is rich
        assert compare_templates(poor, rich) is rich
        assert compare_templates(rich, rich) is None


class TestExactFeeRateOrdering:
    """Float-tie determinism: ranking must follow the exact rationals.

    The adversarial pair below holds two *distinct* fee-rates whose
    float64 quotients collide exactly (the numerator difference falls
    outside the 53-bit mantissa).  Ranking by the float would fall
    through to the arrival/txid tie-break — which is arranged to point
    the wrong way — so these tests fail on any float-keyed builder.
    """

    #: rate 1 + 1e-16: rounds to float64 1.0 exactly.
    RICH = (10**16 + 1, 10**16)
    #: rate exactly 1.
    POOR = (1, 1)

    def test_adversarial_pair_collides_in_float64(self):
        (rich_fee, rich_vsize), (poor_fee, poor_vsize) = self.RICH, self.POOR
        assert rich_fee / rich_vsize == poor_fee / poor_vsize
        assert fee_rate_rank(rich_fee, rich_vsize) > fee_rate_rank(
            poor_fee, poor_vsize
        )

    def test_greedy_orders_float_ties_by_exact_rate(self, txf):
        # The truly-poorer transaction arrives first, so an arrival
        # tie-break would select it first; exact ranking must not.
        entries = entries_from(txf, [self.POOR, self.RICH])
        template = greedy_feerate_template(entries, max_vsize=2 * 10**16)
        assert template.txids() == [entries[1].txid, entries[0].txid]

    def test_ancestor_orders_float_ties_by_exact_rate(self, txf):
        entries = entries_from(txf, [self.POOR, self.RICH])
        template = ancestor_package_template(entries, max_vsize=2 * 10**16)
        assert template.txids() == [entries[1].txid, entries[0].txid]

    def test_package_score_float_tie_uses_exact_rate(self, txf):
        # The CPFP package (parent + child) sums to the RICH rational;
        # its float score ties with the earlier-arrived single.
        poor, parent = entries_from(txf, [self.POOR, (1, 10**16 - 1)])
        child = MempoolEntry(
            tx=txf.tx(fee=10**16, vsize=1, parents=(parent.txid,)),
            arrival_time=2.0,
        )
        template = ancestor_package_template(
            [poor, parent, child], max_vsize=2 * 10**16
        )
        assert template.txids() == [parent.txid, child.txid, poor.txid]

    def test_eviction_planner_float_tie_evicts_exact_cheapest(self, txf):
        # Same colliding pair in a full mempool: the planner must evict
        # the exactly-cheaper entry, not the arrival-tie loser.
        mempool = Mempool(min_fee_rate=0.0, max_vsize=10**16 + 1)
        poor = txf.tx(fee=1, vsize=1)
        rich = txf.tx(fee=10**16 + 1, vsize=10**16)
        assert mempool.offer(poor, now=0.0).accepted
        assert mempool.offer(rich, now=1.0).accepted
        incoming = txf.tx(fee=10**10, vsize=1)
        assert mempool.offer(incoming, now=2.0).accepted
        assert poor.txid not in mempool
        assert rich.txid in mempool
        assert incoming.txid in mempool


class TestTemplateBudgetGuard:
    """reserved_vsize > max_vsize must raise, not fill a negative budget."""

    def test_greedy_rejects_reserved_above_max(self, txf):
        entries = entries_from(txf, [(500, 100)])
        with pytest.raises(TemplateBudgetError):
            greedy_feerate_template(entries, max_vsize=100, reserved_vsize=101)

    def test_ancestor_rejects_reserved_above_max(self, txf):
        entries = entries_from(txf, [(500, 100)])
        with pytest.raises(TemplateBudgetError):
            ancestor_package_template(entries, max_vsize=100, reserved_vsize=101)

    def test_budget_error_is_a_value_error(self):
        assert issubclass(TemplateBudgetError, ValueError)

    def test_zero_budget_is_legal_and_empty(self, txf):
        entries = entries_from(txf, [(500, 100)])
        for builder in (greedy_feerate_template, ancestor_package_template):
            template = builder(entries, max_vsize=100, reserved_vsize=100)
            assert template.txids() == []
            assert template.total_vsize == 0
            assert template.total_fee == 0

    def test_exact_fit_boundary(self, txf):
        entries = entries_from(txf, [(500, 500)])
        for builder in (greedy_feerate_template, ancestor_package_template):
            template = builder(entries, max_vsize=700, reserved_vsize=200)
            assert template.txids() == [entries[0].txid]
            assert template.total_vsize == 500

    def test_one_vbyte_over_budget_is_skipped(self, txf):
        entries = entries_from(txf, [(500, 501)])
        for builder in (greedy_feerate_template, ancestor_package_template):
            template = builder(entries, max_vsize=700, reserved_vsize=200)
            assert template.txids() == []
