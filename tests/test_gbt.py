"""Unit tests for block-template construction (GBT)."""

import pytest

from repro.mempool.mempool import MempoolEntry
from repro.mining.gbt import (
    ancestor_package_template,
    compare_templates,
    greedy_feerate_template,
    is_topologically_valid,
    repair_topological_order,
    template_revenue,
)

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("gbt")


def entries_from(txf, specs):
    """specs: list of (fee, vsize) or (fee, vsize, parents)."""
    entries = []
    for spec in specs:
        fee, vsize = spec[0], spec[1]
        parents = spec[2] if len(spec) > 2 else ()
        entries.append(
            MempoolEntry(
                tx=txf.tx(fee=fee, vsize=vsize, parents=parents),
                arrival_time=float(len(entries)),
            )
        )
    return entries


class TestGreedyTemplate:
    def test_orders_by_fee_rate(self, txf):
        entries = entries_from(txf, [(100, 100), (900, 100), (500, 100)])
        template = greedy_feerate_template(entries)
        rates = [tx.fee_rate for tx in template.transactions]
        assert rates == sorted(rates, reverse=True)

    def test_respects_size_budget(self, txf):
        entries = entries_from(txf, [(1000, 400), (900, 400), (800, 400)])
        template = greedy_feerate_template(entries, max_vsize=900)
        assert template.total_vsize <= 900
        assert len(template) == 2

    def test_skips_oversized_but_continues(self, txf):
        entries = entries_from(txf, [(10_000, 800), (50, 100), (40, 100)])
        template = greedy_feerate_template(entries, max_vsize=850)
        txids = template.txids()
        # The big tx fits; the next one doesn't; the last one does not fit
        # either (850-800=50 < 100) — skip-and-continue semantics.
        assert len(txids) == 1

    def test_reserved_vsize_shrinks_budget(self, txf):
        entries = entries_from(txf, [(1000, 500)])
        template = greedy_feerate_template(entries, max_vsize=600, reserved_vsize=200)
        assert len(template) == 0

    def test_accounting(self, txf):
        entries = entries_from(txf, [(100, 200), (300, 300)])
        template = greedy_feerate_template(entries)
        assert template.total_fee == 400
        assert template.total_vsize == 500

    def test_empty_input(self):
        template = greedy_feerate_template([])
        assert len(template) == 0
        assert template.total_fee == 0


class TestAncestorPackageTemplate:
    def test_child_pulls_parent_in(self, txf):
        parent = txf.tx(fee=10, vsize=200, nonce=1)  # 0.05 sat/vB alone
        child = txf.tx(fee=2000, vsize=100, parents=(parent.txid,), nonce=2)
        filler = txf.tx(fee=300, vsize=300, nonce=3)  # 1 sat/vB
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
            MempoolEntry(tx=filler, arrival_time=2.0),
        ]
        template = ancestor_package_template(entries, max_vsize=400)
        txids = template.txids()
        # Package rate (2010/300 = 6.7) beats filler (1.0): parent+child win.
        assert txids == [parent.txid, child.txid]

    def test_greedy_would_strand_parent(self, txf):
        parent = txf.tx(fee=10, vsize=200, nonce=1)
        child = txf.tx(fee=2000, vsize=100, parents=(parent.txid,), nonce=2)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
        ]
        greedy = greedy_feerate_template(entries, max_vsize=400)
        # Greedy puts the child first — topologically invalid.
        assert not is_topologically_valid(greedy.transactions)

    def test_output_topologically_valid(self, txf):
        a = txf.tx(fee=50, vsize=100, nonce=1)
        b = txf.tx(fee=500, vsize=100, parents=(a.txid,), nonce=2)
        c = txf.tx(fee=700, vsize=100, parents=(b.txid,), nonce=3)
        entries = [MempoolEntry(tx=t, arrival_time=0.0) for t in (c, b, a)]
        template = ancestor_package_template(entries)
        assert is_topologically_valid(template.transactions)
        assert len(template) == 3

    def test_size_budget_respected_for_packages(self, txf):
        parent = txf.tx(fee=10, vsize=300, nonce=1)
        child = txf.tx(fee=5000, vsize=300, parents=(parent.txid,), nonce=2)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child, arrival_time=1.0),
        ]
        template = ancestor_package_template(entries, max_vsize=500)
        # The package does not fit as a whole; nothing is committed
        # (the parent alone has negligible rate but also fits... it is
        # selected only via its own score).
        assert child.txid not in template.txids()

    def test_matches_greedy_when_no_dependencies(self, txf):
        entries = entries_from(txf, [(100, 100), (900, 100), (500, 100), (300, 100)])
        package = ancestor_package_template(entries)
        greedy = greedy_feerate_template(entries)
        assert package.txids() == greedy.txids()

    def test_stale_rescore_path(self, txf):
        # Two children share one cheap parent: after the first package
        # commits the parent, the second child's package rate improves.
        parent = txf.tx(fee=10, vsize=100, nonce=1)
        child1 = txf.tx(fee=1000, vsize=100, parents=(parent.txid,), nonce=2)
        child2 = txf.tx(fee=900, vsize=100, parents=(parent.txid,), nonce=3)
        entries = [
            MempoolEntry(tx=parent, arrival_time=0.0),
            MempoolEntry(tx=child1, arrival_time=1.0),
            MempoolEntry(tx=child2, arrival_time=2.0),
        ]
        template = ancestor_package_template(entries)
        assert set(template.txids()) == {parent.txid, child1.txid, child2.txid}
        assert is_topologically_valid(template.transactions)
        assert template.total_fee == 1910


class TestRepairTopologicalOrder:
    def test_noop_on_valid_order(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        assert repair_topological_order([a, b]) == [a, b]

    def test_repairs_inversion(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        repaired = repair_topological_order([b, a])
        assert repaired == [a, b]

    def test_preserves_unconstrained_order(self, txf):
        txs = [txf.tx(nonce=i) for i in range(5)]
        assert repair_topological_order(txs) == txs

    def test_deep_chain(self, txf):
        a = txf.tx(nonce=1)
        b = txf.tx(parents=(a.txid,), nonce=2)
        c = txf.tx(parents=(b.txid,), nonce=3)
        repaired = repair_topological_order([c, b, a])
        assert is_topologically_valid(repaired)
        assert len(repaired) == 3


class TestTemplateHelpers:
    def test_template_revenue(self, txf):
        entries = entries_from(txf, [(500, 100)])
        template = greedy_feerate_template(entries)
        assert template_revenue(template, subsidy=1000) == 1500

    def test_compare_templates(self, txf):
        rich = greedy_feerate_template(entries_from(txf, [(900, 100)]))
        poor = greedy_feerate_template(entries_from(txf, [(100, 100)]))
        assert compare_templates(rich, poor) is rich
        assert compare_templates(poor, rich) is rich
        assert compare_templates(rich, rich) is None
