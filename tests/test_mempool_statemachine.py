"""Regression tests for the mempool state-machine bug sweep.

Each test class pins one behaviour audited (and, where broken, fixed)
in the invariant-driven sweep:

* RBF + full-pool admission is *atomic* — a rejected offer never
  mutates the pool (the pre-fix code removed conflicts before planning
  evictions, so a ``MEMPOOL_FULL`` bounce permanently dropped the
  displaced transactions);
* :meth:`Mempool.iter_best` is non-destructive (the pre-fix generator
  drained the shared fee-rate heap, so a second iteration saw nothing);
* ``expire`` uses a strict ``<`` cutoff and ``_plan_evictions`` uses
  strict out-pay / exact-fit boundaries, matching Bitcoin Core.

The invariant checkers themselves are meta-tested: a deliberately
buggy subclass must trip :class:`InvariantViolation`.
"""

import pytest

from repro.chain.transaction import TransactionBuilder
from repro.mempool.mempool import Mempool, RejectionReason
from repro.obs.invariants import (
    InvariantViolation,
    check_engine_block_state,
)

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("mempool-sm")


@pytest.fixture
def builder():
    # Separate namespace from txf: same-namespace/same-nonce builds spend
    # the same synthetic outpoints and would conflict accidentally.
    return TransactionBuilder("mempool-sm-rbf")


# ----------------------------------------------------------------------
# Satellite (a): RBF + MEMPOOL_FULL atomicity
# ----------------------------------------------------------------------
class TestAtomicAdmission:
    def test_full_pool_rbf_bounce_keeps_original(self, txf, builder):
        """A bump bounced by the size cap must not evict its conflict.

        Pre-fix sequence: conflicts were removed *before* ``_make_room``
        ran, so when the (larger) bump could not fit alongside the
        better-paying blocker, the offer was rejected MEMPOOL_FULL and
        the original transaction was already gone — the pool lost a
        paying transaction to a rejected replacement.
        """
        pool = Mempool(min_fee_rate=0.0, max_vsize=700)
        blocker = txf.tx(fee=100_000, vsize=400)  # 250 sat/vB
        original = builder.build("dest", 10_000, fee=200, vsize=200, nonce=1)
        # RBF-valid bump (more fee, higher rate) but vsize 400: admitting
        # it would need to evict the blocker, which out-pays it.
        bump = builder.replacement(original, fee=5000, vsize=400)

        assert pool.offer(blocker, now=0.0).accepted
        assert pool.offer(original, now=1.0).accepted
        before = (len(pool), pool.total_vsize, pool.total_fees)

        result = pool.offer(bump, now=2.0)

        assert not result.accepted
        assert result.reason == RejectionReason.MEMPOOL_FULL
        # The pool is exactly as it was: original survived the bounce.
        assert original.txid in pool
        assert blocker.txid in pool
        assert bump.txid not in pool
        assert (len(pool), pool.total_vsize, pool.total_fees) == before
        pool.check_invariants()

    def test_rejected_offer_never_mutates_conflict_index(self, txf, builder):
        pool = Mempool(min_fee_rate=0.0, max_vsize=700)
        pool.offer(txf.tx(fee=100_000, vsize=400), now=0.0)
        original = builder.build("dest", 10_000, fee=200, vsize=200, nonce=2)
        pool.offer(original, now=1.0)
        bump = builder.replacement(original, fee=5000, vsize=400)

        pool.offer(bump, now=2.0)  # bounces

        # The original's inputs are still indexed to the original.
        assert pool.conflicts_of(bump) == [original.txid]

    def test_accepted_rbf_with_eviction_reports_both(self, txf, builder):
        """When the bump *does* fit, conflicts and evictees both appear
        in ``replaced`` and the pool respects the cap afterwards."""
        pool = Mempool(min_fee_rate=0.0, max_vsize=700)
        cheap = txf.tx(fee=30, vsize=300)  # 0.1 sat/vB, evictable
        original = builder.build("dest", 10_000, fee=200, vsize=200, nonce=3)
        # vsize 500: freeing the conflict's 200 vB is not enough, the
        # cheap entry must also be evicted (needed = 100 vB).
        bump = builder.replacement(original, fee=5000, vsize=500)

        pool.offer(cheap, now=0.0)
        pool.offer(original, now=1.0)
        result = pool.offer(bump, now=2.0)

        assert result.accepted
        assert set(result.replaced) == {original.txid, cheap.txid}
        assert bump.txid in pool and len(pool) == 1
        assert pool.total_vsize <= 700
        pool.check_invariants()


# ----------------------------------------------------------------------
# Satellite (b): iter_best is non-destructive
# ----------------------------------------------------------------------
class TestIterBest:
    def test_double_iteration_sees_same_sequence(self, txf):
        """Pre-fix, iter_best popped the shared heap: the second pass
        yielded nothing and later offers corrupted ordering."""
        pool = Mempool(min_fee_rate=0.0)
        for index, fee in enumerate([500, 9000, 1200, 40, 7700]):
            pool.offer(txf.tx(fee=fee, vsize=250), now=float(index))
        first = [e.txid for e in pool.iter_best()]
        second = [e.txid for e in pool.iter_best()]
        assert first == second
        assert len(first) == 5
        rates = [pool.get(t).fee_rate for t in first]
        assert rates == sorted(rates, reverse=True)
        pool.check_invariants()

    def test_pool_usable_after_partial_iteration(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        for index in range(6):
            pool.offer(txf.tx(fee=1000 * (index + 1), vsize=250), now=float(index))
        iterator = pool.iter_best()
        next(iterator)
        next(iterator)  # abandon mid-way
        assert len(pool) == 6
        assert len(list(pool.iter_best())) == 6
        pool.check_invariants()

    def test_mid_iteration_removal_skipped(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        txs = [txf.tx(fee=1000 * (i + 1), vsize=250) for i in range(4)]
        for index, tx in enumerate(txs):
            pool.offer(tx, now=float(index))
        iterator = pool.iter_best()
        best = next(iterator)
        # Remove the next-best entry while iterating.
        remaining = sorted(
            (e for e in pool.entries() if e.txid != best.txid),
            key=lambda e: -e.fee_rate,
        )
        pool.remove(remaining[0].txid)
        rest = [e.txid for e in iterator]
        assert remaining[0].txid not in rest
        assert len(rest) == 2

    def test_duplicate_heap_residue_yields_once(self, txf):
        """remove + re-offer leaves two heap items for one txid; the
        entry must still be yielded exactly once."""
        pool = Mempool(min_fee_rate=0.0)
        tx = txf.tx(fee=5000, vsize=250)
        pool.offer(tx, now=0.0)
        pool.remove(tx.txid)
        pool.offer(tx, now=1.0)
        others = [txf.tx(fee=100 * (i + 1), vsize=250) for i in range(3)]
        for index, other in enumerate(others):
            pool.offer(other, now=2.0 + index)
        yielded = [e.txid for e in pool.iter_best()]
        assert yielded.count(tx.txid) == 1
        assert len(yielded) == 4

    def test_iteration_compacts_stale_residue(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        txs = [txf.tx(fee=1000, vsize=250) for _ in range(8)]
        for index, tx in enumerate(txs):
            pool.offer(tx, now=float(index))
        for tx in txs[:6]:
            pool.remove(tx.txid)
        assert len(pool._heap) == 8  # lazy removal left residue
        list(pool.iter_best())
        assert len(pool._heap) == 2  # compacted as a side effect
        pool.check_invariants()


# ----------------------------------------------------------------------
# Satellite (c): boundary semantics (expiry cutoff, eviction floor)
# ----------------------------------------------------------------------
class TestBoundarySemantics:
    def test_entry_exactly_at_expiry_cutoff_survives(self, txf):
        """Bitcoin Core's Expire drops entries with time < cutoff; an
        entry whose age is exactly ``expiry_seconds`` stays."""
        pool = Mempool(min_fee_rate=0.0, expiry_seconds=100.0)
        at_cutoff = txf.tx(fee=1000)
        older = txf.tx(fee=1000)
        pool.offer(older, now=49.999)
        pool.offer(at_cutoff, now=50.0)
        evicted = pool.expire(now=150.0)  # cutoff = 50.0
        assert [e.txid for e in evicted] == [older.txid]
        assert at_cutoff.txid in pool

    def test_eviction_freeing_exactly_needed_is_accepted(self, txf):
        """freed == needed is a fit, not a bounce: the last candidate
        that closes the gap exactly must be enough."""
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        cheap = txf.tx(fee=10, vsize=200)  # 0.05 sat/vB
        mid = txf.tx(fee=4000, vsize=400)  # 10 sat/vB
        pool.offer(cheap, now=0.0)
        pool.offer(mid, now=1.0)
        # Incoming 200 vB: needed = 600 + 200 - 600 = 200 == cheap.vsize.
        incoming = txf.tx(fee=2000, vsize=200)  # 10 sat/vB
        result = pool.offer(incoming, now=2.0)
        assert result.accepted
        assert result.replaced == (cheap.txid,)
        assert pool.total_vsize == 600
        pool.check_invariants()

    def test_equal_fee_rate_to_evictee_bounces(self, txf):
        """The incoming transaction must *strictly* out-pay the eviction
        floor; paying exactly the floor rate is a bounce."""
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        resident = txf.tx(fee=3000, vsize=300)  # 10 sat/vB
        pool.offer(resident, now=0.0)
        pool.offer(txf.tx(fee=3000, vsize=300), now=1.0)
        same_rate = txf.tx(fee=2500, vsize=250)  # 10 sat/vB exactly
        result = pool.offer(same_rate, now=2.0)
        assert not result.accepted
        assert result.reason == RejectionReason.MEMPOOL_FULL
        assert len(pool) == 2

    def test_infinitesimally_better_rate_evicts(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        floor_tx = txf.tx(fee=3000, vsize=300)  # 10 sat/vB
        pool.offer(floor_tx, now=0.0)
        pool.offer(txf.tx(fee=6000, vsize=300), now=1.0)  # 20 sat/vB
        better = txf.tx(fee=2503, vsize=250)  # 10.012 sat/vB
        result = pool.offer(better, now=2.0)
        assert result.accepted
        assert floor_tx.txid in result.replaced


# ----------------------------------------------------------------------
# Meta-tests: the invariant checkers must actually catch bugs
# ----------------------------------------------------------------------
class BuggyMempool(Mempool):
    """Re-introduces the classic accounting bug: ``remove`` forgets to
    decrement the fee total, so ``total_fees`` drifts upward."""

    def remove(self, txid):
        entry = self._entries.pop(txid, None)
        if entry is not None:
            self._total_vsize -= entry.vsize
            # BUG (deliberate): self._total_fees is not decremented.
            for txin in entry.tx.inputs:
                if self._spenders.get(txin.prevout) == txid:
                    del self._spenders[txin.prevout]
        return entry


class TestInvariantChecker:
    def test_checker_catches_fee_accounting_drift(self, txf):
        pool = BuggyMempool(min_fee_rate=0.0)
        tx = txf.tx(fee=1234)
        pool.offer(tx, now=0.0)
        pool.remove(tx.txid)
        with pytest.raises(InvariantViolation, match="total_fees drifted"):
            pool.check_invariants()

    def test_checker_catches_stale_conflict_index(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        tx = txf.tx(fee=1000)
        pool.offer(tx, now=0.0)
        pool._spenders["phantom-outpoint"] = tx.txid
        with pytest.raises(InvariantViolation, match="conflict index"):
            pool.check_invariants()

    def test_checker_catches_heap_unreachable_entry(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        tx = txf.tx(fee=1000)
        pool.offer(tx, now=0.0)
        pool._heap.clear()
        with pytest.raises(InvariantViolation, match="missing from the"):
            pool.check_invariants()

    def test_clean_pool_passes(self, txf):
        pool = Mempool(min_fee_rate=1.0, max_vsize=10_000)
        for index in range(12):
            pool.offer(txf.tx(fee=2000 + index, vsize=250), now=float(index))
        pool.remove_confirmed([e.txid for e in list(pool.iter_best())[:3]])
        pool.expire(now=1e9)
        pool.check_invariants()


class TestEngineBlockStateChecker:
    def _block(self, txs, height=7):
        class _FakeBlock:
            pass

        block = _FakeBlock()
        block.transactions = txs
        block.height = height
        return block

    def test_confirmed_txid_still_pending_raises(self, txf):
        tx = txf.tx()
        with pytest.raises(InvariantViolation, match="still pending"):
            check_engine_block_state(
                pending={tx.txid: tx},
                pending_spenders={},
                committed={tx.txid: 0.0},
                block=self._block([]),
            )

    def test_conflict_index_pointing_nowhere_raises(self, txf):
        tx = txf.tx()
        with pytest.raises(InvariantViolation, match="non-pending"):
            check_engine_block_state(
                pending={},
                pending_spenders={"outpoint": tx.txid},
                committed={},
                block=self._block([]),
            )

    def test_block_tx_left_pending_raises(self, txf):
        tx = txf.tx()
        with pytest.raises(InvariantViolation, match="committed at height"):
            check_engine_block_state(
                pending={tx.txid: tx},
                pending_spenders={},
                committed={},
                block=self._block([tx]),
            )

    def test_consistent_state_passes(self, txf):
        pending_tx = txf.tx()
        mined_tx = txf.tx()
        spenders = {
            txin.prevout: pending_tx.txid for txin in pending_tx.inputs
        }
        check_engine_block_state(
            pending={pending_tx.txid: pending_tx},
            pending_spenders=spenders,
            committed={mined_tx.txid: 0.0},
            block=self._block([mined_tx]),
        )
